#ifndef TPM_SUBSYSTEM_WEAK_ORDER_H_
#define TPM_SUBSYSTEM_WEAK_ORDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tpm {

/// Simulation of strong vs. weak ordering of conflicting local transactions
/// within one subsystem (§3.6, composite systems theory [ABFS97]).
///
/// Under the *strong* order an activity is invoked only after the previous
/// conflicting one has terminated; under the *weak* order both execute in
/// parallel as long as the overall effect matches the strong order — the
/// subsystem guarantees this with commit-order serializability [BBG89]
/// (commits happen in the weak-order sequence).
///
/// The §3.6 cascade is modeled too: when a retriable local transaction
/// T_ik aborts after partial execution, a weakly-ordered dependent T_jl
/// running in parallel must abort and restart with it — without raising an
/// exception in P_j.

/// One local transaction in the simulation.
struct WeakTxSpec {
  /// Work units (virtual time) for one successful attempt.
  int64_t duration = 1;
  /// Number of aborting attempts before the committing one (retriable
  /// re-invocation, Def. 3).
  int aborts = 0;
  /// Work units into an attempt at which an aborting attempt fails.
  int64_t abort_after = 0;
};

/// Weak (or strong) order constraint: transaction `before` must commit
/// before transaction `after` (indices into the spec vector).
struct OrderConstraint {
  size_t before = 0;
  size_t after = 0;
};

enum class OrderMode {
  kStrong,  // sequential execution of constrained transactions
  kWeak,    // parallel execution, commit order enforced by the subsystem
};

struct WeakOrderReport {
  int64_t makespan = 0;
  /// Restarts of dependent transactions caused by predecessor aborts (only
  /// occurs in weak mode).
  int64_t cascade_restarts = 0;
  std::vector<int64_t> commit_times;
};

/// Runs the simulation. Constraints must form a DAG over the transactions.
Result<WeakOrderReport> SimulateWeakOrder(
    const std::vector<WeakTxSpec>& txs,
    const std::vector<OrderConstraint>& constraints, OrderMode mode);

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_WEAK_ORDER_H_
