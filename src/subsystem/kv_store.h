#ifndef TPM_SUBSYSTEM_KV_STORE_H_
#define TPM_SUBSYSTEM_KV_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpm {

/// The state of a simulated transactional subsystem: a versioned key-value
/// store over string keys and int64 values.
///
/// Absent keys read as 0, so services can be written without existence
/// checks (a key holding 0 and an absent key are indistinguishable; Erase
/// is equivalent to Put 0 plus garbage collection). Each mutation bumps a
/// global version counter used by tests to detect effect-freeness of
/// compensation sequences.
class KvStore {
 public:
  KvStore() = default;

  int64_t Get(const std::string& key) const;
  void Put(const std::string& key, int64_t value);
  void Add(const std::string& key, int64_t delta);
  void Erase(const std::string& key);
  bool Exists(const std::string& key) const;

  uint64_t version() const { return version_; }
  size_t size() const { return data_.size(); }

  /// Full state snapshot, used by tests to compare effects.
  std::map<std::string, int64_t> Snapshot() const;

  /// True iff both stores hold the same live (non-zero) entries.
  bool SameContents(const KvStore& other) const;

 private:
  std::map<std::string, int64_t> data_;
  uint64_t version_ = 0;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_KV_STORE_H_
