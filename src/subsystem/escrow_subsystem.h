#ifndef TPM_SUBSYSTEM_ESCROW_SUBSYSTEM_H_
#define TPM_SUBSYSTEM_ESCROW_SUBSYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/service.h"

namespace tpm {

/// Escrow-counter subsystem (the classical escrow method of O'Neil, as a
/// transactional subsystem in the paper's §2.3 sense): named counters
/// supporting increment, decrement and bounded withdraw, with ADT-level
/// commutativity declared through the ServiceDef op metadata so the
/// scheduler's conflict relation (Def. 6) admits concurrent updates that
/// read/write analysis would serialize.
///
/// Operation kinds and their commutativity table:
///
///   escrow.inc      — deposit; commutes with inc, dec and withdraw.
///   escrow.dec      — the compensating decrement of an inc (Def. 2:
///                     <inc dec> is effect-free); by perfect-closure it
///                     commutes exactly where inc does.
///   escrow.withdraw — forward bounded withdraw under the escrow test;
///                     conflicts only with other withdraws (the one pair
///                     whose outcome can depend on order, near exhaustion).
///
/// Soundness of inc/withdraw commutativity rests on the *reservation
/// discipline*: a deposit is tracked as unstable per-process credit until
/// its process resolves, and the escrow test charges withdrawals against
/// the stable part only,
///
///   stable = balance - pending_deposits,
///
/// so a withdraw's outcome never depends on concurrently executing
/// (still-abortable) increments — both orders return the same values. The
/// same discipline makes the compensating dec infallible (Def. 2 demands a
/// compensation that cannot fail): it consumes the process's own pending
/// credit, which the escrow test never handed out to anyone else.
///
/// Counter state survives a scheduler crash (subsystems are the durable
/// periphery, as with KvSubsystem); prepared transactions are rolled back
/// by AbortAllPrepared during recovery (presumed abort), and per-process
/// pending credit is released when the scheduler reports the process
/// resolved (OnProcessResolved). Credit orphaned by a crash is folded into
/// the stable balance on recovery — a conservative availability release,
/// never a safety loss.
class EscrowSubsystem : public Subsystem {
 public:
  EscrowSubsystem(SubsystemId id, std::string name);

  EscrowSubsystem(const EscrowSubsystem&) = delete;
  EscrowSubsystem& operator=(const EscrowSubsystem&) = delete;

  SubsystemId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  const ServiceRegistry& services() const override { return registry_; }

  /// Creates a counter with the given initial balance and lower bound
  /// (the escrow test keeps balance >= low_bound at all times).
  Status CreateCounter(const std::string& counter, int64_t initial,
                       int64_t low_bound = 0);

  /// Registers an increment / compensating-decrement / bounded-withdraw
  /// service on `counter` (created on demand with balance 0). `amount` is
  /// the default delta when the invocation's param is 0.
  Status RegisterIncService(ServiceId id, const std::string& counter,
                            int64_t amount = 1);
  Status RegisterDecService(ServiceId id, const std::string& counter,
                            int64_t amount = 1);
  Status RegisterWithdrawService(ServiceId id, const std::string& counter,
                                 int64_t amount = 1);
  /// Effect-free balance query (no op binding: reads keep their
  /// conservative read/write conflicts).
  Status RegisterReadService(ServiceId id, const std::string& counter);

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override;
  Status AbortPrepared(TxId tx) override;
  bool WouldBlock(ServiceId service) const override;
  Status AbortAllPrepared() override;
  void OnProcessResolved(ProcessId process, bool committed) override;
  uint64_t StateFingerprint() const override;
  Status AdoptStateFrom(const Subsystem& peer) override;

  int64_t BalanceOf(const std::string& counter) const;
  /// Stable headroom above the lower bound: what the escrow test would let
  /// one withdraw right now.
  int64_t AvailableOf(const std::string& counter) const;

  /// Balances by counter name (state fingerprinting in crash tests).
  std::map<std::string, int64_t> Snapshot() const;

  /// The ADT invariants checked after every chaos/crash recovery:
  /// balance >= low_bound, non-negative pending credit, and
  /// balance - pending >= low_bound (the escrow test's safety envelope).
  Status CheckInvariants() const;

  int64_t invocations() const { return invocations_; }
  int64_t exhaustion_aborts() const { return exhaustion_aborts_; }

 private:
  enum class OpType { kInc, kDec, kWithdraw, kRead };

  struct Counter {
    int64_t balance = 0;
    int64_t low_bound = 0;
    /// Unstable deposit credit per still-unresolved process. Prepared
    /// (in-doubt) withdraws need no separate reservation: they debit the
    /// balance immediately and are credited back on abort, so the debit IS
    /// the reservation.
    std::map<int64_t, int64_t> pending;
    int64_t pending_total = 0;

    int64_t stable() const { return balance - pending_total; }
  };

  struct OpBinding {
    OpType type;
    std::string counter;
    int64_t amount = 1;
  };

  struct PreparedOp {
    ServiceId service;
    std::function<void()> undo;
  };

  Status RegisterOp(ServiceDef def, OpType type, const std::string& counter,
                    int64_t amount);
  /// The closed commutativity table at subsystem level, mirroring the op
  /// metadata the services declare to the scheduler: everything commutes
  /// except withdraw/withdraw, and reads conservatively conflict with every
  /// update.
  static bool OpsCommuteLocally(OpType a, OpType b);
  Counter& EnsureCounter(const std::string& counter);
  /// Executes the op against `c`; fills `ret` and, when `undo` is non-null,
  /// a closure restoring the prior state (prepared invocations).
  Status Apply(const OpBinding& op, Counter& c, const ServiceRequest& request,
               int64_t* ret, std::function<void()>* undo);

  SubsystemId id_;
  std::string name_;
  ServiceRegistry registry_;
  std::map<ServiceId, OpBinding> bindings_;
  std::map<std::string, Counter> counters_;
  std::map<TxId, PreparedOp> prepared_;
  int64_t next_tx_ = 1;
  int64_t invocations_ = 0;
  int64_t exhaustion_aborts_ = 0;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_ESCROW_SUBSYSTEM_H_
