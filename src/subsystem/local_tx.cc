#include "subsystem/local_tx.h"

#include "common/str_util.h"

namespace tpm {

bool LocalTxManager::WouldBlock(const ServiceDef& service) const {
  auto locked = [this](const std::string& key) {
    return locks_.count(key) > 0;
  };
  for (const auto& key : service.read_set) {
    if (locked(key)) return true;
  }
  for (const auto& key : service.write_set) {
    if (locked(key)) return true;
  }
  return false;
}

Result<int64_t> LocalTxManager::RunBody(
    const ServiceDef& service, const ServiceRequest& request,
    std::map<std::string, int64_t>* write_buffer) const {
  // Run the body against a private store seeded with the declared key set —
  // the body may only touch declared keys, so this is an exact sandbox.
  KvStore sandbox;
  for (const auto& key : service.read_set) {
    sandbox.Put(key, store_->Get(key));
  }
  for (const auto& key : service.write_set) {
    sandbox.Put(key, store_->Get(key));
  }
  int64_t ret = 0;
  TPM_RETURN_IF_ERROR(service.body(&sandbox, request, &ret));
  for (const auto& key : service.write_set) {
    (*write_buffer)[key] = sandbox.Get(key);
  }
  return ret;
}

Result<InvocationOutcome> LocalTxManager::InvokeImmediate(
    const ServiceDef& service, const ServiceRequest& request) {
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("service ", service.name, " blocked by prepared transaction"));
  }
  std::map<std::string, int64_t> writes;
  TPM_ASSIGN_OR_RETURN(int64_t ret, RunBody(service, request, &writes));
  for (const auto& [key, value] : writes) {
    store_->Put(key, value);
  }
  return InvocationOutcome{ret};
}

Result<PreparedHandle> LocalTxManager::InvokePrepared(
    const ServiceDef& service, const ServiceRequest& request) {
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("service ", service.name, " blocked by prepared transaction"));
  }
  std::map<std::string, int64_t> writes;
  TPM_ASSIGN_OR_RETURN(int64_t ret, RunBody(service, request, &writes));
  TxId tx(next_tx_++);
  PreparedTx prepared;
  prepared.write_buffer = std::move(writes);
  for (const auto& key : service.read_set) prepared.locked_keys.insert(key);
  for (const auto& key : service.write_set) prepared.locked_keys.insert(key);
  for (const auto& key : prepared.locked_keys) locks_[key] = tx;
  prepared_[tx] = std::move(prepared);
  return PreparedHandle{tx, ret};
}

Status LocalTxManager::CommitPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared transaction ", tx));
  }
  for (const auto& [key, value] : it->second.write_buffer) {
    store_->Put(key, value);
  }
  for (const auto& key : it->second.locked_keys) locks_.erase(key);
  prepared_.erase(it);
  return Status::OK();
}

void LocalTxManager::AbortAllPrepared() {
  prepared_.clear();
  locks_.clear();
}

Status LocalTxManager::AbortPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared transaction ", tx));
  }
  for (const auto& key : it->second.locked_keys) locks_.erase(key);
  prepared_.erase(it);
  return Status::OK();
}

}  // namespace tpm
