#ifndef TPM_SUBSYSTEM_COMMIT_ORDER_H_
#define TPM_SUBSYSTEM_COMMIT_ORDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "subsystem/kv_store.h"
#include "subsystem/service.h"

namespace tpm {

/// Commit-order serializability [BBG89] inside a subsystem — the mechanism
/// §3.6 requires for executing weakly ordered conflicting activities in
/// parallel: multiple local transactions run concurrently against the
/// store; the subsystem guarantees that the overall effect equals the
/// serial execution in the declared (weak) order by controlling commit
/// order and validating reads.
///
/// Model: each local transaction buffers its writes; reads see the store
/// as of its begin plus its own writes (snapshot + read-your-writes).
/// Commit is only allowed in the declared order; at commit, the
/// transaction's read set is validated against writes committed after its
/// begin by transactions ordered before it — on conflict the transaction
/// is aborted and must be re-invoked (the §3.6 restart), exactly the
/// cascade the weak-order simulator models in time.
class CommitOrderedTxManager {
 public:
  explicit CommitOrderedTxManager(KvStore* store) : store_(store) {}

  /// Starts a local transaction with the given commit-order position
  /// (lower positions must commit first). Positions must be unique among
  /// live transactions.
  Result<TxId> Begin(int64_t order_position);

  /// Executes a service body inside the transaction (buffered).
  Status Execute(TxId tx, const ServiceDef& service,
                 const ServiceRequest& request, int64_t* return_value);

  /// Commits the transaction. Fails with kFailedPrecondition if a
  /// lower-positioned live transaction has not committed yet (the caller
  /// retries later), and with kAborted if read validation fails (stale
  /// snapshot) — the transaction is then rolled back and must be restarted
  /// via Begin/Execute.
  Status Commit(TxId tx);

  /// Discards the transaction.
  Status Abort(TxId tx);

  size_t live() const { return txs_.size(); }

 private:
  struct Tx {
    int64_t order_position = 0;
    uint64_t begin_version = 0;
    std::map<std::string, int64_t> writes;
    std::map<std::string, int64_t> reads;  // key -> value observed
  };

  KvStore* store_;
  std::map<TxId, Tx> txs_;
  int64_t next_tx_ = 1;
  int64_t last_committed_position_ = -1;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_COMMIT_ORDER_H_
