#include "subsystem/escrow_subsystem.h"

#include <algorithm>
#include <utility>

#include "common/fingerprint.h"
#include "common/str_util.h"

namespace tpm {

EscrowSubsystem::EscrowSubsystem(SubsystemId id, std::string name)
    : id_(id), name_(std::move(name)) {}

Status EscrowSubsystem::CreateCounter(const std::string& counter,
                                      int64_t initial, int64_t low_bound) {
  if (initial < low_bound) {
    return Status::InvalidArgument(
        StrCat("counter ", counter, " initial balance ", initial,
               " below low bound ", low_bound));
  }
  Counter& c = EnsureCounter(counter);
  c.balance = initial;
  c.low_bound = low_bound;
  return Status::OK();
}

EscrowSubsystem::Counter& EscrowSubsystem::EnsureCounter(
    const std::string& counter) {
  return counters_[counter];
}

Status EscrowSubsystem::RegisterOp(ServiceDef def, OpType type,
                                   const std::string& counter,
                                   int64_t amount) {
  if (amount <= 0) {
    return Status::InvalidArgument(
        StrCat("service ", def.name, ": non-positive amount ", amount));
  }
  def.read_set = {counter};
  if (type != OpType::kRead) def.write_set = {counter};
  // The registry requires a body, but this subsystem dispatches on the op
  // binding instead of executing bodies against a KvStore.
  def.body = [](KvStore*, const ServiceRequest&, int64_t*) {
    return Status::Internal("escrow services are not body-executed");
  };
  TPM_RETURN_IF_ERROR(registry_.Register(def));
  EnsureCounter(counter);
  bindings_[def.id] = OpBinding{type, counter, amount};
  return Status::OK();
}

Status EscrowSubsystem::RegisterIncService(ServiceId id,
                                           const std::string& counter,
                                           int64_t amount) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("escrow.inc/", counter);
  def.op_kind = "escrow.inc";
  def.inverse_op_kind = "escrow.dec";
  def.commutes_with = {"escrow.inc", "escrow.dec", "escrow.withdraw"};
  return RegisterOp(std::move(def), OpType::kInc, counter, amount);
}

Status EscrowSubsystem::RegisterDecService(ServiceId id,
                                           const std::string& counter,
                                           int64_t amount) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("escrow.dec/", counter);
  def.op_kind = "escrow.dec";
  def.inverse_op_kind = "escrow.inc";
  // Commuting pairs arrive via inc's declarations plus perfect-closure.
  return RegisterOp(std::move(def), OpType::kDec, counter, amount);
}

Status EscrowSubsystem::RegisterWithdrawService(ServiceId id,
                                                const std::string& counter,
                                                int64_t amount) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("escrow.withdraw/", counter);
  def.op_kind = "escrow.withdraw";
  // No inverse: withdraws sit at non-compensatable positions (pivot /
  // retriable). Commutativity with inc/dec is declared from the inc side;
  // withdraw/withdraw stays a conflict.
  return RegisterOp(std::move(def), OpType::kWithdraw, counter, amount);
}

Status EscrowSubsystem::RegisterReadService(ServiceId id,
                                            const std::string& counter) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("escrow.read/", counter);
  def.effect_free = true;
  return RegisterOp(std::move(def), OpType::kRead, counter, 1);
}

Status EscrowSubsystem::Apply(const OpBinding& op, Counter& c,
                              const ServiceRequest& request, int64_t* ret,
                              std::function<void()>* undo) {
  const int64_t a = request.param == 0 ? op.amount : request.param;
  if (a <= 0) {
    return Status::InvalidArgument(StrCat("non-positive amount ", a));
  }
  const int64_t pid = request.process.value();
  const std::string counter = op.counter;
  switch (op.type) {
    case OpType::kInc: {
      c.balance += a;
      c.pending[pid] += a;
      c.pending_total += a;
      *ret = a;
      if (undo != nullptr) {
        *undo = [this, counter, pid, a]() {
          Counter& cc = counters_[counter];
          cc.balance -= a;
          // The pending credit may have been (partly) released to stable
          // meanwhile (process resolved before the branch aborted): take
          // back only what is still pending.
          auto it = cc.pending.find(pid);
          int64_t take = 0;
          if (it != cc.pending.end()) {
            take = std::min(a, it->second);
            it->second -= take;
            if (it->second == 0) cc.pending.erase(it);
          }
          cc.pending_total -= take;
        };
      }
      return Status::OK();
    }
    case OpType::kDec: {
      auto it = c.pending.find(pid);
      if (it != c.pending.end() && it->second >= a) {
        // Def. 2 infallibility: the compensating dec consumes the
        // process's own unstable credit, which the escrow test never made
        // available to anyone else — stable is unchanged, so this path
        // cannot fail and commutes with concurrent withdraws.
        c.balance -= a;
        it->second -= a;
        if (it->second == 0) c.pending.erase(it);
        c.pending_total -= a;
        *ret = a;
        if (undo != nullptr) {
          *undo = [this, counter, pid, a]() {
            Counter& cc = counters_[counter];
            cc.balance += a;
            cc.pending[pid] += a;
            cc.pending_total += a;
          };
        }
        return Status::OK();
      }
      // No matching credit: a forward decrement, escrow-tested like a
      // withdraw.
      [[fallthrough]];
    }
    case OpType::kWithdraw: {
      if (c.stable() - a < c.low_bound) {
        ++exhaustion_aborts_;
        return Status::Aborted(
            StrCat("escrow exhausted on ", counter, ": stable ", c.stable(),
                   " - ", a, " < low bound ", c.low_bound));
      }
      c.balance -= a;
      *ret = a;
      if (undo != nullptr) {
        *undo = [this, counter, a]() { counters_[counter].balance += a; };
      }
      return Status::OK();
    }
    case OpType::kRead: {
      *ret = c.balance;
      if (undo != nullptr) *undo = []() {};
      return Status::OK();
    }
  }
  return Status::Internal("unreachable escrow op type");
}

bool EscrowSubsystem::OpsCommuteLocally(OpType a, OpType b) {
  if (a == OpType::kRead || b == OpType::kRead) return a == b;
  return !(a == OpType::kWithdraw && b == OpType::kWithdraw);
}

bool EscrowSubsystem::WouldBlock(ServiceId service) const {
  auto it = bindings_.find(service);
  if (it == bindings_.end()) return false;
  for (const auto& [tx, prep] : prepared_) {
    auto pit = bindings_.find(prep.service);
    if (pit == bindings_.end()) continue;
    if (pit->second.counter != it->second.counter) continue;
    if (!OpsCommuteLocally(it->second.type, pit->second.type)) return true;
  }
  return false;
}

Result<InvocationOutcome> EscrowSubsystem::Invoke(
    ServiceId service, const ServiceRequest& request) {
  ++invocations_;
  auto it = bindings_.find(service);
  if (it == bindings_.end()) {
    return Status::NotFound(StrCat("unknown escrow service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("escrow service ", service, " blocked by a prepared op"));
  }
  int64_t ret = 0;
  TPM_RETURN_IF_ERROR(Apply(it->second, EnsureCounter(it->second.counter),
                            request, &ret, nullptr));
  return InvocationOutcome{ret};
}

Result<PreparedHandle> EscrowSubsystem::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  ++invocations_;
  auto it = bindings_.find(service);
  if (it == bindings_.end()) {
    return Status::NotFound(StrCat("unknown escrow service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("escrow service ", service, " blocked by a prepared op"));
  }
  int64_t ret = 0;
  std::function<void()> undo;
  TPM_RETURN_IF_ERROR(Apply(it->second, EnsureCounter(it->second.counter),
                            request, &ret, &undo));
  // The op executed against live state (commuting ops cannot observe the
  // difference; non-commuting ones are blocked above until resolution);
  // abort reverses it via the captured undo.
  TxId tx(next_tx_++);
  prepared_[tx] = PreparedOp{service, std::move(undo)};
  return PreparedHandle{tx, ret};
}

Status EscrowSubsystem::CommitPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared escrow tx ", tx));
  }
  prepared_.erase(it);
  return Status::OK();
}

Status EscrowSubsystem::AbortPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared escrow tx ", tx));
  }
  it->second.undo();
  prepared_.erase(it);
  return Status::OK();
}

Status EscrowSubsystem::AbortAllPrepared() {
  // Presumed abort on recovery: undo in reverse prepare order (LIFO), the
  // order a cascaded rollback would use.
  for (auto it = prepared_.rbegin(); it != prepared_.rend(); ++it) {
    it->second.undo();
  }
  prepared_.clear();
  return Status::OK();
}

void EscrowSubsystem::OnProcessResolved(ProcessId process, bool /*committed*/) {
  // Commit: the deposits are final, the credit becomes stable balance.
  // Abort: every compensated inc consumed its credit already; whatever is
  // left belongs to committed-but-uncompensated deposits (e.g. a pivot's),
  // which are equally final.
  const int64_t pid = process.value();
  for (auto& [name, c] : counters_) {
    auto it = c.pending.find(pid);
    if (it == c.pending.end()) continue;
    c.pending_total -= it->second;
    c.pending.erase(it);
  }
}

int64_t EscrowSubsystem::BalanceOf(const std::string& counter) const {
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second.balance;
}

int64_t EscrowSubsystem::AvailableOf(const std::string& counter) const {
  auto it = counters_.find(counter);
  if (it == counters_.end()) return 0;
  return it->second.stable() - it->second.low_bound;
}

std::map<std::string, int64_t> EscrowSubsystem::Snapshot() const {
  std::map<std::string, int64_t> snapshot;
  for (const auto& [name, c] : counters_) snapshot[name] = c.balance;
  return snapshot;
}

Status EscrowSubsystem::CheckInvariants() const {
  for (const auto& [name, c] : counters_) {
    if (c.balance < c.low_bound) {
      return Status::Internal(StrCat("escrow counter ", name, ": balance ",
                                     c.balance, " below low bound ",
                                     c.low_bound));
    }
    int64_t pending_sum = 0;
    for (const auto& [pid, credit] : c.pending) {
      if (credit < 0) {
        return Status::Internal(StrCat("escrow counter ", name,
                                       ": negative pending credit of P", pid));
      }
      pending_sum += credit;
    }
    if (pending_sum != c.pending_total) {
      return Status::Internal(
          StrCat("escrow counter ", name, ": pending total ", c.pending_total,
                 " != sum ", pending_sum));
    }
    if (c.stable() < c.low_bound) {
      return Status::Internal(
          StrCat("escrow counter ", name, ": stable ", c.stable(),
                 " below low bound ", c.low_bound,
                 " (the escrow test's envelope was violated)"));
    }
  }
  return Status::OK();
}

uint64_t EscrowSubsystem::StateFingerprint() const {
  uint64_t h = kFnv1aOffsetBasis;
  for (const auto& [name, c] : counters_) {
    h = Fnv1a(h, name);
    h = Fnv1aInt(h, static_cast<uint64_t>(c.balance));
    h = Fnv1aInt(h, static_cast<uint64_t>(c.low_bound));
    h = Fnv1aInt(h, static_cast<uint64_t>(c.pending_total));
    for (const auto& [pid, credit] : c.pending) {
      h = Fnv1aInt(h, static_cast<uint64_t>(pid));
      h = Fnv1aInt(h, static_cast<uint64_t>(credit));
    }
  }
  h = Fnv1aInt(h, static_cast<uint64_t>(next_tx_));
  h = Fnv1aInt(h, static_cast<uint64_t>(invocations_));
  h = Fnv1aInt(h, static_cast<uint64_t>(exhaustion_aborts_));
  return h;
}

Status EscrowSubsystem::AdoptStateFrom(const Subsystem& peer) {
  const auto* other = dynamic_cast<const EscrowSubsystem*>(&peer);
  if (other == nullptr) {
    return Status::InvalidArgument(
        StrCat("AdoptStateFrom: ", name_, " cannot adopt from ", peer.name(),
               " (not an EscrowSubsystem)"));
  }
  counters_ = other->counters_;
  next_tx_ = other->next_tx_;
  invocations_ = other->invocations_;
  exhaustion_aborts_ = other->exhaustion_aborts_;
  return Status::OK();
}

}  // namespace tpm
