#include "subsystem/weak_order.h"

#include <algorithm>

#include "common/dag.h"

namespace tpm {

namespace {

// Absolute times at which the transaction's failing attempts abort, given
// its (re)start time.
std::vector<int64_t> AbortTimes(const WeakTxSpec& tx, int64_t start) {
  std::vector<int64_t> times;
  int64_t t = start;
  for (int k = 0; k < tx.aborts; ++k) {
    t += tx.abort_after;
    times.push_back(t);
  }
  return times;
}

// Time of the committing attempt's completion, given the (re)start time:
// failing attempts each burn `abort_after`, the final attempt burns
// `duration`.
int64_t FinishTime(const WeakTxSpec& tx, int64_t start) {
  return start + static_cast<int64_t>(tx.aborts) * tx.abort_after +
         tx.duration;
}

}  // namespace

Result<WeakOrderReport> SimulateWeakOrder(
    const std::vector<WeakTxSpec>& txs,
    const std::vector<OrderConstraint>& constraints, OrderMode mode) {
  const int n = static_cast<int>(txs.size());
  Dag dag(n);
  for (const OrderConstraint& c : constraints) {
    if (c.before >= txs.size() || c.after >= txs.size()) {
      return Status::InvalidArgument("constraint index out of range");
    }
    dag.AddEdge(static_cast<int>(c.before), static_cast<int>(c.after));
  }
  TPM_ASSIGN_OR_RETURN(std::vector<int> topo, dag.TopologicalOrder());

  WeakOrderReport report;
  std::vector<int64_t> start(n, 0);
  std::vector<int64_t> finish(n, 0);
  std::vector<int64_t> commit(n, 0);
  std::vector<std::vector<int64_t>> abort_times(n);

  for (int v : topo) {
    const WeakTxSpec& tx = txs[v];
    if (mode == OrderMode::kStrong) {
      // Strong order: invoke only after every predecessor terminated.
      int64_t s = 0;
      for (int p : dag.Predecessors(v)) s = std::max(s, commit[p]);
      start[v] = s;
    } else {
      // Weak order: start immediately, but restart whenever a predecessor
      // running in parallel aborts (§3.6 cascade).
      int64_t s = 0;
      bool changed = true;
      while (changed) {
        changed = false;
        for (int p : dag.Predecessors(v)) {
          for (int64_t t : abort_times[p]) {
            // A predecessor abort at time t kills this transaction if it is
            // already running and not yet past the predecessor's commit.
            if (t > s && s < finish[p]) {
              s = t;  // restart together with the predecessor's re-invocation
              ++report.cascade_restarts;
              changed = true;
            }
          }
        }
      }
      start[v] = s;
    }
    abort_times[v] = AbortTimes(tx, start[v]);
    finish[v] = FinishTime(tx, start[v]);
    // Commit-order serializability: commit after all predecessors.
    int64_t c = finish[v];
    for (int p : dag.Predecessors(v)) c = std::max(c, commit[p]);
    commit[v] = c;
  }

  report.commit_times = commit;
  for (int64_t c : commit) report.makespan = std::max(report.makespan, c);
  return report;
}

}  // namespace tpm
