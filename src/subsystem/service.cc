#include "subsystem/service.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/str_util.h"

namespace tpm {

int64_t RetryPolicy::BackoffTicks(int attempt, Rng* rng) const {
  if (backoff_base_ticks <= 0 || attempt <= 0) return 0;
  int64_t ticks;
  if (exponential) {
    ticks = backoff_base_ticks;
    for (int i = 1; i < attempt; ++i) {
      if (ticks > std::numeric_limits<int64_t>::max() / 2) break;
      ticks *= 2;
    }
  } else {
    ticks = backoff_base_ticks * attempt;
  }
  if (max_backoff_ticks > 0 && ticks > max_backoff_ticks) {
    ticks = max_backoff_ticks;
  }
  if (full_jitter && rng != nullptr) {
    ticks = rng->NextInRange(0, ticks);
  }
  return ticks;
}

Status ServiceRegistry::Register(ServiceDef def) {
  if (!def.id.valid()) {
    return Status::InvalidArgument("service id invalid");
  }
  if (def.body == nullptr) {
    return Status::InvalidArgument(StrCat("service ", def.name, " lacks a body"));
  }
  if (services_.count(def.id) > 0) {
    return Status::AlreadyExists(StrCat("service ", def.id, " already registered"));
  }
  services_.emplace(def.id, std::move(def));
  return Status::OK();
}

Result<const ServiceDef*> ServiceRegistry::Lookup(ServiceId id) const {
  auto it = services_.find(id);
  if (it == services_.end()) {
    return Status::NotFound(StrCat("unknown service ", id));
  }
  return &it->second;
}

std::vector<ServiceId> ServiceRegistry::AllIds() const {
  std::vector<ServiceId> ids;
  ids.reserve(services_.size());
  for (const auto& [id, def] : services_) ids.push_back(id);
  return ids;
}

namespace {

bool SetsIntersect(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  for (const auto& key : a) {
    if (std::find(b.begin(), b.end(), key) != b.end()) return true;
  }
  return false;
}

}  // namespace

void ServiceRegistry::DeriveConflicts(ConflictSpec* spec) const {
  for (const auto& [id_a, a] : services_) {
    if (a.effect_free) spec->MarkEffectFree(id_a);
    for (const auto& [id_b, b] : services_) {
      if (id_b < id_a) continue;
      // Conflict iff one's writes intersect the other's reads or writes.
      const bool conflict = SetsIntersect(a.write_set, b.write_set) ||
                            SetsIntersect(a.write_set, b.read_set) ||
                            SetsIntersect(a.read_set, b.write_set);
      if (conflict) spec->AddConflict(id_a, id_b);
    }
  }
  // Op-kind metadata: bind services to interned op kinds and declare the
  // commuting pairs / inverse pairings, downgrading the conservative
  // read/write conflicts where the ADT semantics admit more concurrency.
  for (const auto& [id, def] : services_) {
    if (def.op_kind.empty()) continue;
    const int op = spec->RegisterOpKind(def.op_kind);
    spec->BindOp(id, op);
    if (!def.inverse_op_kind.empty()) {
      spec->SetInverseOp(op, spec->RegisterOpKind(def.inverse_op_kind));
    }
    for (const std::string& other : def.commutes_with) {
      spec->AddCommutingOps(op, spec->RegisterOpKind(other));
    }
  }
}

ServiceDef MakePutService(ServiceId id, std::string name, std::string key) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.read_set = {key};
  def.write_set = {key};
  def.body = [key](KvStore* store, const ServiceRequest& request,
                   int64_t* ret) {
    *ret = store->Get(key);
    store->Put(key, request.param);
    return Status::OK();
  };
  return def;
}

namespace {

ServiceDef MakeDeltaService(ServiceId id, std::string name, std::string key,
                            int64_t sign) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.read_set = {key};
  def.write_set = {key};
  def.body = [key, sign](KvStore* store, const ServiceRequest& request,
                         int64_t* ret) {
    const int64_t amount = request.param == 0 ? 1 : request.param;
    store->Add(key, sign * amount);
    *ret = store->Get(key);
    return Status::OK();
  };
  return def;
}

}  // namespace

ServiceDef MakeAddService(ServiceId id, std::string name, std::string key) {
  return MakeDeltaService(id, std::move(name), std::move(key), +1);
}

ServiceDef MakeSubService(ServiceId id, std::string name, std::string key) {
  return MakeDeltaService(id, std::move(name), std::move(key), -1);
}

ServiceDef MakeReadService(ServiceId id, std::string name, std::string key) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.read_set = {key};
  def.effect_free = true;
  def.body = [key](KvStore* store, const ServiceRequest& request,
                   int64_t* ret) {
    (void)request;
    *ret = store->Get(key);
    return Status::OK();
  };
  return def;
}

ServiceDef MakeEraseService(ServiceId id, std::string name, std::string key) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.read_set = {key};
  def.write_set = {key};
  def.body = [key](KvStore* store, const ServiceRequest& request,
                   int64_t* ret) {
    (void)request;
    *ret = store->Get(key);
    store->Erase(key);
    return Status::OK();
  };
  return def;
}

}  // namespace tpm
