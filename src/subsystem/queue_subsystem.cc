#include "subsystem/queue_subsystem.h"

#include <algorithm>
#include <utility>

#include "common/fingerprint.h"
#include "common/str_util.h"

namespace tpm {

QueueSubsystem::QueueSubsystem(SubsystemId id, std::string name)
    : id_(id), name_(std::move(name)) {}

Status QueueSubsystem::CreateQueue(const std::string& queue,
                                   int initial_tokens) {
  if (initial_tokens < 0) {
    return Status::InvalidArgument(
        StrCat("queue ", queue, ": negative initial token count"));
  }
  Queue& q = EnsureQueue(queue);
  for (int i = 0; i < initial_tokens; ++i) {
    q.tokens.push_back(next_token_++);
  }
  return Status::OK();
}

QueueSubsystem::Queue& QueueSubsystem::EnsureQueue(const std::string& queue) {
  return queues_[queue];
}

Status QueueSubsystem::RegisterOp(ServiceDef def, OpType type,
                                  const std::string& queue) {
  def.read_set = {queue};
  if (type != OpType::kLen) def.write_set = {queue};
  // The registry requires a body, but this subsystem dispatches on the op
  // binding instead of executing bodies against a KvStore.
  def.body = [](KvStore*, const ServiceRequest&, int64_t*) {
    return Status::Internal("queue services are not body-executed");
  };
  TPM_RETURN_IF_ERROR(registry_.Register(def));
  EnsureQueue(queue);
  bindings_[def.id] = OpBinding{type, queue};
  return Status::OK();
}

Status QueueSubsystem::RegisterEnqueueService(ServiceId id,
                                              const std::string& queue) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("queue.enq/", queue);
  def.op_kind = "queue.enq";
  def.inverse_op_kind = "queue.rm";
  def.commutes_with = {"queue.enq"};
  return RegisterOp(std::move(def), OpType::kEnq, queue);
}

Status QueueSubsystem::RegisterDequeueService(ServiceId id,
                                              const std::string& queue) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("queue.deq/", queue);
  def.op_kind = "queue.deq";
  def.inverse_op_kind = "queue.req";
  // No commuting pairs: a dequeue races for the head with every other
  // queue update.
  return RegisterOp(std::move(def), OpType::kDeq, queue);
}

Status QueueSubsystem::RegisterRemoveService(ServiceId id,
                                             const std::string& queue) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("queue.rm/", queue);
  def.op_kind = "queue.rm";
  def.inverse_op_kind = "queue.enq";
  // Commuting pairs arrive via enq's declaration plus perfect-closure.
  return RegisterOp(std::move(def), OpType::kRm, queue);
}

Status QueueSubsystem::RegisterRequeueService(ServiceId id,
                                              const std::string& queue) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("queue.req/", queue);
  def.op_kind = "queue.req";
  def.inverse_op_kind = "queue.deq";
  return RegisterOp(std::move(def), OpType::kReq, queue);
}

Status QueueSubsystem::RegisterLenService(ServiceId id,
                                          const std::string& queue) {
  ServiceDef def;
  def.id = id;
  def.name = StrCat("queue.len/", queue);
  def.effect_free = true;
  return RegisterOp(std::move(def), OpType::kLen, queue);
}

Status QueueSubsystem::Apply(const OpBinding& op, const ServiceRequest& request,
                             int64_t* ret, std::function<void()>* undo) {
  Queue& q = EnsureQueue(op.queue);
  const std::string queue = op.queue;
  const std::pair<int64_t, int64_t> key{request.process.value(),
                                        request.activity.value()};
  switch (op.type) {
    case OpType::kEnq: {
      const int64_t token = next_token_++;
      q.tokens.push_back(token);
      enqueued_by_activity_[key] = token;
      *ret = token;
      if (undo != nullptr) {
        *undo = [this, queue, key, token]() {
          Queue& qq = queues_[queue];
          auto it =
              std::find(qq.tokens.begin(), qq.tokens.end(), token);
          if (it != qq.tokens.end()) qq.tokens.erase(it);
          enqueued_by_activity_.erase(key);
        };
      }
      return Status::OK();
    }
    case OpType::kDeq: {
      if (q.tokens.empty()) {
        ++empty_dequeues_;
        return Status::Aborted(StrCat("queue ", queue, " is empty"));
      }
      const int64_t token = q.tokens.front();
      q.tokens.pop_front();
      dequeued_by_activity_[key] = token;
      *ret = token;
      if (undo != nullptr) {
        *undo = [this, queue, key, token]() {
          queues_[queue].tokens.push_front(token);
          dequeued_by_activity_.erase(key);
        };
      }
      return Status::OK();
    }
    case OpType::kRm: {
      auto rec = enqueued_by_activity_.find(key);
      if (rec == enqueued_by_activity_.end()) {
        return Status::Aborted(
            StrCat("queue ", queue, ": no enqueued token of P", key.first,
                   "/a", key.second, " to remove (double compensation?)"));
      }
      const int64_t token = rec->second;
      auto it = std::find(q.tokens.begin(), q.tokens.end(), token);
      if (it == q.tokens.end()) {
        return Status::Aborted(StrCat("queue ", queue, ": token ", token,
                                      " already gone — cannot compensate"));
      }
      const int64_t pos = it - q.tokens.begin();
      q.tokens.erase(it);
      enqueued_by_activity_.erase(rec);
      *ret = token;
      if (undo != nullptr) {
        *undo = [this, queue, key, token, pos]() {
          Queue& qq = queues_[queue];
          const int64_t at =
              std::min<int64_t>(pos, static_cast<int64_t>(qq.tokens.size()));
          qq.tokens.insert(qq.tokens.begin() + at, token);
          enqueued_by_activity_[key] = token;
        };
      }
      return Status::OK();
    }
    case OpType::kReq: {
      auto rec = dequeued_by_activity_.find(key);
      if (rec == dequeued_by_activity_.end()) {
        return Status::Aborted(
            StrCat("queue ", queue, ": no dequeued token of P", key.first,
                   "/a", key.second, " to requeue (double compensation?)"));
      }
      const int64_t token = rec->second;
      q.tokens.push_front(token);
      dequeued_by_activity_.erase(rec);
      *ret = token;
      if (undo != nullptr) {
        *undo = [this, queue, key, token]() {
          Queue& qq = queues_[queue];
          if (!qq.tokens.empty() && qq.tokens.front() == token) {
            qq.tokens.pop_front();
          }
          dequeued_by_activity_[key] = token;
        };
      }
      return Status::OK();
    }
    case OpType::kLen: {
      *ret = static_cast<int64_t>(q.tokens.size());
      if (undo != nullptr) *undo = []() {};
      return Status::OK();
    }
  }
  return Status::Internal("unreachable queue op type");
}

bool QueueSubsystem::OpsCommuteLocally(OpType a, OpType b) {
  if (a == OpType::kLen || b == OpType::kLen) return a == b;
  if (a == OpType::kDeq || a == OpType::kReq) return false;
  if (b == OpType::kDeq || b == OpType::kReq) return false;
  return true;  // enq/rm pairs
}

bool QueueSubsystem::WouldBlock(ServiceId service) const {
  auto it = bindings_.find(service);
  if (it == bindings_.end()) return false;
  for (const auto& [tx, prep] : prepared_) {
    auto pit = bindings_.find(prep.service);
    if (pit == bindings_.end()) continue;
    if (pit->second.queue != it->second.queue) continue;
    if (!OpsCommuteLocally(it->second.type, pit->second.type)) return true;
  }
  return false;
}

Result<InvocationOutcome> QueueSubsystem::Invoke(
    ServiceId service, const ServiceRequest& request) {
  ++invocations_;
  auto it = bindings_.find(service);
  if (it == bindings_.end()) {
    return Status::NotFound(StrCat("unknown queue service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("queue service ", service, " blocked by a prepared op"));
  }
  int64_t ret = 0;
  TPM_RETURN_IF_ERROR(Apply(it->second, request, &ret, nullptr));
  return InvocationOutcome{ret};
}

Result<PreparedHandle> QueueSubsystem::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  ++invocations_;
  auto it = bindings_.find(service);
  if (it == bindings_.end()) {
    return Status::NotFound(StrCat("unknown queue service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("queue service ", service, " blocked by a prepared op"));
  }
  int64_t ret = 0;
  std::function<void()> undo;
  TPM_RETURN_IF_ERROR(Apply(it->second, request, &ret, &undo));
  // Executed against live state (commuting ops cannot observe the
  // difference; non-commuting ones are blocked above until resolution);
  // abort reverses it via the captured undo.
  TxId tx(next_tx_++);
  prepared_[tx] = PreparedOp{service, std::move(undo)};
  return PreparedHandle{tx, ret};
}

Status QueueSubsystem::CommitPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared queue tx ", tx));
  }
  prepared_.erase(it);
  return Status::OK();
}

Status QueueSubsystem::AbortPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared queue tx ", tx));
  }
  it->second.undo();
  prepared_.erase(it);
  return Status::OK();
}

Status QueueSubsystem::AbortAllPrepared() {
  // Presumed abort on recovery: undo in reverse prepare order (LIFO).
  for (auto it = prepared_.rbegin(); it != prepared_.rend(); ++it) {
    it->second.undo();
  }
  prepared_.clear();
  return Status::OK();
}

void QueueSubsystem::OnProcessResolved(ProcessId process, bool /*committed*/) {
  // The process can no longer compensate: its token bookkeeping is dead.
  const int64_t pid = process.value();
  auto drop = [pid](std::map<std::pair<int64_t, int64_t>, int64_t>& m) {
    for (auto it = m.lower_bound({pid, INT64_MIN});
         it != m.end() && it->first.first == pid;) {
      it = m.erase(it);
    }
  };
  drop(enqueued_by_activity_);
  drop(dequeued_by_activity_);
}

int64_t QueueSubsystem::LengthOf(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0
                             : static_cast<int64_t>(it->second.tokens.size());
}

std::map<std::string, std::deque<int64_t>> QueueSubsystem::Snapshot() const {
  std::map<std::string, std::deque<int64_t>> snapshot;
  for (const auto& [name, q] : queues_) snapshot[name] = q.tokens;
  return snapshot;
}

Status QueueSubsystem::CheckInvariants() const {
  std::set<int64_t> seen;
  for (const auto& [name, q] : queues_) {
    for (int64_t token : q.tokens) {
      if (token <= 0 || token >= next_token_) {
        return Status::Internal(StrCat("queue ", name, ": token ", token,
                                       " outside the issued range"));
      }
      if (!seen.insert(token).second) {
        return Status::Internal(
            StrCat("queue ", name, ": duplicate token ", token,
                   " (a compensation or recovery replayed an effect)"));
      }
    }
  }
  for (const auto& [key, token] : dequeued_by_activity_) {
    if (seen.count(token) > 0) {
      return Status::Internal(
          StrCat("token ", token, " recorded as dequeued by P", key.first,
                 " but still present in a queue"));
    }
  }
  return Status::OK();
}

uint64_t QueueSubsystem::StateFingerprint() const {
  uint64_t h = kFnv1aOffsetBasis;
  for (const auto& [name, q] : queues_) {
    h = Fnv1a(h, name);
    for (int64_t token : q.tokens) {
      h = Fnv1aInt(h, static_cast<uint64_t>(token));
    }
  }
  auto fold_bookkeeping =
      [&h](const std::map<std::pair<int64_t, int64_t>, int64_t>& by_activity) {
        for (const auto& [key, token] : by_activity) {
          h = Fnv1aInt(h, static_cast<uint64_t>(key.first));
          h = Fnv1aInt(h, static_cast<uint64_t>(key.second));
          h = Fnv1aInt(h, static_cast<uint64_t>(token));
        }
      };
  fold_bookkeeping(enqueued_by_activity_);
  fold_bookkeeping(dequeued_by_activity_);
  h = Fnv1aInt(h, static_cast<uint64_t>(next_token_));
  h = Fnv1aInt(h, static_cast<uint64_t>(next_tx_));
  h = Fnv1aInt(h, static_cast<uint64_t>(invocations_));
  h = Fnv1aInt(h, static_cast<uint64_t>(empty_dequeues_));
  return h;
}

Status QueueSubsystem::AdoptStateFrom(const Subsystem& peer) {
  const auto* other = dynamic_cast<const QueueSubsystem*>(&peer);
  if (other == nullptr) {
    return Status::InvalidArgument(
        StrCat("AdoptStateFrom: ", name_, " cannot adopt from ", peer.name(),
               " (not a QueueSubsystem)"));
  }
  queues_ = other->queues_;
  enqueued_by_activity_ = other->enqueued_by_activity_;
  dequeued_by_activity_ = other->dequeued_by_activity_;
  next_token_ = other->next_token_;
  next_tx_ = other->next_tx_;
  invocations_ = other->invocations_;
  empty_dequeues_ = other->empty_dequeues_;
  return Status::OK();
}

}  // namespace tpm
