#include "subsystem/commit_order.h"

#include "common/str_util.h"

namespace tpm {

Result<TxId> CommitOrderedTxManager::Begin(int64_t order_position) {
  if (order_position <= last_committed_position_) {
    return Status::InvalidArgument(
        StrCat("order position ", order_position,
               " already passed (last committed: ",
               last_committed_position_, ")"));
  }
  for (const auto& [tx, state] : txs_) {
    if (state.order_position == order_position) {
      return Status::AlreadyExists(
          StrCat("order position ", order_position, " already taken"));
    }
  }
  TxId tx(next_tx_++);
  Tx state;
  state.order_position = order_position;
  state.begin_version = store_->version();
  txs_[tx] = std::move(state);
  return tx;
}

Status CommitOrderedTxManager::Execute(TxId tx, const ServiceDef& service,
                                       const ServiceRequest& request,
                                       int64_t* return_value) {
  auto it = txs_.find(tx);
  if (it == txs_.end()) {
    return Status::NotFound(StrCat("unknown transaction ", tx));
  }
  Tx& state = it->second;
  // Sandbox with snapshot + read-your-writes semantics over the declared
  // key sets.
  KvStore sandbox;
  auto read_through = [&](const std::string& key) {
    auto write = state.writes.find(key);
    if (write != state.writes.end()) return write->second;
    int64_t value = store_->Get(key);
    state.reads.emplace(key, value);  // first read wins (snapshot record)
    return value;
  };
  for (const auto& key : service.read_set) sandbox.Put(key, read_through(key));
  for (const auto& key : service.write_set) {
    sandbox.Put(key, read_through(key));
  }
  int64_t ret = 0;
  TPM_RETURN_IF_ERROR(service.body(&sandbox, request, &ret));
  for (const auto& key : service.write_set) {
    state.writes[key] = sandbox.Get(key);
  }
  if (return_value != nullptr) *return_value = ret;
  return Status::OK();
}

Status CommitOrderedTxManager::Commit(TxId tx) {
  auto it = txs_.find(tx);
  if (it == txs_.end()) {
    return Status::NotFound(StrCat("unknown transaction ", tx));
  }
  Tx& state = it->second;
  // Commit-order gate: every live transaction with a lower position must
  // commit first.
  for (const auto& [other, other_state] : txs_) {
    if (other != tx && other_state.order_position < state.order_position) {
      return Status::FailedPrecondition(
          StrCat("transaction at position ", other_state.order_position,
                 " must commit before position ", state.order_position));
    }
  }
  // Read validation: a read is stale if the key's current value differs
  // from what this transaction observed (someone ordered before us
  // committed a conflicting write after our begin).
  for (const auto& [key, observed] : state.reads) {
    if (store_->Get(key) != observed) {
      txs_.erase(it);
      return Status::Aborted(
          StrCat("stale read of '", key, "': restart required (§3.6)"));
    }
  }
  for (const auto& [key, value] : state.writes) {
    store_->Put(key, value);
  }
  last_committed_position_ = state.order_position;
  txs_.erase(it);
  return Status::OK();
}

Status CommitOrderedTxManager::Abort(TxId tx) {
  if (txs_.erase(tx) == 0) {
    return Status::NotFound(StrCat("unknown transaction ", tx));
  }
  return Status::OK();
}

}  // namespace tpm
