#include "subsystem/subsystem_proxy.h"

#include <utility>

#include "common/str_util.h"

namespace tpm {

SubsystemProxy::SubsystemProxy(Subsystem* inner, VirtualClock* clock,
                               SubsystemProxyOptions options)
    : inner_(inner), clock_(clock), options_(options) {}

BreakerState SubsystemProxy::breaker_state() const {
  if (options_.breaker_enabled && state_ == BreakerState::kOpen &&
      clock_->now() >= opened_at_ + options_.cooldown_ticks) {
    state_ = BreakerState::kHalfOpen;
  }
  return state_;
}

void SubsystemProxy::TripOpen() {
  state_ = BreakerState::kOpen;
  opened_at_ = clock_->now();
  window_.clear();
  ++counters_.breaker_trips;
}

void SubsystemProxy::RecordSample(bool failure) {
  window_.push_back(failure);
  while (static_cast<int>(window_.size()) > options_.window) {
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) < options_.min_samples) return;
  int failures = 0;
  for (bool f : window_) failures += f ? 1 : 0;
  if (static_cast<double>(failures) >=
      options_.failure_threshold * static_cast<double>(window_.size())) {
    TripOpen();
  }
}

SubsystemProxy::Gate SubsystemProxy::BeginInvocation() {
  Gate gate;
  if (options_.breaker_enabled) {
    switch (breaker_state()) {
      case BreakerState::kOpen:
        ++counters_.rejected_while_open;
        gate.admitted = false;
        // kUnavailable: the scheduler's benign-wait path — the rejection
        // consumes no Def. 3 retry and parks/waits instead.
        gate.rejection = Status::Unavailable(
            StrCat("circuit breaker open for subsystem ", inner_->name()));
        return gate;
      case BreakerState::kHalfOpen:
        gate.probe = true;
        ++counters_.probe_invocations;
        break;
      case BreakerState::kClosed:
        break;
    }
  }
  if (options_.deadline_ticks > 0) {
    clock_->BeginDeadline(clock_->now() + options_.deadline_ticks);
  }
  return gate;
}

Status SubsystemProxy::FinishInvocation(const Gate& gate, Status inner_status) {
  bool expired = false;
  if (options_.deadline_ticks > 0) {
    expired = clock_->deadline_expired();
    clock_->EndDeadline();
  }
  Status status = std::move(inner_status);
  // A call that both exceeded its budget and failed is a deadline failure:
  // the fault layer guarantees the abort happened before the local
  // transaction ran, so retriable semantics hold (Def. 3). If the inner
  // call *succeeded* despite blowing the budget, the commit cannot be
  // taken back — the success stands and only the breaker window records
  // the slowness as a failure sample.
  if (expired && !status.ok()) {
    ++counters_.deadline_failures;
    status = Status::Aborted(StrCat("deadline of ", options_.deadline_ticks,
                                    " ticks exceeded invoking subsystem ",
                                    inner_->name()));
  }
  if (!options_.breaker_enabled) return status;
  // Breaker sampling: aborts and deadline expiries are failures;
  // kUnavailable (blocked on prepared locks) is congestion, not sickness —
  // it is not sampled.
  const bool failure = expired || status.IsAborted();
  const bool success = status.ok() && !expired;
  if (gate.probe) {
    if (failure) {
      TripOpen();
    } else if (success) {
      state_ = BreakerState::kClosed;
      window_.clear();
    }
    return status;
  }
  if (failure || success) RecordSample(failure);
  return status;
}

Result<InvocationOutcome> SubsystemProxy::Invoke(
    ServiceId service, const ServiceRequest& request) {
  Gate gate = BeginInvocation();
  if (!gate.admitted) return gate.rejection;
  Result<InvocationOutcome> outcome = inner_->Invoke(service, request);
  Status status = FinishInvocation(
      gate, outcome.ok() ? Status::OK() : outcome.status());
  if (!status.ok()) return status;
  return outcome;
}

Result<PreparedHandle> SubsystemProxy::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  Gate gate = BeginInvocation();
  if (!gate.admitted) return gate.rejection;
  Result<PreparedHandle> prepared = inner_->InvokePrepared(service, request);
  Status status = FinishInvocation(
      gate, prepared.ok() ? Status::OK() : prepared.status());
  if (!status.ok()) return status;
  return prepared;
}

}  // namespace tpm
