#ifndef TPM_SUBSYSTEM_LOCAL_TX_H_
#define TPM_SUBSYSTEM_LOCAL_TX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/ids.h"
#include "common/status.h"
#include "subsystem/kv_store.h"
#include "subsystem/service.h"

namespace tpm {

/// Result of an immediately committed local transaction.
struct InvocationOutcome {
  int64_t return_value = 0;
};

/// A prepared (phase-one) local transaction: effects are buffered and the
/// touched keys are locked until CommitPrepared/AbortPrepared.
struct PreparedHandle {
  TxId tx;
  int64_t return_value = 0;
};

/// Executes service invocations as atomic local transactions against a
/// KvStore.
///
/// Isolation: a service body runs against a private copy of its declared
/// key set; effects reach the shared store only at commit. Prepared
/// transactions (the phase-one state of the two-phase commit protocol
/// required for deferred commits, Lemma 1) keep their write buffer and hold
/// locks on their read and write sets; conflicting invocations are refused
/// with kUnavailable until the prepared transaction resolves.
class LocalTxManager {
 public:
  explicit LocalTxManager(KvStore* store) : store_(store) {}

  /// True iff an invocation of `service` would block on locks held by
  /// prepared transactions.
  bool WouldBlock(const ServiceDef& service) const;

  /// Runs the service as an atomic local transaction and commits it.
  Result<InvocationOutcome> InvokeImmediate(const ServiceDef& service,
                                            const ServiceRequest& request);

  /// Runs the service and leaves the local transaction prepared: effects
  /// buffered, locks held.
  Result<PreparedHandle> InvokePrepared(const ServiceDef& service,
                                        const ServiceRequest& request);

  /// Applies a prepared transaction's buffered effects and releases its
  /// locks.
  Status CommitPrepared(TxId tx);

  /// Discards a prepared transaction and releases its locks. The shared
  /// store was never touched, so no undo is needed.
  Status AbortPrepared(TxId tx);

  /// Discards every prepared transaction (presumed abort on recovery).
  void AbortAllPrepared();

  size_t num_prepared() const { return prepared_.size(); }

 private:
  struct PreparedTx {
    std::map<std::string, int64_t> write_buffer;
    std::set<std::string> locked_keys;
  };

  Result<int64_t> RunBody(const ServiceDef& service,
                          const ServiceRequest& request,
                          std::map<std::string, int64_t>* write_buffer) const;

  KvStore* store_;
  std::map<TxId, PreparedTx> prepared_;
  std::map<std::string, TxId> locks_;
  int64_t next_tx_ = 1;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_LOCAL_TX_H_
