#include "subsystem/kv_store.h"

namespace tpm {

int64_t KvStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second;
}

void KvStore::Put(const std::string& key, int64_t value) {
  ++version_;
  if (value == 0) {
    data_.erase(key);
  } else {
    data_[key] = value;
  }
}

void KvStore::Add(const std::string& key, int64_t delta) {
  Put(key, Get(key) + delta);
}

void KvStore::Erase(const std::string& key) { Put(key, 0); }

bool KvStore::Exists(const std::string& key) const {
  return data_.count(key) > 0;
}

std::map<std::string, int64_t> KvStore::Snapshot() const { return data_; }

bool KvStore::SameContents(const KvStore& other) const {
  return data_ == other.data_;
}

}  // namespace tpm
