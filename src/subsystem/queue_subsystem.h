#ifndef TPM_SUBSYSTEM_QUEUE_SUBSYSTEM_H_
#define TPM_SUBSYSTEM_QUEUE_SUBSYSTEM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/ids.h"
#include "common/status.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/service.h"

namespace tpm {

/// Semantic FIFO-queue subsystem: named queues of integer tokens with
/// ADT-level commutativity declared through the ServiceDef op metadata.
///
/// Operation kinds and their commutativity table:
///
///   queue.enq — appends a fresh token; two enqueues commute (§3.2: the
///               tokens both end up in the queue, and the return values —
///               each its own token — are order-independent; the ADT's
///               clients are agnostic to the relative order of concurrent
///               producers).
///   queue.deq — removes the head token; conflicts with everything: a
///               concurrent enq can change which token deq returns when the
///               queue runs dry, and two deqs trivially race for the head.
///   queue.rm  — remove-by-token, the compensation of an enq (Def. 2: the
///               specific token the enq appended is withdrawn, wherever it
///               sits in the queue). By perfect-closure it commutes exactly
///               where enq does.
///   queue.req — requeue-at-front, the compensation of a deq: puts the
///               dequeued token back at the head, restoring FIFO order.
///               Conflicts like deq does.
///
/// Each process's enqueued/dequeued tokens are remembered per (process,
/// activity) so the compensating rm/req — invoked with the same activity id
/// as the forward operation — finds its token without the scheduler
/// plumbing return values into compensation parameters. A compensation
/// whose token is missing (double compensation, or compensation without a
/// forward op) fails kAborted: silently succeeding would mask exactly the
/// recovery bugs the chaos tests exist to catch.
///
/// Queue state survives a scheduler crash (subsystems are the durable
/// periphery); prepared transactions are rolled back by AbortAllPrepared
/// during recovery (presumed abort), and per-process token bookkeeping is
/// dropped when the scheduler reports the process resolved.
class QueueSubsystem : public Subsystem {
 public:
  QueueSubsystem(SubsystemId id, std::string name);

  QueueSubsystem(const QueueSubsystem&) = delete;
  QueueSubsystem& operator=(const QueueSubsystem&) = delete;

  SubsystemId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  const ServiceRegistry& services() const override { return registry_; }

  /// Creates a queue pre-seeded with `initial_tokens` fresh tokens (so
  /// consumer-heavy workloads don't dry-run the queue immediately).
  Status CreateQueue(const std::string& queue, int initial_tokens = 0);

  /// Registers enqueue / dequeue / remove-by-token (compensates enqueue) /
  /// requeue-at-front (compensates dequeue) services on `queue` (created on
  /// demand, empty).
  Status RegisterEnqueueService(ServiceId id, const std::string& queue);
  Status RegisterDequeueService(ServiceId id, const std::string& queue);
  Status RegisterRemoveService(ServiceId id, const std::string& queue);
  Status RegisterRequeueService(ServiceId id, const std::string& queue);
  /// Effect-free length query (no op binding).
  Status RegisterLenService(ServiceId id, const std::string& queue);

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override;
  Status AbortPrepared(TxId tx) override;
  bool WouldBlock(ServiceId service) const override;
  Status AbortAllPrepared() override;
  void OnProcessResolved(ProcessId process, bool committed) override;
  uint64_t StateFingerprint() const override;
  Status AdoptStateFrom(const Subsystem& peer) override;

  int64_t LengthOf(const std::string& queue) const;
  /// Queue contents front-to-back (state fingerprinting in crash tests).
  std::map<std::string, std::deque<int64_t>> Snapshot() const;

  /// The ADT invariants checked after every chaos/crash recovery: no
  /// duplicate token within or across queues, and every live token is
  /// accounted for exactly once (token consistency).
  Status CheckInvariants() const;

  int64_t invocations() const { return invocations_; }
  int64_t empty_dequeues() const { return empty_dequeues_; }

 private:
  enum class OpType { kEnq, kDeq, kRm, kReq, kLen };

  struct Queue {
    std::deque<int64_t> tokens;
  };

  struct OpBinding {
    OpType type;
    std::string queue;
  };

  struct PreparedOp {
    ServiceId service;
    std::function<void()> undo;
  };

  Status RegisterOp(ServiceDef def, OpType type, const std::string& queue);
  static bool OpsCommuteLocally(OpType a, OpType b);
  Queue& EnsureQueue(const std::string& queue);
  Status Apply(const OpBinding& op, const ServiceRequest& request,
               int64_t* ret, std::function<void()>* undo);

  SubsystemId id_;
  std::string name_;
  ServiceRegistry registry_;
  std::map<ServiceId, OpBinding> bindings_;
  std::map<std::string, Queue> queues_;
  /// Token a process's activity enqueued (for rm) or dequeued (for req),
  /// keyed by (process, activity) — the compensation reuses the forward
  /// activity's id.
  std::map<std::pair<int64_t, int64_t>, int64_t> enqueued_by_activity_;
  std::map<std::pair<int64_t, int64_t>, int64_t> dequeued_by_activity_;
  std::map<TxId, PreparedOp> prepared_;
  int64_t next_token_ = 1;
  int64_t next_tx_ = 1;
  int64_t invocations_ = 0;
  int64_t empty_dequeues_ = 0;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_QUEUE_SUBSYSTEM_H_
