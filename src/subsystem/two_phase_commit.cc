#include "subsystem/two_phase_commit.h"

#include "common/str_util.h"

namespace tpm {

Status TwoPhaseCommitCoordinator::CommitAll(
    const std::vector<CommitBranch>& branches) {
  // Voting round: all branches are prepared already; a branch whose
  // subsystem is missing is a "no" vote.
  for (const CommitBranch& branch : branches) {
    if (branch.subsystem == nullptr) {
      TPM_RETURN_IF_ERROR(AbortAll(branches));
      return Status::Aborted("2PC: branch voted no (missing subsystem)");
    }
  }
  // Decision is logged before phase two (presumed-nothing protocol): a
  // coordinator crash after this point must complete the commit.
  log_.push_back(LogEntry{LogEntry::Decision::kCommit, branches, false});
  LogEntry* entry = &log_.back();
  if (crash_before_phase_two_) {
    crash_before_phase_two_ = false;
    return Status::Unavailable("2PC coordinator crashed before phase two");
  }
  return DrivePhaseTwo(entry);
}

Status TwoPhaseCommitCoordinator::AbortAll(
    const std::vector<CommitBranch>& branches) {
  log_.push_back(LogEntry{LogEntry::Decision::kAbort, branches, false});
  return DrivePhaseTwo(&log_.back());
}

Status TwoPhaseCommitCoordinator::DrivePhaseTwo(LogEntry* entry) {
  Status first_error;
  bool in_doubt = false;
  for (const CommitBranch& branch : entry->branches) {
    if (branch.subsystem == nullptr) continue;
    Status s = entry->decision == LogEntry::Decision::kCommit
                   ? branch.subsystem->CommitPrepared(branch.tx)
                   : branch.subsystem->AbortPrepared(branch.tx);
    // Idempotent completion: an already-resolved branch (NotFound) is fine
    // when re-driving phase two after a crash.
    if (s.IsUnavailable()) {
      // The participant is unreachable (outage, lost decision message):
      // the decision is logged but not delivered — the entry stays
      // incomplete so RecoverInDoubt() re-drives it once the participant
      // is reachable again. Phase two is idempotent, so branches that did
      // receive the decision resolve to NotFound on the re-drive.
      in_doubt = true;
      if (first_error.ok()) first_error = s;
      continue;
    }
    if (!s.ok() && !s.IsNotFound() && first_error.ok()) first_error = s;
  }
  entry->completed = !in_doubt;
  return first_error;
}

Status TwoPhaseCommitCoordinator::RecoverInDoubt() {
  Status first_error;
  for (LogEntry& entry : log_) {
    if (!entry.completed) {
      Status s = DrivePhaseTwo(&entry);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

}  // namespace tpm
