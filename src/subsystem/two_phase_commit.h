#ifndef TPM_SUBSYSTEM_TWO_PHASE_COMMIT_H_
#define TPM_SUBSYSTEM_TWO_PHASE_COMMIT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// One branch of a distributed atomic commit: a prepared local transaction
/// in some subsystem.
struct CommitBranch {
  Subsystem* subsystem = nullptr;
  TxId tx;
};

/// Two-phase commit coordinator used to atomically commit the deferred
/// non-compensatable activities of a process (Lemma 1: "the commitment of
/// all non-compensatable activities of P_j has to be performed atomically
/// by exploiting a two phase commit protocol").
///
/// Branches are already in the prepared state (phase one happened at
/// invocation time via Subsystem::InvokePrepared); the coordinator performs
/// the voting round over the prepared handles and then drives phase two.
/// A coordinator log records the decision before phase two so that a
/// crashed coordinator can complete in-doubt transactions on recovery.
class TwoPhaseCommitCoordinator {
 public:
  struct LogEntry {
    enum class Decision { kCommit, kAbort };
    Decision decision;
    std::vector<CommitBranch> branches;
    bool completed = false;
  };

  /// Commits all branches atomically. Every branch must be prepared; a
  /// missing branch (e.g., already resolved) votes "no", aborting the rest.
  Status CommitAll(const std::vector<CommitBranch>& branches);

  /// Aborts all branches.
  Status AbortAll(const std::vector<CommitBranch>& branches);

  /// Completes any logged decisions whose phase two did not finish —
  /// after a simulated coordinator crash (SimulateCrashBeforePhaseTwo) or
  /// when a participant was unreachable during phase two (a branch
  /// returned kUnavailable: the entry stays incomplete and in doubt).
  /// Returns kUnavailable while some participant is still unreachable;
  /// call again later — a prepared-but-unreachable branch must eventually
  /// resolve, never wedge.
  Status RecoverInDoubt();

  /// True iff some logged decision has not fully reached its participants.
  bool HasInDoubt() const {
    for (const LogEntry& entry : log_) {
      if (!entry.completed) return true;
    }
    return false;
  }

  /// Testing hook: the next CommitAll logs its decision but "crashes"
  /// before phase two, leaving branches in doubt until RecoverInDoubt().
  void SimulateCrashBeforePhaseTwo() { crash_before_phase_two_ = true; }

  const std::vector<LogEntry>& log() const { return log_; }

 private:
  Status DrivePhaseTwo(LogEntry* entry);

  std::vector<LogEntry> log_;
  bool crash_before_phase_two_ = false;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_TWO_PHASE_COMMIT_H_
