#ifndef TPM_SUBSYSTEM_HEALTH_H_
#define TPM_SUBSYSTEM_HEALTH_H_

#include <cstdint>

namespace tpm {

/// Circuit-breaker state of a subsystem as seen by the scheduler's
/// failure-domain layer (SubsystemProxy). Plain subsystems are always
/// kClosed.
///
///   kClosed   — healthy: invocations flow through, outcomes are sampled
///               into the failure window.
///   kOpen     — tripped: the failure rate over the sliding window crossed
///               the threshold. Invocations are rejected without reaching
///               the subsystem until the cooldown elapses; the scheduler
///               parks retriable activities instead of burning Def. 3
///               retries, and degrades to ◁-alternatives that avoid the
///               sick subsystem.
///   kHalfOpen — cooldown elapsed: the next invocation is a probe. Success
///               closes the breaker, failure re-opens it for another
///               cooldown.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

inline const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

/// Monotone health-event counters a subsystem reports for stats
/// aggregation; plain subsystems report zeros.
struct SubsystemHealthCounters {
  /// Invocations that failed because the deadline budget was exhausted
  /// (reported to the scheduler with retriable semantics, Def. 3).
  int64_t deadline_failures = 0;
  /// Transitions into the open state.
  int64_t breaker_trips = 0;
  /// Half-open probe invocations attempted.
  int64_t probe_invocations = 0;
  /// Invocations rejected while the breaker was open (a scheduler that
  /// parks correctly keeps this at zero).
  int64_t rejected_while_open = 0;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_HEALTH_H_
