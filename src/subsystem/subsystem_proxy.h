#ifndef TPM_SUBSYSTEM_SUBSYSTEM_PROXY_H_
#define TPM_SUBSYSTEM_SUBSYSTEM_PROXY_H_

#include <deque>
#include <string>

#include "common/virtual_clock.h"
#include "subsystem/health.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

struct SubsystemProxyOptions {
  /// Invocation budget in virtual ticks; 0 disables the deadline. An
  /// invocation whose modeled waiting (latency, outage stall, internal
  /// backoff) exhausts the budget fails with kAborted — the cooperative
  /// deadline aborts the call *before* the local transaction executes, so
  /// the failure has clean retriable semantics (Def. 3): nothing happened
  /// in the subsystem.
  int64_t deadline_ticks = 0;
  /// Circuit breaker: sliding window of the last `window` invocation
  /// outcomes; once at least `min_samples` are present and the failure
  /// fraction reaches `failure_threshold`, the breaker opens for
  /// `cooldown_ticks`, then half-opens for a single probe.
  bool breaker_enabled = true;
  int window = 8;
  int min_samples = 4;
  double failure_threshold = 0.5;
  int64_t cooldown_ticks = 16;
};

/// Health layer wrapped around any Subsystem: an invocation deadline on the
/// shared VirtualClock and a circuit breaker (closed → open on
/// failure-rate threshold over a sliding window → half-open probe after a
/// cooldown). The scheduler reads breaker_state() to park retriable
/// activities and degrade to ◁-alternatives instead of hot-looping retries
/// against a sick subsystem.
///
/// Only first-invocation paths (Invoke, InvokePrepared) are gated. 2PC
/// phase two (CommitPrepared / AbortPrepared) always passes through: the
/// participant holds a prepared transaction whose fate is already decided,
/// and refusing the decision message would wedge the coordinator — a
/// prepared-but-sick participant must still resolve.
class SubsystemProxy : public Subsystem {
 public:
  SubsystemProxy(Subsystem* inner, VirtualClock* clock,
                 SubsystemProxyOptions options = {});

  SubsystemProxy(const SubsystemProxy&) = delete;
  SubsystemProxy& operator=(const SubsystemProxy&) = delete;

  SubsystemId id() const override { return inner_->id(); }
  const std::string& name() const override { return inner_->name(); }
  const ServiceRegistry& services() const override {
    return inner_->services();
  }

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override { return inner_->CommitPrepared(tx); }
  Status AbortPrepared(TxId tx) override { return inner_->AbortPrepared(tx); }
  bool WouldBlock(ServiceId service) const override {
    return inner_->WouldBlock(service);
  }
  Status AbortAllPrepared() override { return inner_->AbortAllPrepared(); }
  void OnProcessResolved(ProcessId process, bool committed) override {
    inner_->OnProcessResolved(process, committed);
  }

  /// Current breaker state. Reading it performs the lazy open → half-open
  /// transition once the cooldown has elapsed on the shared clock.
  BreakerState breaker_state() const override;
  SubsystemHealthCounters health_counters() const override {
    return counters_;
  }

  Subsystem* inner() { return inner_; }
  const SubsystemProxyOptions& options() const { return options_; }

 private:
  /// Pre-invocation admission: breaker rejection or probe designation.
  struct Gate {
    bool admitted = true;
    bool probe = false;
    Status rejection;
  };
  Gate BeginInvocation();
  /// Post-invocation accounting; returns the (possibly rewritten) status
  /// the caller must report — a deadline expiry becomes a kAborted with a
  /// deadline message regardless of how the inner call phrased its abort.
  Status FinishInvocation(const Gate& gate, Status inner_status);

  void RecordSample(bool failure);
  void TripOpen();

  Subsystem* inner_;
  VirtualClock* clock_;
  SubsystemProxyOptions options_;

  /// breaker_state() transitions open → half-open lazily on reads.
  mutable BreakerState state_ = BreakerState::kClosed;
  int64_t opened_at_ = 0;
  /// Sliding outcome window, true = failure.
  std::deque<bool> window_;
  SubsystemHealthCounters counters_;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_SUBSYSTEM_PROXY_H_
