#include "subsystem/kv_subsystem.h"

#include "common/fingerprint.h"
#include "common/str_util.h"

namespace tpm {

KvSubsystem::KvSubsystem(SubsystemId id, std::string name, uint64_t seed)
    : id_(id), name_(std::move(name)), rng_(seed) {}

Status KvSubsystem::RegisterService(ServiceDef def) {
  return registry_.Register(std::move(def));
}

Status KvSubsystem::MaybeInjectFailure(ServiceId service) {
  auto scripted = scripted_failures_.find(service);
  if (scripted != scripted_failures_.end() && scripted->second > 0) {
    --scripted->second;
    ++injected_aborts_;
    return Status::Aborted(
        StrCat("scripted failure of service ", service, " in ", name_));
  }
  auto prob = failure_probability_.find(service);
  if (prob != failure_probability_.end() && rng_.NextBool(prob->second)) {
    ++injected_aborts_;
    return Status::Aborted(
        StrCat("random failure of service ", service, " in ", name_));
  }
  return Status::OK();
}

Status KvSubsystem::InjectFailureWithRetry(ServiceId service) {
  Status status = MaybeInjectFailure(service);
  int attempt = 1;
  while (!status.ok() && status.IsAborted() &&
         attempt < retry_policy_.max_attempts) {
    ++internal_retries_;
    const int64_t wait = retry_policy_.BackoffTicks(
        attempt, retry_policy_.full_jitter ? &rng_ : nullptr);
    backoff_ticks_waited_ += wait;
    if (clock_ != nullptr) {
      clock_->Advance(wait);
      // The caller's invocation budget bounds the retry loop: once the
      // deadline is hit mid-backoff, stop masking and surface the abort.
      if (clock_->deadline_expired()) return status;
    }
    ++attempt;
    status = MaybeInjectFailure(service);
  }
  return status;
}

Result<InvocationOutcome> KvSubsystem::Invoke(ServiceId service,
                                              const ServiceRequest& request) {
  TPM_ASSIGN_OR_RETURN(const ServiceDef* def, registry_.Lookup(service));
  if (tx_manager_.WouldBlock(*def)) {
    return Status::Unavailable(
        StrCat("service ", def->name, " blocked by prepared transaction"));
  }
  ++invocations_;
  TPM_RETURN_IF_ERROR(InjectFailureWithRetry(service));
  return tx_manager_.InvokeImmediate(*def, request);
}

Result<PreparedHandle> KvSubsystem::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  TPM_ASSIGN_OR_RETURN(const ServiceDef* def, registry_.Lookup(service));
  if (tx_manager_.WouldBlock(*def)) {
    return Status::Unavailable(
        StrCat("service ", def->name, " blocked by prepared transaction"));
  }
  ++invocations_;
  TPM_RETURN_IF_ERROR(InjectFailureWithRetry(service));
  return tx_manager_.InvokePrepared(*def, request);
}

Status KvSubsystem::CommitPrepared(TxId tx) {
  return tx_manager_.CommitPrepared(tx);
}

Status KvSubsystem::AbortPrepared(TxId tx) {
  return tx_manager_.AbortPrepared(tx);
}

Status KvSubsystem::AbortAllPrepared() {
  tx_manager_.AbortAllPrepared();
  return Status::OK();
}

bool KvSubsystem::WouldBlock(ServiceId service) const {
  auto def = registry_.Lookup(service);
  if (!def.ok()) return false;
  return tx_manager_.WouldBlock(**def);
}

void KvSubsystem::ScheduleFailures(ServiceId service, int count) {
  scripted_failures_[service] += count;
}

void KvSubsystem::SetFailureProbability(ServiceId service, double p) {
  failure_probability_[service] = p;
}

uint64_t KvSubsystem::StateFingerprint() const {
  uint64_t h = kFnv1aOffsetBasis;
  for (const auto& [key, value] : store_.Snapshot()) {
    h = Fnv1a(h, key);
    h = Fnv1aInt(h, static_cast<uint64_t>(value));
  }
  h = Fnv1aInt(h, store_.version());
  for (const auto& [service, remaining] : scripted_failures_) {
    h = Fnv1aInt(h, static_cast<uint64_t>(service.value()));
    h = Fnv1aInt(h, static_cast<uint64_t>(remaining));
  }
  h = Fnv1aInt(h, static_cast<uint64_t>(invocations_));
  h = Fnv1aInt(h, static_cast<uint64_t>(injected_aborts_));
  h = Fnv1aInt(h, static_cast<uint64_t>(internal_retries_));
  h = Fnv1aInt(h, static_cast<uint64_t>(backoff_ticks_waited_));
  return h;
}

Status KvSubsystem::AdoptStateFrom(const Subsystem& peer) {
  const auto* other = dynamic_cast<const KvSubsystem*>(&peer);
  if (other == nullptr) {
    return Status::InvalidArgument(
        StrCat("AdoptStateFrom: ", name_, " cannot adopt from ", peer.name(),
               " (not a KvSubsystem)"));
  }
  store_ = other->store_;
  scripted_failures_ = other->scripted_failures_;
  failure_probability_ = other->failure_probability_;
  retry_policy_ = other->retry_policy_;
  rng_ = other->rng_;
  invocations_ = other->invocations_;
  injected_aborts_ = other->injected_aborts_;
  internal_retries_ = other->internal_retries_;
  backoff_ticks_waited_ = other->backoff_ticks_waited_;
  return Status::OK();
}

}  // namespace tpm
