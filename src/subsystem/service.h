#ifndef TPM_SUBSYSTEM_SERVICE_H_
#define TPM_SUBSYSTEM_SERVICE_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/conflict.h"
#include "subsystem/kv_store.h"

namespace tpm {

/// Parameters of one service invocation.
struct ServiceRequest {
  ProcessId process;
  ActivityId activity;
  /// Generic scalar parameter interpreted by the service body.
  int64_t param = 0;
};

/// A transactional service offered by a subsystem. The body reads and
/// writes only the declared key sets; the registry derives the
/// commutativity relation (Def. 6) from them: two services conflict iff one
/// writes a key the other reads or writes.
struct ServiceDef {
  ServiceId id;
  std::string name;
  std::vector<std::string> read_set;
  std::vector<std::string> write_set;
  /// Executes the service against the store. `ret` receives the service's
  /// return value (used to observe commutativity in tests). Returning a
  /// non-OK status aborts the local transaction.
  std::function<Status(KvStore* store, const ServiceRequest& request,
                       int64_t* ret)>
      body;
  /// Declared effect-free (pure query): reduction rule 3 applies.
  bool effect_free = false;
  /// Operation kind of this service for ADT-level commutativity (e.g.
  /// "escrow.inc"); empty = no op binding, the derived read/write conflicts
  /// stand unrefined.
  std::string op_kind;
  /// Op kinds this service's op commutes with (include op_kind itself for
  /// self-commuting ops like escrow increments). The registry interns these
  /// into the ConflictSpec op table, which downgrades the matching
  /// service-level conflicts.
  std::vector<std::string> commutes_with;
  /// Op kind of the compensating operation (Def. 2 pairing); the op table
  /// is closed so the inverse commutes wherever the original does.
  std::string inverse_op_kind;
};

class Rng;

/// Bounded retry of transiently failing invocations inside a subsystem.
/// With max_attempts == n, an invocation that aborts is retried up to
/// n - 1 times before the abort is reported to the scheduler; between
/// attempts the subsystem waits BackoffTicks(attempt) virtual ticks on the
/// shared VirtualClock (and charges its backoff counter). This models a
/// subsystem that masks its own transient faults, shrinking the
/// retriable-activity churn the scheduler sees (Def. 3 still bounds the
/// scheduler-visible retries).
struct RetryPolicy {
  int max_attempts = 1;
  int64_t backoff_base_ticks = 0;
  /// Linear (default): base * attempt. Exponential: base * 2^(attempt-1).
  bool exponential = false;
  /// Cap applied to the computed wait; 0 = uncapped.
  int64_t max_backoff_ticks = 0;
  /// Full jitter: the wait is drawn uniformly from [0, computed] using the
  /// caller's seeded RNG (deterministic per seed). Off by default so
  /// existing schedules stay bit-identical.
  bool full_jitter = false;

  /// The wait before retry number `attempt` (1-based: the wait between the
  /// first failure and the second attempt uses attempt == 1). `rng` is
  /// consulted only when full_jitter is set; null disables jitter.
  int64_t BackoffTicks(int attempt, Rng* rng = nullptr) const;
};

/// Registry of all services of one subsystem.
class ServiceRegistry {
 public:
  Status Register(ServiceDef def);
  bool Has(ServiceId id) const { return services_.count(id) > 0; }
  Result<const ServiceDef*> Lookup(ServiceId id) const;
  std::vector<ServiceId> AllIds() const;

  /// Adds to `spec` the conflicts among this registry's services derived
  /// from their read/write sets, marks declared effect-free services, and
  /// threads the op-kind metadata (bindings, commuting pairs, inverse
  /// pairings) into the spec's operation-level commutativity table.
  void DeriveConflicts(ConflictSpec* spec) const;

 private:
  std::map<ServiceId, ServiceDef> services_;
};

/// Convenience constructors for common service shapes.

/// Writes `param` into `key` (previous value is the return value).
ServiceDef MakePutService(ServiceId id, std::string name, std::string key);

/// Adds `param` (default 1 when param == 0) to `key`; returns the new
/// value.
ServiceDef MakeAddService(ServiceId id, std::string name, std::string key);

/// Subtracts `param` (default 1 when param == 0) from `key`; the exact
/// inverse of MakeAddService, so <add sub> is effect-free (Def. 2).
ServiceDef MakeSubService(ServiceId id, std::string name, std::string key);

/// Reads `key` (effect-free); returns its value.
ServiceDef MakeReadService(ServiceId id, std::string name, std::string key);

/// Erases `key`; returns the previous value. The natural compensation for a
/// put.
ServiceDef MakeEraseService(ServiceId id, std::string name, std::string key);

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_SERVICE_H_
