#ifndef TPM_SUBSYSTEM_KV_SUBSYSTEM_H_
#define TPM_SUBSYSTEM_KV_SUBSYSTEM_H_

#include <map>
#include <memory>
#include <string>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "subsystem/health.h"
#include "subsystem/kv_store.h"
#include "subsystem/local_tx.h"
#include "subsystem/service.h"

namespace tpm {

/// A transactional subsystem as assumed by the paper (§2.3): it executes
/// service invocations as atomic local transactions, offers compensation
/// services, and supports the prepared state of a two-phase commit protocol
/// (needed for the deferred commit of non-compensatable activities,
/// Lemma 1).
class Subsystem {
 public:
  virtual ~Subsystem() = default;

  virtual SubsystemId id() const = 0;
  virtual const std::string& name() const = 0;
  virtual const ServiceRegistry& services() const = 0;

  /// Atomic invocation with immediate local commit. kAborted = the local
  /// transaction aborted (injected failure or body error); kUnavailable =
  /// blocked by a prepared transaction's locks — retry later.
  virtual Result<InvocationOutcome> Invoke(ServiceId service,
                                           const ServiceRequest& request) = 0;

  /// Atomic invocation left in the prepared state (2PC phase one).
  virtual Result<PreparedHandle> InvokePrepared(
      ServiceId service, const ServiceRequest& request) = 0;

  /// 2PC phase two.
  virtual Status CommitPrepared(TxId tx) = 0;
  virtual Status AbortPrepared(TxId tx) = 0;

  /// True iff invoking `service` now would block on prepared locks.
  virtual bool WouldBlock(ServiceId service) const = 0;

  /// Presumed abort: discards every prepared transaction. Called by the
  /// scheduler during crash recovery — prepared branches whose commit
  /// decision was never logged are rolled back.
  virtual Status AbortAllPrepared() = 0;

  /// Process-resolution hook: the scheduler reports every process reaching
  /// a terminal state (committed or aborted). Semantic subsystems use it to
  /// release per-process bookkeeping — e.g. the escrow method turns a
  /// process's unstable deposit credit into stable balance once the process
  /// can no longer compensate. Default: no-op (the KV subsystem keeps no
  /// per-process state).
  virtual void OnProcessResolved(ProcessId /*process*/, bool /*committed*/) {}

  /// Circuit-breaker state as seen by the scheduler's failure-domain layer.
  /// Plain subsystems are always healthy; SubsystemProxy overrides this
  /// with its breaker's state so the scheduler can park retriable
  /// activities and degrade to ◁-alternatives.
  virtual BreakerState breaker_state() const { return BreakerState::kClosed; }

  /// Monotone health-event counters (deadline failures, breaker trips) for
  /// stats aggregation; plain subsystems report zeros.
  virtual SubsystemHealthCounters health_counters() const { return {}; }

  /// Deterministic digest of all behavior-relevant subsystem state — the
  /// store component of a replica's vote digest. Replicas fed the identical
  /// submission stream must report identical fingerprints; silent state
  /// corruption in one replica shows up here before it can influence any
  /// externally visible result. Default 0: an opaque subsystem contributes
  /// nothing (votes then rest on history + stats alone).
  virtual uint64_t StateFingerprint() const { return 0; }

  /// Copies every piece of behavior-relevant state from `peer`, which must
  /// be the same concrete type (checked via dynamic_cast). Used by replica
  /// respawn: a dead replica's periphery is re-seeded from a healthy peer
  /// while the group is quiescent, then the peer's WAL is copied for
  /// scheduler-side continuity. Default: FailedPrecondition — a subsystem
  /// without an override cannot host respawn.
  virtual Status AdoptStateFrom(const Subsystem& peer) {
    (void)peer;
    return Status::FailedPrecondition("AdoptStateFrom not supported by " +
                                      name());
  }
};

/// Subsystem simulated over an in-memory KvStore, with failure injection
/// for modeling retriable behaviour (Def. 3: abort k times, then commit)
/// and pivot failures (Def. 4).
class KvSubsystem : public Subsystem {
 public:
  KvSubsystem(SubsystemId id, std::string name, uint64_t seed = 42);

  KvSubsystem(const KvSubsystem&) = delete;
  KvSubsystem& operator=(const KvSubsystem&) = delete;

  SubsystemId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  const ServiceRegistry& services() const override { return registry_; }

  Status RegisterService(ServiceDef def);

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override;
  Status AbortPrepared(TxId tx) override;
  bool WouldBlock(ServiceId service) const override;
  Status AbortAllPrepared() override;
  uint64_t StateFingerprint() const override;
  Status AdoptStateFrom(const Subsystem& peer) override;

  /// The next `count` invocations of `service` abort (deterministic
  /// failure script; models Def. 3 for retriables and Def. 4 for pivots).
  void ScheduleFailures(ServiceId service, int count);

  /// Each invocation of `service` aborts with probability `p` (drawn from
  /// the subsystem's seeded RNG).
  void SetFailureProbability(ServiceId service, double p);

  /// Internal masking of transient failures: failed invocations are
  /// retried inside the subsystem per `policy` before an abort surfaces to
  /// the scheduler. Each internal retry consumes one scheduled/random
  /// failure, so a script of k failures with max_attempts > k commits on
  /// the first scheduler-visible invocation.
  void SetRetryPolicy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Attaches the shared simulation clock: internal retry backoff then
  /// advances it (clamped by an active invocation deadline — a retry loop
  /// cannot wait past the caller's budget) instead of only charging the
  /// private backoff_ticks_waited counter. Null detaches.
  void SetClock(VirtualClock* clock) { clock_ = clock; }

  KvStore& store() { return store_; }
  const KvStore& store() const { return store_; }

  /// Invocation counters for experiments.
  int64_t invocations() const { return invocations_; }
  int64_t injected_aborts() const { return injected_aborts_; }
  /// Aborted attempts absorbed by the retry policy (never surfaced).
  int64_t internal_retries() const { return internal_retries_; }
  /// Total virtual backoff ticks the retry policy charged.
  int64_t backoff_ticks_waited() const { return backoff_ticks_waited_; }

 private:
  Status MaybeInjectFailure(ServiceId service);
  /// Runs MaybeInjectFailure under the retry policy: retries transient
  /// aborts internally (charging backoff) until an attempt passes or the
  /// attempt budget is exhausted.
  Status InjectFailureWithRetry(ServiceId service);

  SubsystemId id_;
  std::string name_;
  ServiceRegistry registry_;
  KvStore store_;
  LocalTxManager tx_manager_{&store_};
  std::map<ServiceId, int> scripted_failures_;
  std::map<ServiceId, double> failure_probability_;
  RetryPolicy retry_policy_;
  VirtualClock* clock_ = nullptr;
  Rng rng_;
  int64_t invocations_ = 0;
  int64_t injected_aborts_ = 0;
  int64_t internal_retries_ = 0;
  int64_t backoff_ticks_waited_ = 0;
};

}  // namespace tpm

#endif  // TPM_SUBSYSTEM_KV_SUBSYSTEM_H_
