file(REMOVE_RECURSE
  "CMakeFiles/tpm_log.dir/log/recovery_log.cc.o"
  "CMakeFiles/tpm_log.dir/log/recovery_log.cc.o.d"
  "CMakeFiles/tpm_log.dir/log/wal.cc.o"
  "CMakeFiles/tpm_log.dir/log/wal.cc.o.d"
  "libtpm_log.a"
  "libtpm_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
