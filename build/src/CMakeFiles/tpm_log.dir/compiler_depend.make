# Empty compiler generated dependencies file for tpm_log.
# This may be replaced when dependencies are built.
