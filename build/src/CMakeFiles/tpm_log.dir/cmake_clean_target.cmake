file(REMOVE_RECURSE
  "libtpm_log.a"
)
