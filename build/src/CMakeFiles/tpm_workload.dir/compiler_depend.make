# Empty compiler generated dependencies file for tpm_workload.
# This may be replaced when dependencies are built.
