file(REMOVE_RECURSE
  "libtpm_workload.a"
)
