file(REMOVE_RECURSE
  "CMakeFiles/tpm_workload.dir/workload/cim_workload.cc.o"
  "CMakeFiles/tpm_workload.dir/workload/cim_workload.cc.o.d"
  "CMakeFiles/tpm_workload.dir/workload/dsl_binding.cc.o"
  "CMakeFiles/tpm_workload.dir/workload/dsl_binding.cc.o.d"
  "CMakeFiles/tpm_workload.dir/workload/process_generator.cc.o"
  "CMakeFiles/tpm_workload.dir/workload/process_generator.cc.o.d"
  "CMakeFiles/tpm_workload.dir/workload/schedule_generator.cc.o"
  "CMakeFiles/tpm_workload.dir/workload/schedule_generator.cc.o.d"
  "libtpm_workload.a"
  "libtpm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
