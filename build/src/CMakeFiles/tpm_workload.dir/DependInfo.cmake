
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cim_workload.cc" "src/CMakeFiles/tpm_workload.dir/workload/cim_workload.cc.o" "gcc" "src/CMakeFiles/tpm_workload.dir/workload/cim_workload.cc.o.d"
  "/root/repo/src/workload/dsl_binding.cc" "src/CMakeFiles/tpm_workload.dir/workload/dsl_binding.cc.o" "gcc" "src/CMakeFiles/tpm_workload.dir/workload/dsl_binding.cc.o.d"
  "/root/repo/src/workload/process_generator.cc" "src/CMakeFiles/tpm_workload.dir/workload/process_generator.cc.o" "gcc" "src/CMakeFiles/tpm_workload.dir/workload/process_generator.cc.o.d"
  "/root/repo/src/workload/schedule_generator.cc" "src/CMakeFiles/tpm_workload.dir/workload/schedule_generator.cc.o" "gcc" "src/CMakeFiles/tpm_workload.dir/workload/schedule_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
