file(REMOVE_RECURSE
  "CMakeFiles/tpm_common.dir/common/dag.cc.o"
  "CMakeFiles/tpm_common.dir/common/dag.cc.o.d"
  "CMakeFiles/tpm_common.dir/common/rng.cc.o"
  "CMakeFiles/tpm_common.dir/common/rng.cc.o.d"
  "CMakeFiles/tpm_common.dir/common/status.cc.o"
  "CMakeFiles/tpm_common.dir/common/status.cc.o.d"
  "CMakeFiles/tpm_common.dir/common/str_util.cc.o"
  "CMakeFiles/tpm_common.dir/common/str_util.cc.o.d"
  "libtpm_common.a"
  "libtpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
