# Empty dependencies file for tpm_common.
# This may be replaced when dependencies are built.
