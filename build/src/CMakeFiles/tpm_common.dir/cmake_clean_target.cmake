file(REMOVE_RECURSE
  "libtpm_common.a"
)
