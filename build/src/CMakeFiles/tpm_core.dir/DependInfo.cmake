
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activity.cc" "src/CMakeFiles/tpm_core.dir/core/activity.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/activity.cc.o.d"
  "/root/repo/src/core/baseline_schedulers.cc" "src/CMakeFiles/tpm_core.dir/core/baseline_schedulers.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/baseline_schedulers.cc.o.d"
  "/root/repo/src/core/completed_schedule.cc" "src/CMakeFiles/tpm_core.dir/core/completed_schedule.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/completed_schedule.cc.o.d"
  "/root/repo/src/core/completion.cc" "src/CMakeFiles/tpm_core.dir/core/completion.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/completion.cc.o.d"
  "/root/repo/src/core/conflict.cc" "src/CMakeFiles/tpm_core.dir/core/conflict.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/conflict.cc.o.d"
  "/root/repo/src/core/dot_export.cc" "src/CMakeFiles/tpm_core.dir/core/dot_export.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/dot_export.cc.o.d"
  "/root/repo/src/core/execution_state.cc" "src/CMakeFiles/tpm_core.dir/core/execution_state.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/execution_state.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/CMakeFiles/tpm_core.dir/core/expansion.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/expansion.cc.o.d"
  "/root/repo/src/core/figures.cc" "src/CMakeFiles/tpm_core.dir/core/figures.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/figures.cc.o.d"
  "/root/repo/src/core/flex_structure.cc" "src/CMakeFiles/tpm_core.dir/core/flex_structure.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/flex_structure.cc.o.d"
  "/root/repo/src/core/lint.cc" "src/CMakeFiles/tpm_core.dir/core/lint.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/lint.cc.o.d"
  "/root/repo/src/core/pred.cc" "src/CMakeFiles/tpm_core.dir/core/pred.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/pred.cc.o.d"
  "/root/repo/src/core/process.cc" "src/CMakeFiles/tpm_core.dir/core/process.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/process.cc.o.d"
  "/root/repo/src/core/process_dsl.cc" "src/CMakeFiles/tpm_core.dir/core/process_dsl.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/process_dsl.cc.o.d"
  "/root/repo/src/core/recoverability.cc" "src/CMakeFiles/tpm_core.dir/core/recoverability.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/recoverability.cc.o.d"
  "/root/repo/src/core/reduction.cc" "src/CMakeFiles/tpm_core.dir/core/reduction.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/reduction.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/CMakeFiles/tpm_core.dir/core/schedule.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/schedule.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/tpm_core.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/serializability.cc" "src/CMakeFiles/tpm_core.dir/core/serializability.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/serializability.cc.o.d"
  "/root/repo/src/core/sot.cc" "src/CMakeFiles/tpm_core.dir/core/sot.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/sot.cc.o.d"
  "/root/repo/src/core/subprocess.cc" "src/CMakeFiles/tpm_core.dir/core/subprocess.cc.o" "gcc" "src/CMakeFiles/tpm_core.dir/core/subprocess.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
