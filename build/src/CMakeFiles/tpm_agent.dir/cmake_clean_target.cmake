file(REMOVE_RECURSE
  "libtpm_agent.a"
)
