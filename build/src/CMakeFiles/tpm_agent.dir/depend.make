# Empty dependencies file for tpm_agent.
# This may be replaced when dependencies are built.
