file(REMOVE_RECURSE
  "CMakeFiles/tpm_agent.dir/agent/coordination_agent.cc.o"
  "CMakeFiles/tpm_agent.dir/agent/coordination_agent.cc.o.d"
  "libtpm_agent.a"
  "libtpm_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
