file(REMOVE_RECURSE
  "CMakeFiles/tpm_subsystem.dir/subsystem/commit_order.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/commit_order.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/kv_store.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/kv_store.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/kv_subsystem.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/kv_subsystem.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/local_tx.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/local_tx.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/service.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/service.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/two_phase_commit.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/two_phase_commit.cc.o.d"
  "CMakeFiles/tpm_subsystem.dir/subsystem/weak_order.cc.o"
  "CMakeFiles/tpm_subsystem.dir/subsystem/weak_order.cc.o.d"
  "libtpm_subsystem.a"
  "libtpm_subsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_subsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
