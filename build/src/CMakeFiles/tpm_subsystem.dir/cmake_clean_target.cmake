file(REMOVE_RECURSE
  "libtpm_subsystem.a"
)
