# Empty compiler generated dependencies file for tpm_subsystem.
# This may be replaced when dependencies are built.
