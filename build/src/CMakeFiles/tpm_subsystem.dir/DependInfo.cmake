
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subsystem/commit_order.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/commit_order.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/commit_order.cc.o.d"
  "/root/repo/src/subsystem/kv_store.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/kv_store.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/kv_store.cc.o.d"
  "/root/repo/src/subsystem/kv_subsystem.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/kv_subsystem.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/kv_subsystem.cc.o.d"
  "/root/repo/src/subsystem/local_tx.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/local_tx.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/local_tx.cc.o.d"
  "/root/repo/src/subsystem/service.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/service.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/service.cc.o.d"
  "/root/repo/src/subsystem/two_phase_commit.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/two_phase_commit.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/two_phase_commit.cc.o.d"
  "/root/repo/src/subsystem/weak_order.cc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/weak_order.cc.o" "gcc" "src/CMakeFiles/tpm_subsystem.dir/subsystem/weak_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
