file(REMOVE_RECURSE
  "CMakeFiles/cim_scenario.dir/cim_scenario.cpp.o"
  "CMakeFiles/cim_scenario.dir/cim_scenario.cpp.o.d"
  "cim_scenario"
  "cim_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
