# Empty compiler generated dependencies file for cim_scenario.
# This may be replaced when dependencies are built.
