file(REMOVE_RECURSE
  "CMakeFiles/run_world.dir/run_world.cpp.o"
  "CMakeFiles/run_world.dir/run_world.cpp.o.d"
  "run_world"
  "run_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
