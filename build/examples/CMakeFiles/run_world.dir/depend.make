# Empty dependencies file for run_world.
# This may be replaced when dependencies are built.
