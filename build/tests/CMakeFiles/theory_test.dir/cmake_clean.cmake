file(REMOVE_RECURSE
  "CMakeFiles/theory_test.dir/core/completed_schedule_test.cc.o"
  "CMakeFiles/theory_test.dir/core/completed_schedule_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/dot_export_test.cc.o"
  "CMakeFiles/theory_test.dir/core/dot_export_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/dsl_binding_test.cc.o"
  "CMakeFiles/theory_test.dir/core/dsl_binding_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/dsl_corpus_test.cc.o"
  "CMakeFiles/theory_test.dir/core/dsl_corpus_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/expansion_test.cc.o"
  "CMakeFiles/theory_test.dir/core/expansion_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/figures_test.cc.o"
  "CMakeFiles/theory_test.dir/core/figures_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/lint_test.cc.o"
  "CMakeFiles/theory_test.dir/core/lint_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/pred_test.cc.o"
  "CMakeFiles/theory_test.dir/core/pred_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/process_dsl_test.cc.o"
  "CMakeFiles/theory_test.dir/core/process_dsl_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/recoverability_test.cc.o"
  "CMakeFiles/theory_test.dir/core/recoverability_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/reduction_test.cc.o"
  "CMakeFiles/theory_test.dir/core/reduction_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/schedule_test.cc.o"
  "CMakeFiles/theory_test.dir/core/schedule_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/serializability_test.cc.o"
  "CMakeFiles/theory_test.dir/core/serializability_test.cc.o.d"
  "CMakeFiles/theory_test.dir/core/sot_test.cc.o"
  "CMakeFiles/theory_test.dir/core/sot_test.cc.o.d"
  "theory_test"
  "theory_test.pdb"
  "theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
