
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/completed_schedule_test.cc" "tests/CMakeFiles/theory_test.dir/core/completed_schedule_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/completed_schedule_test.cc.o.d"
  "/root/repo/tests/core/dot_export_test.cc" "tests/CMakeFiles/theory_test.dir/core/dot_export_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/dot_export_test.cc.o.d"
  "/root/repo/tests/core/dsl_binding_test.cc" "tests/CMakeFiles/theory_test.dir/core/dsl_binding_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/dsl_binding_test.cc.o.d"
  "/root/repo/tests/core/dsl_corpus_test.cc" "tests/CMakeFiles/theory_test.dir/core/dsl_corpus_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/dsl_corpus_test.cc.o.d"
  "/root/repo/tests/core/expansion_test.cc" "tests/CMakeFiles/theory_test.dir/core/expansion_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/expansion_test.cc.o.d"
  "/root/repo/tests/core/figures_test.cc" "tests/CMakeFiles/theory_test.dir/core/figures_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/figures_test.cc.o.d"
  "/root/repo/tests/core/lint_test.cc" "tests/CMakeFiles/theory_test.dir/core/lint_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/lint_test.cc.o.d"
  "/root/repo/tests/core/pred_test.cc" "tests/CMakeFiles/theory_test.dir/core/pred_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/pred_test.cc.o.d"
  "/root/repo/tests/core/process_dsl_test.cc" "tests/CMakeFiles/theory_test.dir/core/process_dsl_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/process_dsl_test.cc.o.d"
  "/root/repo/tests/core/recoverability_test.cc" "tests/CMakeFiles/theory_test.dir/core/recoverability_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/recoverability_test.cc.o.d"
  "/root/repo/tests/core/reduction_test.cc" "tests/CMakeFiles/theory_test.dir/core/reduction_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/reduction_test.cc.o.d"
  "/root/repo/tests/core/schedule_test.cc" "tests/CMakeFiles/theory_test.dir/core/schedule_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/schedule_test.cc.o.d"
  "/root/repo/tests/core/serializability_test.cc" "tests/CMakeFiles/theory_test.dir/core/serializability_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/serializability_test.cc.o.d"
  "/root/repo/tests/core/sot_test.cc" "tests/CMakeFiles/theory_test.dir/core/sot_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/core/sot_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
