
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/activity_test.cc" "tests/CMakeFiles/model_test.dir/core/activity_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/activity_test.cc.o.d"
  "/root/repo/tests/core/completion_test.cc" "tests/CMakeFiles/model_test.dir/core/completion_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/completion_test.cc.o.d"
  "/root/repo/tests/core/execution_state_test.cc" "tests/CMakeFiles/model_test.dir/core/execution_state_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/execution_state_test.cc.o.d"
  "/root/repo/tests/core/flex_structure_test.cc" "tests/CMakeFiles/model_test.dir/core/flex_structure_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/flex_structure_test.cc.o.d"
  "/root/repo/tests/core/footnote2_test.cc" "tests/CMakeFiles/model_test.dir/core/footnote2_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/footnote2_test.cc.o.d"
  "/root/repo/tests/core/process_test.cc" "tests/CMakeFiles/model_test.dir/core/process_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/process_test.cc.o.d"
  "/root/repo/tests/core/subprocess_test.cc" "tests/CMakeFiles/model_test.dir/core/subprocess_test.cc.o" "gcc" "tests/CMakeFiles/model_test.dir/core/subprocess_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
