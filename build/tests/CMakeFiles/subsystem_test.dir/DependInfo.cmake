
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agent/coordination_agent_test.cc" "tests/CMakeFiles/subsystem_test.dir/agent/coordination_agent_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/agent/coordination_agent_test.cc.o.d"
  "/root/repo/tests/log/recovery_log_test.cc" "tests/CMakeFiles/subsystem_test.dir/log/recovery_log_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/log/recovery_log_test.cc.o.d"
  "/root/repo/tests/log/wal_test.cc" "tests/CMakeFiles/subsystem_test.dir/log/wal_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/log/wal_test.cc.o.d"
  "/root/repo/tests/subsystem/commit_order_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/commit_order_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/commit_order_test.cc.o.d"
  "/root/repo/tests/subsystem/kv_store_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/kv_store_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/kv_store_test.cc.o.d"
  "/root/repo/tests/subsystem/kv_subsystem_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/kv_subsystem_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/kv_subsystem_test.cc.o.d"
  "/root/repo/tests/subsystem/local_tx_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/local_tx_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/local_tx_test.cc.o.d"
  "/root/repo/tests/subsystem/service_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/service_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/service_test.cc.o.d"
  "/root/repo/tests/subsystem/two_phase_commit_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/two_phase_commit_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/two_phase_commit_test.cc.o.d"
  "/root/repo/tests/subsystem/weak_order_test.cc" "tests/CMakeFiles/subsystem_test.dir/subsystem/weak_order_test.cc.o" "gcc" "tests/CMakeFiles/subsystem_test.dir/subsystem/weak_order_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
