file(REMOVE_RECURSE
  "CMakeFiles/subsystem_test.dir/agent/coordination_agent_test.cc.o"
  "CMakeFiles/subsystem_test.dir/agent/coordination_agent_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/log/recovery_log_test.cc.o"
  "CMakeFiles/subsystem_test.dir/log/recovery_log_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/log/wal_test.cc.o"
  "CMakeFiles/subsystem_test.dir/log/wal_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/commit_order_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/commit_order_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/kv_store_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/kv_store_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/kv_subsystem_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/kv_subsystem_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/local_tx_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/local_tx_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/service_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/service_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/two_phase_commit_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/two_phase_commit_test.cc.o.d"
  "CMakeFiles/subsystem_test.dir/subsystem/weak_order_test.cc.o"
  "CMakeFiles/subsystem_test.dir/subsystem/weak_order_test.cc.o.d"
  "subsystem_test"
  "subsystem_test.pdb"
  "subsystem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsystem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
