
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_schedulers_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/baseline_schedulers_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/baseline_schedulers_test.cc.o.d"
  "/root/repo/tests/core/scheduler_ablation_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_ablation_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_ablation_test.cc.o.d"
  "/root/repo/tests/core/scheduler_dependency_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_dependency_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_dependency_test.cc.o.d"
  "/root/repo/tests/core/scheduler_edge_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_edge_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_edge_test.cc.o.d"
  "/root/repo/tests/core/scheduler_observer_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_observer_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_observer_test.cc.o.d"
  "/root/repo/tests/core/scheduler_recovery_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_recovery_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_recovery_test.cc.o.d"
  "/root/repo/tests/core/scheduler_test.cc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/core/scheduler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
