file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_quasicommit.dir/bench_fig9_quasicommit.cc.o"
  "CMakeFiles/bench_fig9_quasicommit.dir/bench_fig9_quasicommit.cc.o.d"
  "bench_fig9_quasicommit"
  "bench_fig9_quasicommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_quasicommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
