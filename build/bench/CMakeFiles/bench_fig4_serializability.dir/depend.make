# Empty dependencies file for bench_fig4_serializability.
# This may be replaced when dependencies are built.
