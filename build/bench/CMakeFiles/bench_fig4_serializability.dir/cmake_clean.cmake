file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_serializability.dir/bench_fig4_serializability.cc.o"
  "CMakeFiles/bench_fig4_serializability.dir/bench_fig4_serializability.cc.o.d"
  "bench_fig4_serializability"
  "bench_fig4_serializability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_serializability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
