# Empty dependencies file for bench_fig2_executions.
# This may be replaced when dependencies are built.
