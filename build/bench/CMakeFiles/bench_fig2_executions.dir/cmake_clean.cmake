file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_executions.dir/bench_fig2_executions.cc.o"
  "CMakeFiles/bench_fig2_executions.dir/bench_fig2_executions.cc.o.d"
  "bench_fig2_executions"
  "bench_fig2_executions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
