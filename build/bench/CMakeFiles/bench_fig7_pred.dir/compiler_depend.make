# Empty compiler generated dependencies file for bench_fig7_pred.
# This may be replaced when dependencies are built.
