file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pred.dir/bench_fig7_pred.cc.o"
  "CMakeFiles/bench_fig7_pred.dir/bench_fig7_pred.cc.o.d"
  "bench_fig7_pred"
  "bench_fig7_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
