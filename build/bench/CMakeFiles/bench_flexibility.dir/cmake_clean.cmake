file(REMOVE_RECURSE
  "CMakeFiles/bench_flexibility.dir/bench_flexibility.cc.o"
  "CMakeFiles/bench_flexibility.dir/bench_flexibility.cc.o.d"
  "bench_flexibility"
  "bench_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
