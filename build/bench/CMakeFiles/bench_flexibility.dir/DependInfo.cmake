
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_flexibility.cc" "bench/CMakeFiles/bench_flexibility.dir/bench_flexibility.cc.o" "gcc" "bench/CMakeFiles/bench_flexibility.dir/bench_flexibility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_subsystem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
