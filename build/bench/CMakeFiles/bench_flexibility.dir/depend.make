# Empty dependencies file for bench_flexibility.
# This may be replaced when dependencies are built.
