# Empty dependencies file for bench_theorem1_sweep.
# This may be replaced when dependencies are built.
