file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_sweep.dir/bench_theorem1_sweep.cc.o"
  "CMakeFiles/bench_theorem1_sweep.dir/bench_theorem1_sweep.cc.o.d"
  "bench_theorem1_sweep"
  "bench_theorem1_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
