file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cim.dir/bench_fig1_cim.cc.o"
  "CMakeFiles/bench_fig1_cim.dir/bench_fig1_cim.cc.o.d"
  "bench_fig1_cim"
  "bench_fig1_cim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
