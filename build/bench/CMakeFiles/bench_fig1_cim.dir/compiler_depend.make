# Empty compiler generated dependencies file for bench_fig1_cim.
# This may be replaced when dependencies are built.
