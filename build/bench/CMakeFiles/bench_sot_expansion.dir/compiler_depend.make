# Empty compiler generated dependencies file for bench_sot_expansion.
# This may be replaced when dependencies are built.
