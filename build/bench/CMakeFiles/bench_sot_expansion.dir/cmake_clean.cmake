file(REMOVE_RECURSE
  "CMakeFiles/bench_sot_expansion.dir/bench_sot_expansion.cc.o"
  "CMakeFiles/bench_sot_expansion.dir/bench_sot_expansion.cc.o.d"
  "bench_sot_expansion"
  "bench_sot_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sot_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
