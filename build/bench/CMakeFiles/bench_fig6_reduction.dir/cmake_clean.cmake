file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_reduction.dir/bench_fig6_reduction.cc.o"
  "CMakeFiles/bench_fig6_reduction.dir/bench_fig6_reduction.cc.o.d"
  "bench_fig6_reduction"
  "bench_fig6_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
