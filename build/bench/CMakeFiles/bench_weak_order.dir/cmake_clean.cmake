file(REMOVE_RECURSE
  "CMakeFiles/bench_weak_order.dir/bench_weak_order.cc.o"
  "CMakeFiles/bench_weak_order.dir/bench_weak_order.cc.o.d"
  "bench_weak_order"
  "bench_weak_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weak_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
