# Empty compiler generated dependencies file for bench_weak_order.
# This may be replaced when dependencies are built.
