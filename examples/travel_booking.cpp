// Travel booking — the classic flexible-transaction scenario (and the
// e-commerce setting of the WISE project the paper's conclusion mentions):
// book flight and hotel (compensatable), pay (pivot), then issue tickets
// and confirmations (retriable); with a cheaper alternative itinerary if
// the preferred one falls through, and a legacy fax gateway wrapped by a
// transactional coordination agent (§2.3).
//
//   ./build/examples/travel_booking

#include <iostream>

#include "agent/coordination_agent.h"
#include "core/flex_structure.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

using namespace tpm;

int main() {
  std::cout << "== travel booking over flex processes ==\n\n";

  // Subsystems: airline, hotel chain, payment provider...
  KvSubsystem airline(SubsystemId(1), "airline");
  KvSubsystem hotel(SubsystemId(2), "hotel");
  KvSubsystem payments(SubsystemId(3), "payments");
  (void)airline.RegisterService(
      MakeAddService(ServiceId(11), "book_direct_flight", "direct_seats"));
  (void)airline.RegisterService(
      MakeSubService(ServiceId(12), "cancel_direct_flight", "direct_seats"));
  (void)airline.RegisterService(
      MakeAddService(ServiceId(13), "book_connecting", "connecting_seats"));
  (void)airline.RegisterService(
      MakeSubService(ServiceId(14), "cancel_connecting", "connecting_seats"));
  (void)hotel.RegisterService(
      MakeAddService(ServiceId(21), "book_room", "rooms"));
  (void)hotel.RegisterService(
      MakeSubService(ServiceId(22), "cancel_room", "rooms"));
  (void)payments.RegisterService(
      MakeAddService(ServiceId(31), "charge", "charges"));
  (void)payments.RegisterService(
      MakeAddService(ServiceId(32), "authorize", "authorizations"));

  // ... and a legacy fax-based tour operator that is NOT transactional:
  // the coordination agent wraps it (§2.3), adding atomicity and 2PC.
  NonTransactionalApp fax_machine;
  CoordinationAgent tour_operator(SubsystemId(4), "tour-operator",
                                  &fax_machine);
  {
    CoordinationAgent::AgentService confirm;
    confirm.id = ServiceId(41);
    confirm.name = "fax_confirmation";
    confirm.resource = "fax-line";
    confirm.make_op = [](const ServiceRequest& r) {
      return "CONFIRM booking for customer " + std::to_string(r.param);
    };
    (void)tour_operator.RegisterAgentService(confirm);
  }

  // The trip process:
  //   book_room^c << {book_direct^c << charge_premium... } with the
  //   connecting itinerary as alternative, then pay (pivot) and fax the
  //   confirmation (retriable).
  ProcessDef trip("trip");
  ActivityId room = trip.AddActivity("book_room", ActivityKind::kCompensatable,
                                     ServiceId(21), ServiceId(22));
  ActivityId gate = trip.AddActivity("authorize_payment",
                                     ActivityKind::kPivot, ServiceId(32));
  ActivityId direct = trip.AddActivity(
      "book_direct", ActivityKind::kCompensatable, ServiceId(11),
      ServiceId(12));
  ActivityId pay_direct =
      trip.AddActivity("pay_direct", ActivityKind::kPivot, ServiceId(31));
  ActivityId fax_direct = trip.AddActivity(
      "fax_confirmation", ActivityKind::kRetriable, ServiceId(41));
  ActivityId connecting = trip.AddActivity(
      "book_connecting", ActivityKind::kRetriable, ServiceId(13));
  ActivityId fax_fallback = trip.AddActivity(
      "fax_fallback", ActivityKind::kRetriable, ServiceId(41));
  (void)trip.AddEdge(room, gate);
  (void)trip.AddEdge(gate, direct, /*preference=*/0);
  (void)trip.AddEdge(direct, pay_direct);
  (void)trip.AddEdge(pay_direct, fax_direct);
  (void)trip.AddEdge(gate, connecting, /*preference=*/1);
  (void)trip.AddEdge(connecting, fax_fallback);
  if (!trip.Validate().ok() || !ValidateWellFormedFlex(trip).ok()) {
    std::cerr << "trip process malformed\n";
    return 1;
  }

  std::cout << "valid executions of the trip process:\n";
  auto executions = EnumerateValidExecutions(trip);
  if (executions.ok()) {
    for (const auto& exec : *executions) {
      std::cout << "  " << exec.ToString() << "\n";
    }
  }
  std::cout << "\n";

  TransactionalProcessScheduler scheduler;
  (void)scheduler.RegisterSubsystem(&airline);
  (void)scheduler.RegisterSubsystem(&hotel);
  (void)scheduler.RegisterSubsystem(&payments);
  (void)scheduler.RegisterSubsystem(&tour_operator);

  // Trip 1: everything works — the direct itinerary is taken.
  auto t1 = scheduler.Submit(&trip, /*param=*/1001);
  (void)scheduler.Run();
  std::cout << "trip 1: direct seats=" << airline.store().Get("direct_seats")
            << " connecting=" << airline.store().Get("connecting_seats")
            << " rooms=" << hotel.store().Get("rooms")
            << " faxes=" << fax_machine.size() << "\n";

  // Trip 2: paying for the direct itinerary fails -> the direct booking is
  // compensated and the connecting itinerary (all retriable) is taken.
  payments.ScheduleFailures(ServiceId(31), 1);  // fails pay_direct
  auto t2 = scheduler.Submit(&trip, /*param=*/1002);
  (void)scheduler.Run();
  std::cout << "trip 2 (payment for direct fails):\n"
            << "  direct seats=" << airline.store().Get("direct_seats")
            << " (compensated back)\n"
            << "  connecting seats="
            << airline.store().Get("connecting_seats")
            << " (alternative taken)\n"
            << "  rooms=" << hotel.store().Get("rooms")
            << ", faxes sent=" << fax_machine.size() << "\n";
  for (const auto& line : fax_machine.journal()) {
    std::cout << "    fax: " << line << "\n";
  }

  std::cout << "\nscheduler stats: alternatives="
            << scheduler.stats().alternatives_taken
            << " compensations=" << scheduler.stats().compensations
            << " failed invocations=" << scheduler.stats().failed_invocations
            << "\n";
  (void)t1;
  (void)t2;
  return 0;
}
