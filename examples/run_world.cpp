// Executes a DSL world (see core/process_dsl.h) under the transactional
// process scheduler: write processes and conflicts in a .tpm file and run
// them for real against a simulated subsystem, with optional failure
// injection.
//
//   ./build/examples/run_world [world.tpm] [--protocol pred|2pl|serial|unsafe]
//                              [--fail Proc.activity[:count]] ...
//
// Without a file it runs the built-in CIM-flavoured demo with the test
// activity failing once.

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/process_dsl.h"
#include "core/scheduler.h"
#include "workload/dsl_binding.h"

using namespace tpm;

namespace {

constexpr char kDemo[] = R"(
# Two concurrent orders over a shared inventory service (service 1), each
# with a fallback supplier (the alternative branch).
process OrderA
  activity reserve c service=1 comp=101
  activity approve p service=2
  activity pay     c service=3 comp=103
  activity confirm p service=4
  activity ship    r service=5
  activity backorder r service=6
  edge reserve approve
  edge approve pay
  edge approve backorder alt=1
  edge pay confirm
  edge confirm ship
end
process OrderB
  activity reserve c service=1 comp=101
  activity approve p service=7
  activity pay     c service=8 comp=108
  activity confirm p service=9
  activity ship    r service=10
  activity backorder r service=11
  edge reserve approve
  edge approve pay
  edge approve backorder alt=1
  edge pay confirm
  edge confirm ship
end
conflict 1 1
)";

AdmissionProtocol ParseProtocol(const std::string& name) {
  if (name == "2pl") return AdmissionProtocol::kTwoPhaseLocking;
  if (name == "serial") return AdmissionProtocol::kSerial;
  if (name == "unsafe") return AdmissionProtocol::kUnsafe;
  return AdmissionProtocol::kPred;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  std::string file;
  AdmissionProtocol protocol = AdmissionProtocol::kPred;
  std::vector<std::pair<std::string, int>> failures;  // "Proc.activity", n

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--protocol" && i + 1 < argc) {
      protocol = ParseProtocol(argv[++i]);
    } else if (arg == "--fail" && i + 1 < argc) {
      std::string spec = argv[++i];
      int count = 1;
      auto colon = spec.find(':');
      if (colon != std::string::npos) {
        count = std::stoi(spec.substr(colon + 1));
        spec = spec.substr(0, colon);
      }
      failures.emplace_back(spec, count);
    } else {
      file = arg;
    }
  }

  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::cout << "(running the built-in demo: two orders over a shared "
                 "inventory,\n OrderA's pay activity failing once)\n\n";
    text = kDemo;
    failures.emplace_back("OrderA.pay", 1);
  }

  auto parsed = ParseWorld(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  auto bound = BoundWorld::Bind(parsed->get());
  if (!bound.ok()) {
    std::cerr << "bind error: " << bound.status() << "\n";
    return 1;
  }
  for (const auto& [spec, count] : failures) {
    auto parts = StrSplit(spec, '.');
    if (parts.size() != 2) {
      std::cerr << "bad --fail spec: " << spec << "\n";
      return 1;
    }
    Status injected = (*bound)->InjectFailure(parts[0], parts[1], count);
    if (!injected.ok()) {
      std::cerr << "cannot inject failure: " << injected << "\n";
      return 1;
    }
    std::cout << "injected failure: " << spec << " x" << count << "\n";
  }

  SchedulerOptions options;
  options.protocol = protocol;
  TransactionalProcessScheduler scheduler(options);
  if (Status attached = (*bound)->Attach(&scheduler); !attached.ok()) {
    std::cerr << "attach error: " << attached << "\n";
    return 1;
  }
  auto pids = (*bound)->SubmitAll(&scheduler);
  if (!pids.ok()) {
    std::cerr << "submit error: " << pids.status() << "\n";
    return 1;
  }
  Status run = scheduler.Run();
  std::cout << "run: " << run << "\n\n";
  for (const auto& [name, pid] : *pids) {
    const char* outcome = "active";
    switch (scheduler.OutcomeOf(pid)) {
      case ProcessOutcome::kCommitted:
        outcome = "committed";
        break;
      case ProcessOutcome::kAborted:
        outcome = "aborted";
        break;
      default:
        break;
    }
    std::cout << "  " << name << " (P" << pid << "): " << outcome << "\n";
  }
  std::cout << "\nemitted schedule: " << scheduler.history().ToString()
            << "\n";
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  std::cout << "history PRED: " << (pred.ok() && *pred ? "yes" : "NO")
            << "\n";
  std::cout << "final store:\n";
  for (const auto& [key, value] :
       (*bound)->subsystem()->store().Snapshot()) {
    std::cout << "  " << key << " = " << value << "\n";
  }
  std::cout << "stats: activities=" << scheduler.stats().activities_committed
            << " compensations=" << scheduler.stats().compensations
            << " alternatives=" << scheduler.stats().alternatives_taken
            << " deferrals=" << scheduler.stats().deferrals << "\n";
  return 0;
}
