// Quickstart: define a transactional process, run it on a simulated
// subsystem, inspect the emitted schedule, and see failure handling by
// alternative execution paths.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

using namespace tpm;

int main() {
  std::cout << "== tpm quickstart ==\n\n";

  // 1. A transactional subsystem offering a few services. Conflicts are
  //    derived automatically from read/write sets.
  KvSubsystem store(SubsystemId(1), "shop");
  (void)store.RegisterService(
      MakeAddService(ServiceId(1), "reserve_item", "stock"));
  (void)store.RegisterService(
      MakeSubService(ServiceId(2), "release_item", "stock"));
  (void)store.RegisterService(
      MakeAddService(ServiceId(3), "charge_card", "charges"));
  (void)store.RegisterService(
      MakeAddService(ServiceId(4), "ship", "shipments"));
  (void)store.RegisterService(
      MakeAddService(ServiceId(5), "notify", "notifications"));

  // 2. A process with guaranteed termination (well-formed flex structure):
  //    reserve (compensatable) << charge (pivot) << ship, notify
  //    (retriable).
  ProcessDef order("order");
  ActivityId reserve = order.AddActivity(
      "reserve", ActivityKind::kCompensatable, ServiceId(1), ServiceId(2));
  ActivityId charge =
      order.AddActivity("charge", ActivityKind::kPivot, ServiceId(3));
  ActivityId ship =
      order.AddActivity("ship", ActivityKind::kRetriable, ServiceId(4));
  ActivityId notify =
      order.AddActivity("notify", ActivityKind::kRetriable, ServiceId(5));
  (void)order.AddEdge(reserve, charge);
  (void)order.AddEdge(charge, ship);
  (void)order.AddEdge(ship, notify);
  Status valid = order.Validate();
  if (!valid.ok()) {
    std::cerr << "process invalid: " << valid << "\n";
    return 1;
  }
  valid = ValidateWellFormedFlex(order);
  std::cout << "process definition:\n" << order.ToString() << "\n"
            << "well-formed flex structure: "
            << (valid.ok() ? "yes (guaranteed termination)" : valid.ToString())
            << "\n\n";

  // 3. Run it through the transactional process scheduler.
  TransactionalProcessScheduler scheduler;
  (void)scheduler.RegisterSubsystem(&store);
  auto pid = scheduler.Submit(&order);
  if (!pid.ok()) {
    std::cerr << "submit failed: " << pid.status() << "\n";
    return 1;
  }
  Status run = scheduler.Run();
  std::cout << "run 1 (no failures): " << run << "\n"
            << "  emitted schedule: " << scheduler.history().ToString()
            << "\n"
            << "  stock=" << store.store().Get("stock")
            << " charges=" << store.store().Get("charges")
            << " shipments=" << store.store().Get("shipments") << "\n\n";

  // 4. Now make the pivot fail: the scheduler performs backward recovery —
  //    the reservation is compensated and the store is untouched.
  store.ScheduleFailures(ServiceId(3), 1);
  auto pid2 = scheduler.Submit(&order);
  run = scheduler.Run();
  std::cout << "run 2 (charge fails): " << run << "\n"
            << "  outcome: "
            << (scheduler.OutcomeOf(*pid2) == ProcessOutcome::kAborted
                    ? "aborted (backward recovery)"
                    : "committed")
            << "\n"
            << "  stock=" << store.store().Get("stock")
            << " (reservation compensated)\n\n";

  // 5. Retriable activities survive transient failures (Def. 3).
  store.ScheduleFailures(ServiceId(4), 2);  // ship aborts twice
  auto pid3 = scheduler.Submit(&order);
  run = scheduler.Run();
  std::cout << "run 3 (ship fails twice, then succeeds): " << run << "\n"
            << "  outcome: "
            << (scheduler.OutcomeOf(*pid3) == ProcessOutcome::kCommitted
                    ? "committed"
                    : "aborted")
            << ", failed invocations so far: "
            << scheduler.stats().failed_invocations << "\n\n";

  // 6. The emitted history satisfies the paper's PRED criterion.
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  std::cout << "history is prefix-reducible (PRED): "
            << (pred.ok() && *pred ? "yes" : "NO") << "\n";
  return 0;
}
