// Order fulfillment at scale: a stream of concurrent order processes over
// shared inventory, comparing the PRED scheduler against the serial and
// strict-2PL baselines, with crash recovery in the middle of the run.
//
//   ./build/examples/order_fulfillment

#include <iomanip>
#include <iostream>

#include "common/str_util.h"
#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct Report {
  int64_t steps = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t retries = 0;
  int64_t deferrals = 0;
  bool consistent = false;
  bool pred = false;
};

// Runs `num_orders` order processes; aborted orders are resubmitted (what
// a workflow engine does), up to a few rounds.
Report RunFleet(AdmissionProtocol protocol, int num_orders, int hot_items,
                double failure_rate) {
  SyntheticUniverse universe(/*num_subsystems=*/3, /*keys_per_subsystem=*/4);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, failure_rate);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = hot_items;
  shape.nested_probability = 0.35;
  ProcessGenerator generator(&universe, shape, /*seed=*/4711);

  SchedulerOptions options;
  options.protocol = protocol;
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);

  Report report;
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (int i = 0; i < num_orders; ++i) {
    auto def = generator.Generate(StrCat("order", i));
    if (!def.ok()) continue;
    auto pid = scheduler.Submit(*def);
    if (pid.ok()) in_flight[*pid] = *def;
  }
  for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
    Status run = scheduler.Run();
    if (!run.ok()) {
      std::cerr << "run failed: " << run << "\n";
      return report;
    }
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 5) continue;  // give up
      auto retry = scheduler.Submit(def);
      if (retry.ok()) {
        next[*retry] = def;
        ++report.retries;
      }
    }
    in_flight = std::move(next);
  }
  report.steps = scheduler.stats().steps;
  report.committed = scheduler.stats().processes_committed;
  report.aborted = scheduler.stats().processes_aborted;
  report.deferrals = scheduler.stats().deferrals;
  report.consistent =
      universe.TotalValue() == scheduler.stats().activities_committed -
                                   scheduler.stats().compensations;
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  report.pred = pred.ok() && *pred;
  return report;
}

void PrintRow(const char* name, const Report& r) {
  std::cout << "  " << std::left << std::setw(10) << name << std::right
            << std::setw(7) << r.steps << std::setw(11) << r.committed
            << std::setw(9) << r.aborted << std::setw(9) << r.retries
            << std::setw(11) << r.deferrals << std::setw(13)
            << (r.consistent ? "yes" : "NO") << std::setw(7)
            << (r.pred ? "yes" : "NO") << "\n";
}

}  // namespace

int main() {
  std::cout << "== order fulfillment fleet ==\n\n";
  std::cout << "20 order processes over shared inventory (12 items), 10%\n"
               "transient failure rate; aborted orders are resubmitted.\n"
               "items/order controls contention.\n";

  for (int items_per_order : {1, 2, 3}) {
    std::cout << "\n-- " << items_per_order << " item(s) per order --\n";
    std::cout << "  protocol    steps  committed  aborted  retries"
                 "  deferrals  consistent   PRED\n";
    PrintRow("pred",
             RunFleet(AdmissionProtocol::kPred, 20, items_per_order, 0.10));
    PrintRow("2pl", RunFleet(AdmissionProtocol::kTwoPhaseLocking, 20,
                             items_per_order, 0.10));
    PrintRow("serial",
             RunFleet(AdmissionProtocol::kSerial, 20, items_per_order, 0.10));
  }
  std::cout <<
      "\nNote: the 2PL baseline serializes executed conflicts but is blind\n"
      "to conflicts introduced by completions (forward recovery paths), so\n"
      "its histories are not generally PRED — the §3.5 argument for why\n"
      "criteria that only look at S cannot work.\n";

  // Crash in the middle of a fleet, then recover.
  std::cout << "\n-- crash/recovery drill --\n";
  SyntheticUniverse universe(2, 4);
  ProcessShape shape;
  shape.items_per_process = 2;
  ProcessGenerator generator(&universe, shape, 99);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  (void)universe.RegisterAll(&scheduler);
  std::map<std::string, const ProcessDef*> defs;
  for (int i = 0; i < 6; ++i) {
    auto def = generator.Generate(StrCat("c", i));
    if (!def.ok()) continue;
    defs[(*def)->name()] = *def;
    (void)scheduler.Submit(*def);
  }
  for (int i = 0; i < 4; ++i) (void)scheduler.Step();
  std::cout << "  crash after 4 scheduling passes ("
            << scheduler.stats().activities_committed
            << " activities committed)...\n";
  scheduler.Crash();
  Status recovered = scheduler.Recover(defs);
  std::cout << "  recovery: " << recovered << "\n"
            << "  compensations during recovery: "
            << scheduler.stats().compensations << "\n"
            << "  store total after recovery: " << universe.TotalValue()
            << " (0 = every in-flight process rolled back or completed "
               "forward cleanly)\n";
  return 0;
}
