// Schedule analyzer: reads a process-world description (see
// core/process_dsl.h for the format), then prints a full correctness
// diagnosis of the contained schedule — serializability, reducibility
// (RED), prefix-reducibility (PRED), process-recoverability (Def. 11),
// SOT, and the classical (undo-only) comparison.
//
//   ./build/examples/schedule_analyzer [world.tpm]
//
// Without an argument it analyzes the paper's S_t2 (Figure 4a).

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/completed_schedule.h"
#include "core/completion.h"
#include "core/dot_export.h"
#include "core/expansion.h"
#include "core/lint.h"
#include "core/pred.h"
#include "core/process_dsl.h"
#include "core/recoverability.h"
#include "core/reduction.h"
#include "core/serializability.h"
#include "core/sot.h"

using namespace tpm;

namespace {

constexpr char kDemo[] = R"(
# The paper's running example: P1 (Figure 2), P2 (Figure 4), schedule
# S_t2 of Figure 4(a) — serializable, reducible, but NOT prefix-reducible
# (its prefix S_t1 is Example 8's counterexample).
process P1
  activity a1 c service=11 comp=111
  activity a2 p service=12
  activity a3 c service=13 comp=113
  activity a4 p service=14
  activity a5 r service=15
  activity a6 r service=16
  edge a1 a2
  edge a2 a3
  edge a2 a5 alt=1
  edge a3 a4
  edge a5 a6
end

process P2
  activity a1 c service=21 comp=121
  activity a2 c service=22 comp=122
  activity a3 p service=23
  activity a4 r service=24
  activity a5 r service=25
  edge a1 a2
  edge a2 a3
  edge a3 a4
  edge a4 a5
end

conflict 11 21
conflict 12 24
conflict 15 25

schedule P1.a1 P2.a1 P2.a2 P2.a3 P1.a2 P1.a3 P2.a4
)";

int Analyze(const std::string& text, bool dot) {
  auto parsed = ParseWorld(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  ParsedWorld& world = **parsed;

  if (dot) {
    // Graphviz mode: emit the pictures the paper draws and exit.
    for (const auto& def : world.defs) {
      std::cout << ProcessToDot(*def) << "\n";
    }
    if (world.has_schedule) {
      std::cout << ScheduleToDot(world.schedule, world.spec) << "\n"
                << ConflictGraphToDot(world.schedule, world.spec) << "\n";
    }
    return 0;
  }

  std::cout << "processes:\n";
  for (const auto& def : world.defs) {
    std::cout << def->ToString();
    for (const LintDiagnostic& diagnostic :
         LintProcess(*def, &world.spec)) {
      std::cout << "  lint " << diagnostic.ToString() << "\n";
    }
    ProcessId pid = world.pid_by_name.at(def->name());
    const ProcessExecutionState* state = world.schedule.StateOf(pid);
    if (state->IsActive()) {
      auto completion = ComputeCompletion(*state);
      if (completion.ok()) {
        std::cout << "  state: active, completion C(" << def->name()
                  << ") = " << completion->ToString() << "\n";
      }
    } else {
      std::cout << "  state: "
                << (state->outcome() == ProcessOutcome::kCommitted
                        ? "committed"
                        : "aborted")
                << "\n";
    }
  }
  if (!world.has_schedule) {
    std::cout << "\n(no schedule to analyze)\n";
    return 0;
  }

  std::cout << "\nschedule S = " << world.schedule.ToString() << "\n\n";

  // Serializability.
  ConflictGraph cg = BuildConflictGraph(world.schedule, world.spec);
  std::cout << "serializable:          " << (cg.IsAcyclic() ? "yes" : "NO");
  if (!cg.IsAcyclic()) {
    std::cout << "  (cycle:";
    for (ProcessId p : cg.FindCycle()) std::cout << " P" << p;
    std::cout << ")";
  } else {
    auto order = cg.SerializationOrder();
    if (order.ok()) {
      std::cout << "  (order:";
      for (ProcessId p : *order) std::cout << " P" << p;
      std::cout << ")";
    }
  }
  std::cout << "\n";

  // Completed schedule + RED.
  auto completed = CompleteSchedule(world.schedule);
  if (completed.ok()) {
    std::cout << "completed schedule S~: " << completed->ToString() << "\n";
  }
  auto red = AnalyzeRED(world.schedule, world.spec);
  if (red.ok()) {
    std::cout << "reducible (RED):       "
              << (red->reducible ? "yes" : "NO");
    if (!red->reducible && !red->cycle.empty()) {
      std::cout << "  (irreducible cycle:";
      for (ProcessId p : red->cycle) std::cout << " P" << p;
      std::cout << ")";
    }
    std::cout << "\n";
  }

  // PRED with per-prefix map.
  auto pred = AnalyzePRED(world.schedule, world.spec);
  if (pred.ok()) {
    std::cout << "prefix-reducible:      "
              << (pred->prefix_reducible ? "yes (PRED)" : "NO");
    if (!pred->prefix_reducible) {
      std::cout << "  (first irreducible prefix: " << pred->violating_prefix
                << " events)";
    }
    std::cout << "\n  prefix map: ";
    for (size_t n = 1; n <= world.schedule.size(); ++n) {
      auto r = IsRED(world.schedule.Prefix(n), world.spec);
      std::cout << (r.ok() && *r ? '+' : '-');
    }
    std::cout << "   (+ reducible, - irreducible)\n";
  }

  // Proc-REC.
  ProcRecOutcome procrec =
      AnalyzeProcessRecoverability(world.schedule, world.spec);
  std::cout << "Def. 11 Proc-REC:      "
            << (procrec.process_recoverable ? "yes" : "NO") << "\n";
  for (const auto& violation : procrec.violations) {
    std::cout << "    " << violation.ToString() << "\n";
  }

  // SOT and the classical comparison.
  std::cout << "SOT [AVA+94]:          "
            << (IsSOT(world.schedule, world.spec) ? "yes" : "NO") << "\n";
  auto classical = IsClassicallyPrefixReducible(world.schedule, world.spec);
  if (classical.ok()) {
    std::cout << "classical PRED (all inverses assumed): "
              << (*classical ? "yes" : "NO") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  bool dot = false;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dot") {
      dot = true;
    } else {
      file = argv[i];
    }
  }
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    if (!dot) {
      std::cout
          << "(no input file given; analyzing the built-in S_t2 demo;\n"
             " pass a .tpm file, and --dot for Graphviz output)\n\n";
    }
    text = kDemo;
  }
  return Analyze(text, dot);
}
