// The §2 / Figure 1 CIM scenario end to end: concurrent construction and
// production processes over eight subsystems, compared across scheduler
// protocols and failure cases.
//
//   ./build/examples/cim_scenario

#include <iostream>
#include <memory>

#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "workload/cim_workload.h"

using namespace tpm;

namespace {

void RunCase(const char* title,
             std::unique_ptr<TransactionalProcessScheduler> scheduler,
             bool test_fails) {
  CimWorld world;
  if (test_fails) world.ScheduleTestFailure();
  (void)world.RegisterAll(scheduler.get());

  auto construction = scheduler->Submit(world.construction());
  // The production process starts once the BOM exists (its Figure 1 input
  // dependency): advance three steps (design, approve, pdm_entry).
  for (int i = 0; i < 3; ++i) (void)scheduler->Step();
  auto production = scheduler->Submit(world.production());
  Status run = scheduler->Run();

  auto outcome_name = [&](Result<ProcessId>& pid) {
    if (!pid.ok()) return "submit-failed";
    switch (scheduler->OutcomeOf(*pid)) {
      case ProcessOutcome::kCommitted:
        return "committed";
      case ProcessOutcome::kAborted:
        return "aborted";
      default:
        return "active";
    }
  };

  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  std::cout << "--- " << title << (test_fails ? " (test fails)" : "")
            << " ---\n"
            << "  run: " << run << "\n"
            << "  construction: " << outcome_name(construction)
            << ", production: " << outcome_name(production) << "\n"
            << "  BOM entries: " << world.bom_entries()
            << ", parts produced: " << world.parts_produced()
            << ", techdocs: " << world.techdocs()
            << ", reuse docs: " << world.reuse_docs() << "\n"
            << "  state consistent: " << (world.Consistent() ? "YES" : "NO")
            << ", history PRED: " << (pred.ok() && *pred ? "YES" : "NO")
            << "\n"
            << "  deferrals: " << scheduler->stats().deferrals
            << ", cascading aborts: " << scheduler->stats().cascading_aborts
            << ", irrecoverable: "
            << scheduler->stats().irrecoverable_cascades << "\n\n";
}

}  // namespace

int main() {
  std::cout << "== CIM scenario (paper §2, Figure 1) ==\n\n";
  std::cout << "Construction: design << approve << {pdm_entry << prototype\n"
               "  << calibrate << test << techdoc | alternative: reuse_doc}\n"
               "Production:   read_bom << order << schedule << produce^pivot\n"
               "  << update_db   (produce has no inverse!)\n\n";

  RunCase("PRED scheduler", MakePredScheduler(), /*test_fails=*/false);
  RunCase("PRED scheduler", MakePredScheduler(), /*test_fails=*/true);
  RunCase("Unsafe (classical CC only)", MakeUnsafeScheduler(),
          /*test_fails=*/true);
  RunCase("Strict 2PL", MakeLockingScheduler(), /*test_fails=*/true);
  RunCase("Serial", MakeSerialScheduler(), /*test_fails=*/true);

  std::cout
      << "Takeaway: the unsafe scheduler produces parts for a product whose\n"
         "BOM was invalidated (the §2.2 inconsistency); the PRED scheduler\n"
         "defers the production pivot until the construction process\n"
         "commits, so the failure cascades cleanly instead.\n";
  return 0;
}
