// Randomized chaos soak across subsystem failure domains: seeded outage
// schedules, transient faults and latency spikes run against the full
// health stack (deadlines, circuit breakers, parking, ◁-degradation) over
// both the in-memory and the file-backed WAL. Every run must terminate,
// end with every process in a terminal state, keep the emitted history
// prefix-reducible (PRED, Def. 10) and process-recoverable (Proc-REC,
// Def. 11), and never drive a key-value entry negative. A violation
// prints a one-line reproducer:
//
//   TPM_CHAOS_SEED_BASE=<seed> TPM_CHAOS_SEEDS=1 ctest -R SubsystemChaos
//
// Knobs: TPM_CHAOS_SEED_BASE (first seed, default 1) and TPM_CHAOS_SEEDS
// (number of seeds, default 34; x3 severities x2 backends = 204 runs).
// CI's chaos-soak job passes a fresh random base every night.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/scheduler.h"
#include "log/file_backend.h"
#include "log/recovery_log.h"
#include "core/schedule.h"
#include "testing/fault_injector.h"
#include "workload/fault_workload.h"
#include "workload/semantic_world.h"

namespace tpm {
namespace {

using testing::WriteFailingSeed;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

/// 0 = healthy, 1 = one flaky subsystem, 2 = flaky + one outage-prone
/// subsystem (repairable outage windows).
struct Severity {
  int level;
  const char* name;
};

constexpr Severity kSeverities[] = {
    {0, "healthy"}, {1, "flaky"}, {2, "outage"}};

struct ChaosRunResult {
  SchedulerStats stats;
  std::string failures;  // empty = all invariants held
};

/// One seeded run: builds a 3-subsystem world, applies the severity's
/// fault shape to seed-chosen victims, drives a mixed workload (processes
/// with cross-subsystem ◁-alternatives plus chains without any) to
/// completion and checks the invariants.
ChaosRunResult ChaosRun(uint64_t seed, const Severity& severity,
                        bool file_backed, const std::string& log_path) {
  ChaosRunResult result;
  Rng rng(seed * 1000003 + severity.level);

  FaultDomainOptions world_options;
  world_options.num_subsystems = 3;
  world_options.seed = seed;
  world_options.proxy.deadline_ticks = 12;
  world_options.proxy.window = 6;
  world_options.proxy.min_samples = 4;
  world_options.proxy.failure_threshold = 0.5;
  world_options.proxy.cooldown_ticks = 20;
  FaultDomainWorld world(world_options);

  if (severity.level >= 1) {
    // One seed-chosen flaky subsystem; the rest stay healthy so degraded
    // paths have somewhere to land.
    testing::FaultProfile flaky;
    flaky.transient_abort_probability = 0.2;
    flaky.latency_ticks = 1;
    flaky.slow_probability = 0.1;
    flaky.slow_latency_ticks = 15;  // blows the 12-tick budget when drawn
    world.faulty(static_cast<int>(rng.NextInRange(0, 2)))->set_profile(flaky);
  }
  int down = -1;
  if (severity.level >= 2) {
    // A second victim suffers repairable outage windows.
    down = static_cast<int>(rng.NextInRange(0, 2));
    const int64_t start = rng.NextInRange(2, 30);
    world.faulty(down)->AddOutage(start, start + rng.NextInRange(40, 120));
    world.faulty(down)->AddOutage(start + 250, start + 250 + 40);
  }

  // Subsystem-side retry masking with the satellite backoff policy:
  // exponential, capped, seeded full jitter — all on the shared clock.
  for (int i = 0; i < world.num_subsystems(); ++i) {
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.backoff_base_ticks = 1;
    retry.exponential = true;
    retry.max_backoff_ticks = 4;
    retry.full_jitter = true;
    world.raw(i)->SetRetryPolicy(retry);
  }

  // Mixed workload: every subsystem is someone's home, someone's primary
  // and someone's degradation target, so any single outage is survivable
  // for the alternative-bearing processes; the chains have no alternative
  // and must park until repair or abort via the park timeout.
  std::vector<const ProcessDef*> defs;
  defs.push_back(world.MakeAlternativeProcess("alt0", 0, 1, 2, 0));
  defs.push_back(world.MakeAlternativeProcess("alt1", 1, 2, 0, 1));
  defs.push_back(world.MakeAlternativeProcess("alt2", 2, 0, 1, 2));
  defs.push_back(world.MakeAlternativeProcess(
      "alt3", static_cast<int>(rng.NextInRange(0, 2)),
      static_cast<int>(rng.NextInRange(0, 2)),
      static_cast<int>(rng.NextInRange(0, 2)), 3));
  defs.push_back(world.MakeChainProcess(
      "chain0", static_cast<int>(rng.NextInRange(0, 2)), 3, 4));
  defs.push_back(world.MakeChainProcess(
      "chain1", static_cast<int>(rng.NextInRange(0, 2)), 2, 5));
  for (const ProcessDef* def : defs) {
    if (def == nullptr) {
      result.failures = " workload-def-failed-to-build";
      return result;
    }
  }

  std::unique_ptr<RecoveryLog> log;
  if (file_backed) {
    std::remove(log_path.c_str());
    auto backend = FileStorageBackend::Open(log_path);
    if (!backend.ok()) {
      result.failures = " log-open:" + backend.status().ToString();
      return result;
    }
    log = std::make_unique<RecoveryLog>(std::move(*backend));
  } else {
    log = std::make_unique<RecoveryLog>();
  }

  SchedulerOptions options;
  options.clock = world.clock();
  // Bounds termination even if an outage outlasts every retry: a parked
  // activity falls back to the failure ladder after this long.
  options.park_timeout_ticks = 400;
  // Half the seeds run the Lemma 1 deferral as prepared 2PC branches so
  // the chaos also exercises phase-two resolution under sick subsystems.
  options.defer_mode =
      (seed % 2 == 0) ? DeferMode::kPrepared2PC : DeferMode::kDelayExecution;
  TransactionalProcessScheduler scheduler(options, log.get());
  Status registered = world.RegisterAll(&scheduler);
  if (!registered.ok()) {
    result.failures = " register:" + registered.ToString();
    return result;
  }

  for (const ProcessDef* def : defs) {
    Result<ProcessId> pid = scheduler.Submit(def);
    if (!pid.ok()) {
      result.failures = " submit:" + pid.status().ToString();
      return result;
    }
  }

  // Guaranteed termination (§3.1): the run must end on its own.
  Status run = scheduler.Run(300000);
  result.stats = scheduler.stats();
  if (!run.ok()) {
    result.failures += " run:" + run.ToString();
  }
  for (int p = 1; p <= static_cast<int>(defs.size()); ++p) {
    if (scheduler.OutcomeOf(ProcessId(p)) == ProcessOutcome::kActive) {
      result.failures += StrCat(" non-terminal:P", p);
    }
  }
  Result<bool> pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  if (!pred.ok()) {
    result.failures += " PRED-check-error:" + pred.status().ToString();
  } else if (!*pred) {
    result.failures += " not-PRED:" + scheduler.history().ToString();
  }
  if (!IsProcessRecoverable(scheduler.history(), scheduler.conflict_spec())) {
    result.failures += " not-ProcREC:" + scheduler.history().ToString();
  }
  if (world.AnyNegativeValue()) {
    result.failures += " negative-kv-value";
  }
  if (file_backed) std::remove(log_path.c_str());
  return result;
}

TEST(SubsystemChaos, SoakSeededOutageSchedulesAcrossBackends) {
  const uint64_t seed_base =
      static_cast<uint64_t>(EnvInt("TPM_CHAOS_SEED_BASE", 1));
  const int64_t num_seeds = EnvInt("TPM_CHAOS_SEEDS", 34);
  const std::string log_path = ::testing::TempDir() + "tpm_chaos_" +
                               StrCat(::getpid()) + ".log";
  int64_t runs = 0;
  int64_t committed = 0, aborted = 0, trips = 0, degraded = 0, parked = 0;
  for (uint64_t seed = seed_base; seed < seed_base + num_seeds; ++seed) {
    for (const Severity& severity : kSeverities) {
      for (bool file_backed : {false, true}) {
        ChaosRunResult r = ChaosRun(seed, severity, file_backed, log_path);
        ++runs;
        committed += r.stats.processes_committed;
        aborted += r.stats.processes_aborted;
        trips += r.stats.breaker_trips;
        degraded += r.stats.degraded_switches;
        parked += r.stats.parked_activities;
        if (!r.failures.empty()) {
          const std::string tag =
              StrCat("chaos_", severity.name, file_backed ? "_file" : "_mem");
          std::string seed_file = WriteFailingSeed(
              tag, static_cast<int64_t>(seed), "chaos", r.failures);
          FAIL() << tag << " seed=" << seed << ":" << r.failures
                 << "\nreproduce with: TPM_CHAOS_SEED_BASE=" << seed
                 << " TPM_CHAOS_SEEDS=1 ctest -R SubsystemChaos"
                 << "\n(reproducer appended to " << seed_file << ")";
        }
      }
    }
  }
  // The soak actually exercised the machinery it is soaking.
  EXPECT_GE(runs, 3 * 2);
  EXPECT_GT(committed, 0);
  if (num_seeds >= 20) {
    EXPECT_GT(trips, 0) << "no breaker ever tripped across the soak";
    EXPECT_GT(parked + degraded + aborted, 0);
  }
  std::printf(
      "chaos soak: %lld runs, %lld committed, %lld aborted, %lld trips, "
      "%lld degraded, %lld parked\n",
      static_cast<long long>(runs), static_cast<long long>(committed),
      static_cast<long long>(aborted), static_cast<long long>(trips),
      static_cast<long long>(degraded), static_cast<long long>(parked));
}

// ---------------------------------------------------------------------------
// Semantic-ADT chaos soak: the same severity ladder and health stack, but
// over the mixed SemanticWorld (escrow counters + token queues + KV) whose
// processes lean on op-level commutativity and Def. 2 compensation pairs
// across ADTs. On top of the schedule-level invariants, every run must
// leave the escrow safety envelope intact (no stable balance below its
// bound) and the token queue consistent (no duplicated or lost token) —
// CheckAdtInvariants.
//
// Unlike the disjoint-key chaos workload above, every process here hammers
// the SAME counter and queue, so aborted processes routinely conflict-
// precede committed ones: Proc-REC is checked on the committed projection
// and PRED on the full history (see CommittedProjection in core/schedule.h).
//
// Reproduce failures with:
//   TPM_CHAOS_SEED_BASE=<seed> TPM_SEMANTIC_CHAOS_SEEDS=1 ctest -R SemanticChaos

ChaosRunResult SemanticChaosRun(uint64_t seed, const Severity& severity,
                                bool file_backed,
                                const std::string& log_path) {
  ChaosRunResult result;
  Rng rng(seed * 1000003 + 17 * severity.level);

  SemanticWorldOptions world_options;
  world_options.seed = seed;
  world_options.escrow_initial = 50;
  // Consumers are the bound here: with at most 2 committed dequeues per
  // run against 6 seeded tokens, a producer's fresh token never reaches
  // the queue head, so an aborting producer's remove-compensation always
  // finds its token still queued.
  world_options.queue_initial_tokens = 6;
  world_options.proxy.deadline_ticks = 12;
  world_options.proxy.window = 6;
  world_options.proxy.min_samples = 4;
  world_options.proxy.failure_threshold = 0.5;
  world_options.proxy.cooldown_ticks = 20;
  SemanticWorld world(world_options);

  if (severity.level >= 1) {
    testing::FaultProfile flaky;
    flaky.transient_abort_probability = 0.2;
    flaky.latency_ticks = 1;
    flaky.slow_probability = 0.1;
    flaky.slow_latency_ticks = 15;  // blows the 12-tick budget when drawn
    world.faulty(static_cast<int>(rng.NextInRange(0, 2)))->set_profile(flaky);
  }
  if (severity.level >= 2) {
    const int down = static_cast<int>(rng.NextInRange(0, 2));
    const int64_t start = rng.NextInRange(2, 30);
    world.faulty(down)->AddOutage(start, start + rng.NextInRange(40, 120));
    world.faulty(down)->AddOutage(start + 250, start + 250 + 40);
  }

  std::vector<const ProcessDef*> defs;
  int variant = 0;
  for (int i = 0; i < 3; ++i) {
    defs.push_back(world.MakeOrderProcess(StrCat("order", i), variant++));
  }
  for (int i = 0; i < 2; ++i) {
    defs.push_back(world.MakeConsumeProcess(StrCat("consume", i), variant++));
  }
  defs.push_back(world.MakeRefillProcess("refill0", variant++));
  for (const ProcessDef* def : defs) {
    if (def == nullptr) {
      result.failures = " workload-def-failed-to-build";
      return result;
    }
  }

  std::unique_ptr<RecoveryLog> log;
  if (file_backed) {
    std::remove(log_path.c_str());
    auto backend = FileStorageBackend::Open(log_path);
    if (!backend.ok()) {
      result.failures = " log-open:" + backend.status().ToString();
      return result;
    }
    log = std::make_unique<RecoveryLog>(std::move(*backend));
  } else {
    log = std::make_unique<RecoveryLog>();
  }

  SchedulerOptions options;
  options.clock = world.clock();
  options.park_timeout_ticks = 400;
  options.defer_mode =
      (seed % 2 == 0) ? DeferMode::kPrepared2PC : DeferMode::kDelayExecution;
  // Half the runs also soak the read/write fallback so the ADT invariants
  // are checked under both conflict relations.
  options.use_op_commutativity = (seed + severity.level) % 2 == 0;
  TransactionalProcessScheduler scheduler(options, log.get());
  Status registered = world.RegisterAll(&scheduler);
  if (!registered.ok()) {
    result.failures = " register:" + registered.ToString();
    return result;
  }
  for (const ProcessDef* def : defs) {
    Result<ProcessId> pid = scheduler.Submit(def);
    if (!pid.ok()) {
      result.failures = " submit:" + pid.status().ToString();
      return result;
    }
  }

  Status run = scheduler.Run(300000);
  result.stats = scheduler.stats();
  if (!run.ok()) {
    result.failures += " run:" + run.ToString();
  }
  for (int p = 1; p <= static_cast<int>(defs.size()); ++p) {
    if (scheduler.OutcomeOf(ProcessId(p)) == ProcessOutcome::kActive) {
      result.failures += StrCat(" non-terminal:P", p);
    }
  }
  Result<bool> pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  if (!pred.ok()) {
    result.failures += " PRED-check-error:" + pred.status().ToString();
  } else if (!*pred) {
    result.failures += " not-PRED:" + scheduler.history().ToString();
  }
  if (!IsProcessRecoverable(CommittedProjection(scheduler.history()),
                            scheduler.conflict_spec())) {
    result.failures += " not-ProcREC:" + scheduler.history().ToString();
  }
  Status adt = world.CheckAdtInvariants();
  if (!adt.ok()) {
    result.failures += " adt-invariant:" + adt.ToString();
  }
  if (file_backed) std::remove(log_path.c_str());
  return result;
}

TEST(SemanticChaos, SoakMixedAdtWorldAcrossBackends) {
  const uint64_t seed_base =
      static_cast<uint64_t>(EnvInt("TPM_CHAOS_SEED_BASE", 1));
  const int64_t num_seeds = EnvInt("TPM_SEMANTIC_CHAOS_SEEDS", 12);
  const std::string log_path = ::testing::TempDir() + "tpm_semchaos_" +
                               StrCat(::getpid()) + ".log";
  int64_t runs = 0;
  int64_t committed = 0, aborted = 0;
  for (uint64_t seed = seed_base; seed < seed_base + num_seeds; ++seed) {
    for (const Severity& severity : kSeverities) {
      for (bool file_backed : {false, true}) {
        ChaosRunResult r =
            SemanticChaosRun(seed, severity, file_backed, log_path);
        ++runs;
        committed += r.stats.processes_committed;
        aborted += r.stats.processes_aborted;
        if (!r.failures.empty()) {
          const std::string tag = StrCat("semantic_chaos_", severity.name,
                                         file_backed ? "_file" : "_mem");
          std::string seed_file = WriteFailingSeed(
              tag, static_cast<int64_t>(seed), "semantic-chaos", r.failures);
          FAIL() << tag << " seed=" << seed << ":" << r.failures
                 << "\nreproduce with: TPM_CHAOS_SEED_BASE=" << seed
                 << " TPM_SEMANTIC_CHAOS_SEEDS=1 ctest -R SemanticChaos"
                 << "\n(reproducer appended to " << seed_file << ")";
        }
      }
    }
  }
  EXPECT_GE(runs, 3 * 2);
  EXPECT_GT(committed, 0);
  std::printf("semantic chaos soak: %lld runs, %lld committed, %lld aborted\n",
              static_cast<long long>(runs), static_cast<long long>(committed),
              static_cast<long long>(aborted));
}

// ---------------------------------------------------------------------------
// Outage-aware degradation (the acceptance scenario): one subsystem is
// forced into an unrepaired outage with its breaker pinned open; workloads
// whose preference order offers paths around it must still commit via
// degraded branches, and nothing may retry against the open breaker.

TEST(SubsystemChaos, ForcedOutageDegradesToAlternativePaths) {
  FaultDomainOptions world_options;
  world_options.num_subsystems = 3;
  world_options.seed = 7;
  world_options.proxy.window = 2;
  world_options.proxy.min_samples = 2;
  world_options.proxy.cooldown_ticks = 1000000;  // never half-opens
  FaultDomainWorld world(world_options);
  const int sick = 1;
  world.faulty(sick)->AddOutage(0, 1000000);  // never repaired

  // Processes whose preferred group runs on the sick subsystem but whose
  // ◁-alternative avoids it, plus one that never touches it.
  std::vector<const ProcessDef*> defs;
  defs.push_back(world.MakeAlternativeProcess("deg0", 0, sick, 2, 0));
  defs.push_back(world.MakeAlternativeProcess("deg1", 2, sick, 0, 1));
  defs.push_back(world.MakeAlternativeProcess("clean", 0, 2, 0, 2));

  // Trip the sick subsystem's breaker before scheduling begins, as a
  // health prober would: two failed calls are enough for this window.
  ServiceId probe_service = world.AddServiceOn(sick, "probe");
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(world.proxy(sick)
                    ->Invoke(probe_service,
                             ServiceRequest{ProcessId(99), ActivityId(1), 1})
                    .status()
                    .IsAborted());
  }
  ASSERT_EQ(world.proxy(sick)->breaker_state(), BreakerState::kOpen);

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  TransactionalProcessScheduler scheduler(options, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  for (const ProcessDef* def : defs) {
    ASSERT_NE(def, nullptr);
    ASSERT_TRUE(scheduler.Submit(def).ok());
  }
  ASSERT_TRUE(scheduler.Run(100000).ok());

  // Every process commits despite the outage: the scheduler switched the
  // affected ones to their ◁-alternative proactively.
  EXPECT_EQ(scheduler.stats().processes_committed, 3);
  EXPECT_GT(scheduler.stats().degraded_switches, 0);
  for (int p = 1; p <= 3; ++p) {
    EXPECT_EQ(scheduler.OutcomeOf(ProcessId(p)), ProcessOutcome::kCommitted)
        << "P" << p;
  }
  // "No activity retries against an open breaker": the scheduler never
  // even invoked the sick proxy — zero rejections beyond our two probes,
  // zero attempts reaching the fault layer after the trip.
  EXPECT_EQ(world.proxy(sick)->health_counters().rejected_while_open, 0);
  EXPECT_EQ(world.faulty(sick)->attempted_invocations(), 2);
  // The degraded branches really ran elsewhere: nothing committed on the
  // sick store.
  EXPECT_TRUE(world.raw(sick)->store().Snapshot().empty());
  EXPECT_FALSE(world.AnyNegativeValue());
}

// A process with no alternative parks behind the open breaker and resumes
// once the outage is repaired and the breaker half-opens — no retry burns
// while the subsystem is down, and the process still commits.
TEST(SubsystemChaos, ParkedActivityResumesAfterRepair) {
  FaultDomainOptions world_options;
  world_options.num_subsystems = 2;
  world_options.seed = 11;
  world_options.proxy.window = 2;
  world_options.proxy.min_samples = 2;
  world_options.proxy.cooldown_ticks = 25;
  FaultDomainWorld world(world_options);
  world.faulty(0)->AddOutage(0, 60);  // repaired at tick 60

  std::vector<const ProcessDef*> defs;
  // Single retriable activity on the sick subsystem: no branch point, no
  // alternative — parking is the only graceful option.
  defs.push_back(world.MakeChainProcess("lone", 0, 1, 0));
  defs.push_back(world.MakeChainProcess("peer", 1, 2, 1));

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  TransactionalProcessScheduler scheduler(options, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  for (const ProcessDef* def : defs) {
    ASSERT_NE(def, nullptr);
    ASSERT_TRUE(scheduler.Submit(def).ok());
  }
  ASSERT_TRUE(scheduler.Run(100000).ok());

  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(1)), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(2)), ProcessOutcome::kCommitted);
  EXPECT_GT(scheduler.stats().breaker_trips, 0);
  EXPECT_GT(scheduler.stats().parked_activities, 0);
  EXPECT_GT(scheduler.stats().resumed_activities, 0);
  EXPECT_EQ(world.proxy(0)->health_counters().rejected_while_open, 0);
  EXPECT_FALSE(world.AnyNegativeValue());
}

// With the outage never repaired and no alternative, the park timeout
// bounds termination: the activity falls back to the failure ladder and
// the process aborts instead of waiting forever.
TEST(SubsystemChaos, ParkTimeoutBoundsTerminationUnderUnrepairedOutage) {
  FaultDomainOptions world_options;
  world_options.num_subsystems = 2;
  world_options.seed = 13;
  world_options.proxy.window = 2;
  world_options.proxy.min_samples = 2;
  world_options.proxy.cooldown_ticks = 1000000;
  FaultDomainWorld world(world_options);
  world.faulty(0)->AddOutage(0, 1000000);

  std::vector<const ProcessDef*> defs;
  defs.push_back(world.MakeChainProcess("stuck", 0, 1, 0));

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  options.park_timeout_ticks = 50;
  TransactionalProcessScheduler scheduler(options, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  ASSERT_NE(defs[0], nullptr);
  ASSERT_TRUE(scheduler.Submit(defs[0]).ok());
  ASSERT_TRUE(scheduler.Run(100000).ok());

  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(1)), ProcessOutcome::kAborted);
  EXPECT_GT(scheduler.stats().parked_activities, 0);
  EXPECT_FALSE(world.AnyNegativeValue());
}

}  // namespace
}  // namespace tpm
