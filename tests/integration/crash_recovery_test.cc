// Crash/recovery integration: scheduler crashes at every possible step of
// the CIM scenario; after recovery the subsystems must always be in a
// consistent state (group abort with backward/forward recovery, Def. 8).

#include <gtest/gtest.h>

#include "core/baseline_schedulers.h"
#include "core/scheduler.h"
#include "workload/cim_workload.h"

namespace tpm {
namespace {

TEST(CrashRecoveryIntegrationTest, CrashAtEveryStepRecoversConsistently) {
  // First measure how many steps a full run takes.
  int64_t total_steps = 0;
  {
    CimWorld world;
    RecoveryLog log;
    TransactionalProcessScheduler scheduler({}, &log);
    ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
    ASSERT_TRUE(scheduler.Submit(world.construction()).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler.Step().ok());
    ASSERT_TRUE(scheduler.Submit(world.production()).ok());
    ASSERT_TRUE(scheduler.Run().ok());
    total_steps = scheduler.stats().steps;
  }
  ASSERT_GT(total_steps, 5);

  for (int crash_at = 1; crash_at < total_steps; ++crash_at) {
    CimWorld world;
    RecoveryLog log;
    TransactionalProcessScheduler scheduler({}, &log);
    ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
    std::map<std::string, const ProcessDef*> defs = {
        {world.construction()->name(), world.construction()},
        {world.production()->name(), world.production()},
    };
    ASSERT_TRUE(scheduler.Submit(world.construction()).ok());
    int steps = 0;
    bool more = true;
    bool production_submitted = false;
    while (more && steps < crash_at) {
      auto result = scheduler.Step();
      ASSERT_TRUE(result.ok());
      more = *result;
      ++steps;
      if (steps == 3 && world.bom_entries() > 0) {
        ASSERT_TRUE(scheduler.Submit(world.production()).ok());
        production_submitted = true;
        more = true;
      }
    }
    scheduler.Crash();
    ASSERT_TRUE(scheduler.Recover(defs).ok()) << "crash_at=" << crash_at;

    // Invariants after recovery: parts only exist with a valid BOM, no key
    // ever goes negative (every compensation matched a real execution),
    // and the construction terminated through exactly one documentation
    // path (techdoc on success, reuse_doc on abort after the design
    // froze, or neither if it rolled back before the approve pivot).
    EXPECT_TRUE(world.Consistent()) << "crash_at=" << crash_at;
    for (KvSubsystem* subsystem : world.subsystems()) {
      for (const auto& [key, value] : subsystem->store().Snapshot()) {
        EXPECT_GE(value, 0) << "crash_at=" << crash_at << " key=" << key;
      }
    }
    EXPECT_LE(world.techdocs() + world.reuse_docs(), 1)
        << "crash_at=" << crash_at;
    (void)production_submitted;
  }
}

TEST(CrashRecoveryIntegrationTest, DoubleCrashIsIdempotent) {
  CimWorld world;
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  std::map<std::string, const ProcessDef*> defs = {
      {world.construction()->name(), world.construction()},
  };
  ASSERT_TRUE(scheduler.Submit(world.construction()).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler.Step().ok());
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(defs).ok());
  // The approve pivot had committed (F-REC): recovery compensates the PDM
  // entry and terminates through the all-retriable reuse alternative; the
  // quasi-committed design survives.
  EXPECT_EQ(world.bom_entries(), 0);
  EXPECT_EQ(world.Value("drawing"), 1);
  EXPECT_EQ(world.reuse_docs(), 1);
  // Crash again immediately: recovery must be a no-op (the process is
  // already recorded aborted; its compensations are not re-run).
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(defs).ok());
  EXPECT_EQ(world.bom_entries(), 0);
  EXPECT_EQ(world.Value("drawing"), 1);
  EXPECT_EQ(world.reuse_docs(), 1);
}

TEST(CrashRecoveryIntegrationTest, RecoveryAfterForwardState) {
  // Crash after the construction test committed: forward recovery must
  // finish the documentation instead of undoing the work.
  CimWorld world;
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  std::map<std::string, const ProcessDef*> defs = {
      {world.construction()->name(), world.construction()},
  };
  ASSERT_TRUE(scheduler.Submit(world.construction()).ok());
  // design, approve, pdm, prototype, calibrate, test = 6 steps.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(scheduler.Step().ok());
  ASSERT_EQ(world.Value("test_result"), 1);
  ASSERT_EQ(world.techdocs(), 0);
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(defs).ok());
  // Forward recovery executed techdoc; nothing was compensated.
  EXPECT_EQ(world.techdocs(), 1);
  EXPECT_EQ(world.bom_entries(), 1);
  EXPECT_EQ(world.Value("drawing"), 1);
}

// Why the WAL rule matters: with an asynchronous (unflushed) log, a crash
// can lose records for activities whose effects already reached the
// subsystems — recovery then cannot know to compensate them and the store
// is left inconsistent. The library defaults to a synchronous log; this
// test documents the failure mode of weakening it.
TEST(CrashRecoveryIntegrationTest, AsynchronousLogLosesCompensations) {
  CimWorld world;
  RecoveryLog log(/*synchronous=*/false);
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(world.RegisterAll(&scheduler).ok());
  std::map<std::string, const ProcessDef*> defs = {
      {world.construction()->name(), world.construction()},
  };
  ASSERT_TRUE(scheduler.Submit(world.construction()).ok());
  // BEGIN is flushed, then the activity records stay volatile.
  log.Flush();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler.Step().ok());
  ASSERT_EQ(world.Value("drawing"), 1);
  ASSERT_EQ(world.bom_entries(), 1);
  scheduler.Crash();
  log.Crash();  // the unflushed tail is gone
  ASSERT_TRUE(scheduler.Recover(defs).ok());
  // Recovery believed the process had executed nothing: the drawing and
  // the BOM survive as orphaned effects — the documented inconsistency.
  EXPECT_EQ(world.Value("drawing"), 1);
  EXPECT_EQ(world.bom_entries(), 1);
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(1)), ProcessOutcome::kAborted);

  // Control: the synchronous default cleans up the same crash.
  CimWorld world2;
  RecoveryLog log2;  // synchronous
  TransactionalProcessScheduler scheduler2({}, &log2);
  ASSERT_TRUE(world2.RegisterAll(&scheduler2).ok());
  std::map<std::string, const ProcessDef*> defs2 = {
      {world2.construction()->name(), world2.construction()},
  };
  ASSERT_TRUE(scheduler2.Submit(world2.construction()).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler2.Step().ok());
  scheduler2.Crash();
  log2.Crash();
  ASSERT_TRUE(scheduler2.Recover(defs2).ok());
  EXPECT_EQ(world2.bom_entries(), 0);  // compensated (F-REC via approve)
}

}  // namespace
}  // namespace tpm
