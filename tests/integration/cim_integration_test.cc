// End-to-end reproduction of the §2 / Figure 1 CIM scenario: concurrent
// construction and production processes, with and without failures, under
// the PRED scheduler and the unsafe (classical concurrency-control-only)
// baseline. The production process is submitted once the BOM exists in the
// PDM (its input dependency, Figure 1).

#include <gtest/gtest.h>

#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "workload/cim_workload.h"

namespace tpm {
namespace {

struct CimRun {
  ProcessId construction;
  ProcessId production;
};

// Submits construction, advances until the BOM is written (3 steps:
// design, approve, pdm_entry), then submits production and runs to
// completion.
CimRun RunScenario(TransactionalProcessScheduler* scheduler, CimWorld* world) {
  EXPECT_TRUE(world->RegisterAll(scheduler).ok());
  auto construction = scheduler->Submit(world->construction());
  EXPECT_TRUE(construction.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(scheduler->Step().ok());
  }
  EXPECT_EQ(world->bom_entries(), 1);
  auto production = scheduler->Submit(world->production());
  EXPECT_TRUE(production.ok());
  EXPECT_TRUE(scheduler->Run().ok());
  return CimRun{*construction, *production};
}

TEST(CimIntegrationTest, FailureFreeRunCommitsBothProcesses) {
  CimWorld world;
  auto scheduler = MakePredScheduler();
  CimRun run = RunScenario(scheduler.get(), &world);
  EXPECT_EQ(scheduler->OutcomeOf(run.construction),
            ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler->OutcomeOf(run.production), ProcessOutcome::kCommitted);
  EXPECT_EQ(world.bom_entries(), 1);
  EXPECT_EQ(world.parts_produced(), 1);
  EXPECT_EQ(world.techdocs(), 1);
  EXPECT_EQ(world.reuse_docs(), 0);
  EXPECT_TRUE(world.Consistent());
  // The production pivot was deferred behind the construction process
  // (Lemma 1).
  EXPECT_GT(scheduler->stats().deferrals, 0);
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(CimIntegrationTest, TestFailureTakesReuseAlternativeAndCascades) {
  CimWorld world;
  world.ScheduleTestFailure();
  auto scheduler = MakePredScheduler();
  CimRun run = RunScenario(scheduler.get(), &world);

  // §2.1: the construction process commits via its alternative — the PDM
  // entry is compensated and the CAD drawing documented for reuse.
  EXPECT_EQ(scheduler->OutcomeOf(run.construction),
            ProcessOutcome::kCommitted);
  EXPECT_EQ(world.bom_entries(), 0);
  EXPECT_EQ(world.techdocs(), 0);
  EXPECT_EQ(world.reuse_docs(), 1);

  // §2.2: the BOM the production process read was invalidated, so all its
  // activities were compensated — crucially, nothing was produced because
  // the produce pivot had been deferred (Lemma 1).
  EXPECT_EQ(scheduler->OutcomeOf(run.production), ProcessOutcome::kAborted);
  EXPECT_EQ(world.parts_produced(), 0);
  EXPECT_TRUE(world.Consistent());
  EXPECT_GE(scheduler->stats().cascading_aborts, 1);
  EXPECT_EQ(scheduler->stats().irrecoverable_cascades, 0);
}

TEST(CimIntegrationTest, UnsafeSchedulerProducesFigure1Anomaly) {
  CimWorld world;
  world.ScheduleTestFailure();
  auto scheduler = MakeUnsafeScheduler();
  RunScenario(scheduler.get(), &world);

  // The unsafe scheduler let the production pivot commit before the test
  // outcome was known: parts exist although the BOM was invalidated —
  // exactly the inconsistency §2.2 warns about.
  EXPECT_EQ(world.bom_entries(), 0);
  EXPECT_GT(world.parts_produced(), 0);
  EXPECT_FALSE(world.Consistent());
  EXPECT_GE(scheduler->stats().irrecoverable_cascades, 1);
  // The formal criterion agrees: the emitted history is not PRED.
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(*pred);
}

TEST(CimIntegrationTest, LockingSchedulerIsSafe) {
  CimWorld world;
  world.ScheduleTestFailure();
  auto scheduler = MakeLockingScheduler();
  CimRun run = RunScenario(scheduler.get(), &world);
  EXPECT_TRUE(world.Consistent());
  EXPECT_EQ(world.parts_produced(), 0);
  (void)run;
}

TEST(CimIntegrationTest, SerialSchedulerIsSafeButSequential) {
  CimWorld world;
  world.ScheduleTestFailure();
  auto scheduler = MakeSerialScheduler();
  CimRun run = RunScenario(scheduler.get(), &world);
  EXPECT_TRUE(world.Consistent());
  // Construction (failing its test) commits via the reuse alternative;
  // production then finds no BOM and aborts before doing anything.
  EXPECT_EQ(scheduler->OutcomeOf(run.construction),
            ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler->OutcomeOf(run.production), ProcessOutcome::kAborted);
  EXPECT_EQ(world.parts_produced(), 0);
}

TEST(CimIntegrationTest, RepeatedRunsAccumulateConsistently) {
  CimWorld world;
  auto scheduler = MakePredScheduler();
  ASSERT_TRUE(world.RegisterAll(scheduler.get()).ok());
  for (int round = 0; round < 3; ++round) {
    auto c = scheduler->Submit(world.construction());
    ASSERT_TRUE(c.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler->Step().ok());
    auto p = scheduler->Submit(world.production());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(scheduler->Run().ok());
  }
  EXPECT_EQ(world.bom_entries(), 3);
  EXPECT_EQ(world.parts_produced(), 3);
  EXPECT_TRUE(world.Consistent());
}

}  // namespace
}  // namespace tpm
