// Determinism canary: every world the equivalence and replication suites
// lean on must be a pure function of its seed. Each scenario runs the
// same seeded workload twice into fresh schedulers and compares the
// history fingerprint and the full SchedulerStats fingerprint. The
// replicated shards (NMR voting) are built entirely on this property —
// if any world drifts, this test names it before the replication suite
// starts failing with opaque divergence evictions.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "runtime/sharded_runtime.h"
#include "workload/fault_workload.h"
#include "workload/process_generator.h"
#include "workload/semantic_world.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

// One run's identity: the emitted history plus every stats counter.
struct RunDigest {
  uint64_t history = 0;
  uint64_t stats = 0;

  bool operator==(const RunDigest& other) const {
    return history == other.history && stats == other.stats;
  }
};

std::ostream& operator<<(std::ostream& os, const RunDigest& d) {
  return os << "{history=" << d.history << " stats=" << d.stats << "}";
}

RunDigest DigestOf(const TransactionalProcessScheduler& scheduler) {
  RunDigest d;
  d.history = Fnv1a(scheduler.history().ToString());
  d.stats = scheduler.stats().Fingerprint();
  return d;
}

// --- KV world: seeded random process generation over raw KV subsystems.

RunDigest RunKvWorld(uint64_t seed) {
  SyntheticUniverse universe(3, 6, seed);
  ProcessShape shape;
  shape.items_per_process = 3;
  shape.nested_probability = 0.3;
  ProcessGenerator generator(&universe, shape, seed);

  TransactionalProcessScheduler scheduler{SchedulerOptions{}};
  EXPECT_TRUE(universe.RegisterAll(&scheduler).ok());

  std::vector<const ProcessDef*> defs;
  for (int i = 0; i < 24; ++i) {
    auto def = generator.Generate(StrCat("kv", i));
    if (def.ok()) defs.push_back(*def);
  }
  EXPECT_FALSE(defs.empty());
  for (const ProcessDef* def : defs) {
    auto pid = scheduler.Submit(def);
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  EXPECT_TRUE(scheduler.Run().ok());
  return DigestOf(scheduler);
}

// --- Semantic world: escrow + queue + KV under operation commutativity.

RunDigest RunSemanticWorld(uint64_t seed) {
  SemanticWorldOptions world_options;
  world_options.seed = seed;
  world_options.escrow_initial = 20;
  world_options.queue_initial_tokens = 5;
  SemanticWorld world(world_options);

  std::vector<const ProcessDef*> defs;
  int variant = 0;
  for (int i = 0; i < 4; ++i) {
    defs.push_back(world.MakeOrderProcess(StrCat("order", i), variant++));
    defs.push_back(world.MakeConsumeProcess(StrCat("consume", i), variant++));
    defs.push_back(world.MakeRefillProcess(StrCat("refill", i), variant++));
  }

  SchedulerOptions options;
  options.clock = world.clock();
  TransactionalProcessScheduler scheduler(options);
  EXPECT_TRUE(world.RegisterAll(&scheduler).ok());
  for (const ProcessDef* def : defs) {
    EXPECT_NE(def, nullptr);
    auto pid = scheduler.Submit(def);
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  EXPECT_TRUE(scheduler.Run().ok());
  return DigestOf(scheduler);
}

// --- Fault-domain world: seeded transient aborts, latency and degraded
// ◁-alternative branches. The fault draws come from seeded RNGs on the
// shared virtual clock, so two identical runs must fault identically.

RunDigest RunFaultDomainWorld(uint64_t seed) {
  FaultDomainOptions world_options;
  world_options.num_subsystems = 3;
  world_options.seed = seed;
  world_options.profile.transient_abort_probability = 0.15;
  world_options.profile.latency_ticks = 1;
  FaultDomainWorld world(world_options);

  std::vector<const ProcessDef*> defs;
  defs.push_back(world.MakeAlternativeProcess("alt0", 0, 1, 2, 0));
  defs.push_back(world.MakeAlternativeProcess("alt1", 1, 2, 0, 1));
  defs.push_back(world.MakeAlternativeProcess("alt2", 2, 0, 1, 2));
  defs.push_back(world.MakeChainProcess("chain0", 0, 3, 3));
  defs.push_back(world.MakeChainProcess("chain1", 1, 2, 4));

  SchedulerOptions options;
  options.clock = world.clock();
  options.park_timeout_ticks = 400;
  TransactionalProcessScheduler scheduler(options);
  EXPECT_TRUE(world.RegisterAll(&scheduler).ok());
  for (const ProcessDef* def : defs) {
    EXPECT_NE(def, nullptr);
    auto pid = scheduler.Submit(def);
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  EXPECT_TRUE(scheduler.Run(300000).ok());
  return DigestOf(scheduler);
}

// --- Sharded world: the full multi-threaded runtime in lockstep mode.
// Folds every shard's history into one digest; lockstep execution is the
// mode the replica groups compare vote digests under.

RunDigest RunShardedWorld(uint64_t seed) {
  constexpr int kTenants = 4;
  constexpr int kShards = 2;
  ShardedWorld world({.seed = seed, .num_tenants = kTenants});

  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < 2; ++round) {
    for (int t = 0; t < kTenants; ++t) {
      defs.push_back(world.MakeOrderProcess(
          t, StrCat("order_t", t, "_", round), round));
      defs.push_back(world.MakeConsumeProcess(
          t, StrCat("consume_t", t, "_", round), round));
      defs.push_back(world.MakeRefillProcess(
          t, StrCat("refill_t", t, "_", round), round));
    }
  }

  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  EXPECT_TRUE(world.RegisterAll(&runtime).ok());
  EXPECT_TRUE(runtime.Start().ok());
  for (const ProcessDef* def : defs) {
    EXPECT_NE(def, nullptr);
    auto ticket = runtime.Submit(def);
    EXPECT_TRUE(ticket.ok()) << ticket.status();
  }
  EXPECT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  EXPECT_TRUE(runtime.Stop().ok());

  RunDigest d;
  d.history = kFnv1aOffsetBasis;
  for (int s = 0; s < kShards; ++s) {
    d.history = FingerprintCombine(
        d.history,
        Fnv1a(runtime.shard_scheduler(s)->history().ToString()));
    d.stats = FingerprintCombine(d.stats,
                                 stats.per_shard[s].Fingerprint());
  }
  return d;
}

// Each world runs twice per seed; any drift fails loudly with the world
// named. A canary failure here means some input other than the seed leaked
// into scheduling (wall clock, address-dependent ordering, uninitialised
// state) — fix that before debugging anything built on determinism.

constexpr uint64_t kSeeds[] = {3, 11, 1999};

TEST(DeterminismCanaryTest, KvWorldIsAPureFunctionOfItsSeed) {
  for (uint64_t seed : kSeeds) {
    EXPECT_EQ(RunKvWorld(seed), RunKvWorld(seed))
        << "KV world (SyntheticUniverse + ProcessGenerator) is "
           "nondeterministic at seed "
        << seed;
  }
}

TEST(DeterminismCanaryTest, SemanticWorldIsAPureFunctionOfItsSeed) {
  for (uint64_t seed : kSeeds) {
    EXPECT_EQ(RunSemanticWorld(seed), RunSemanticWorld(seed))
        << "semantic world (escrow/queue/KV) is nondeterministic at seed "
        << seed;
  }
}

TEST(DeterminismCanaryTest, FaultDomainWorldIsAPureFunctionOfItsSeed) {
  for (uint64_t seed : kSeeds) {
    EXPECT_EQ(RunFaultDomainWorld(seed), RunFaultDomainWorld(seed))
        << "fault-domain world (seeded faults + alternatives) is "
           "nondeterministic at seed "
        << seed;
  }
}

TEST(DeterminismCanaryTest, ShardedWorldIsAPureFunctionOfItsSeed) {
  for (uint64_t seed : kSeeds) {
    EXPECT_EQ(RunShardedWorld(seed), RunShardedWorld(seed))
        << "sharded world (lockstep multi-threaded runtime) is "
           "nondeterministic at seed "
        << seed;
  }
}

// Different seeds must actually produce different runs — otherwise the
// canary above is vacuously green (e.g. a world ignoring its seed).
TEST(DeterminismCanaryTest, SeedsActuallySteerTheWorlds) {
  EXPECT_NE(RunKvWorld(3), RunKvWorld(1999)) << "KV world ignores its seed";
  EXPECT_NE(RunFaultDomainWorld(3).history,
            RunFaultDomainWorld(1999).history)
      << "fault-domain world ignores its seed";
}

}  // namespace
}  // namespace tpm
