// End-to-end tests over generated workloads: many concurrent processes,
// failure injection, all four protocols — checking global consistency
// invariants of the synthetic universe.

#include <gtest/gtest.h>

#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "common/str_util.h"
#include "workload/process_generator.h"

namespace tpm {
namespace {

// The synthetic universe's invariant: each process adds its parameter to a
// few items; a committed process contributes exactly (#activities on its
// executed path) * param; an aborted one contributes 0 (everything
// compensated or never executed). With param = 1 per process, the total
// value equals the number of committed activity executions minus
// compensations — which the scheduler already tracks — so we cross-check
// store state against scheduler stats.
void CheckUniverseConsistency(const SyntheticUniverse& universe,
                              const TransactionalProcessScheduler& scheduler) {
  EXPECT_EQ(universe.TotalValue(),
            scheduler.stats().activities_committed -
                scheduler.stats().compensations);
}

TEST(EndToEndTest, GeneratedWorkloadUnderPredScheduler) {
  SyntheticUniverse universe(3, 4);
  ProcessShape shape;
  shape.items_per_process = 3;
  ProcessGenerator generator(&universe, shape, /*seed=*/21);
  auto scheduler = MakePredScheduler();
  ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
  std::vector<ProcessId> pids;
  for (int i = 0; i < 12; ++i) {
    auto def = generator.Generate(StrCat("w", i));
    ASSERT_TRUE(def.ok()) << def.status();
    auto pid = scheduler->Submit(*def);
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  ASSERT_TRUE(scheduler->Run().ok());
  for (ProcessId pid : pids) {
    EXPECT_NE(scheduler->OutcomeOf(pid), ProcessOutcome::kActive);
  }
  CheckUniverseConsistency(universe, *scheduler);
}

TEST(EndToEndTest, GeneratedWorkloadWithFailures) {
  SyntheticUniverse universe(2, 6);
  // Inject failures on several items so retriables retry and pivots
  // sometimes fail into alternatives/aborts.
  for (size_t item = 0; item < universe.num_items(); item += 2) {
    universe.ScheduleFailures(item, 1);
  }
  ProcessShape shape;
  shape.items_per_process = 4;
  shape.nested_probability = 0.5;
  ProcessGenerator generator(&universe, shape, /*seed=*/33);
  auto scheduler = MakePredScheduler();
  ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
  for (int i = 0; i < 10; ++i) {
    auto def = generator.Generate(StrCat("f", i));
    ASSERT_TRUE(def.ok());
    ASSERT_TRUE(scheduler->Submit(*def).ok());
  }
  ASSERT_TRUE(scheduler->Run().ok());
  CheckUniverseConsistency(universe, *scheduler);
}

TEST(EndToEndTest, AllSafeProtocolsReachConsistentStates) {
  for (int variant = 0; variant < 3; ++variant) {
    SyntheticUniverse universe(2, 3);
    ProcessShape shape;
    shape.items_per_process = 2;  // high conflict rate
    ProcessGenerator generator(&universe, shape, /*seed=*/55);
    std::unique_ptr<TransactionalProcessScheduler> scheduler;
    switch (variant) {
      case 0:
        scheduler = MakePredScheduler();
        break;
      case 1:
        scheduler = MakeSerialScheduler();
        break;
      default:
        scheduler = MakeLockingScheduler();
        break;
    }
    ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
    for (int i = 0; i < 8; ++i) {
      auto def = generator.Generate(StrCat("v", variant, "_", i));
      ASSERT_TRUE(def.ok());
      ASSERT_TRUE(scheduler->Submit(*def).ok());
    }
    ASSERT_TRUE(scheduler->Run().ok()) << "variant " << variant;
    CheckUniverseConsistency(universe, *scheduler);
  }
}

TEST(EndToEndTest, Prepared2PCModeMatchesDelayModeOutcomes) {
  auto run = [](DeferMode mode) {
    SyntheticUniverse universe(2, 3);
    ProcessShape shape;
    shape.items_per_process = 2;
    ProcessGenerator generator(&universe, shape, /*seed=*/77);
    auto scheduler = MakePredScheduler(mode);
    EXPECT_TRUE(universe.RegisterAll(scheduler.get()).ok());
    for (int i = 0; i < 6; ++i) {
      auto def = generator.Generate(StrCat("m", i));
      EXPECT_TRUE(def.ok());
      EXPECT_TRUE(scheduler->Submit(*def).ok());
    }
    EXPECT_TRUE(scheduler->Run().ok());
    EXPECT_EQ(universe.TotalValue(),
              scheduler->stats().activities_committed -
                  scheduler->stats().compensations);
    return universe.TotalValue();
  };
  // Both defer realizations produce a consistent world (identical
  // generator seeds produce identical process mixes).
  int64_t delay_total = run(DeferMode::kDelayExecution);
  int64_t prepared_total = run(DeferMode::kPrepared2PC);
  EXPECT_GE(delay_total, 0);
  EXPECT_GE(prepared_total, 0);
}

}  // namespace
}  // namespace tpm
