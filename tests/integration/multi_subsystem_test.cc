// Multi-subsystem integration: one process spanning several subsystems,
// with Lemma 1's deferred commits realized as prepared branches in TWO
// different subsystems and released atomically by one 2PC round.

#include <gtest/gtest.h>

#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {
namespace {

class MultiSubsystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        alpha_.RegisterService(MakeAddService(ServiceId(1), "a", "a")).ok());
    ASSERT_TRUE(
        alpha_.RegisterService(MakeSubService(ServiceId(2), "a-", "a")).ok());
    ASSERT_TRUE(
        alpha_.RegisterService(MakeAddService(ServiceId(3), "w", "w")).ok());
    ASSERT_TRUE(
        alpha_.RegisterService(MakeSubService(ServiceId(4), "w-", "w")).ok());
    ASSERT_TRUE(
        alpha_.RegisterService(MakeAddService(ServiceId(5), "x", "x")).ok());
    ASSERT_TRUE(
        alpha_.RegisterService(MakeAddService(ServiceId(6), "y1", "y1")).ok());
    ASSERT_TRUE(
        beta_.RegisterService(MakeAddService(ServiceId(7), "y2", "y2")).ok());
    ASSERT_TRUE(
        beta_.RegisterService(MakeAddService(ServiceId(8), "pv", "pv")).ok());
  }

  KvSubsystem alpha_{SubsystemId(1), "alpha"};
  KvSubsystem beta_{SubsystemId(2), "beta"};
};

TEST_F(MultiSubsystemTest, AtomicCrossSubsystemRelease) {
  // P1: a long-lived process on service 1.
  ProcessDef p1("p1");
  ActivityId a1 = p1.AddActivity("a1", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(2));
  ActivityId a2 = p1.AddActivity("a2", ActivityKind::kCompensatable,
                                 ServiceId(3), ServiceId(4));
  ActivityId a3 = p1.AddActivity("a3", ActivityKind::kPivot, ServiceId(5));
  ASSERT_TRUE(p1.AddEdge(a1, a2).ok());
  ASSERT_TRUE(p1.AddEdge(a2, a3).ok());
  ASSERT_TRUE(p1.Validate().ok());

  // P2: pivot then two PARALLEL retriables, one per subsystem, both
  // conflicting (by declaration) with P1's first service.
  ProcessDef p2("p2");
  ActivityId piv = p2.AddActivity("piv", ActivityKind::kPivot, ServiceId(8));
  ActivityId y1 = p2.AddActivity("y1", ActivityKind::kRetriable,
                                 ServiceId(6));
  ActivityId y2 = p2.AddActivity("y2", ActivityKind::kRetriable,
                                 ServiceId(7));
  ASSERT_TRUE(p2.AddEdge(piv, y1).ok());
  ASSERT_TRUE(p2.AddEdge(piv, y2).ok());
  ASSERT_TRUE(p2.Validate().ok());
  ASSERT_TRUE(ValidateWellFormedFlex(p2).ok());

  SchedulerOptions options;
  options.defer_mode = DeferMode::kPrepared2PC;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(&alpha_).ok());
  ASSERT_TRUE(scheduler.RegisterSubsystem(&beta_).ok());
  scheduler.AddConflict(ServiceId(1), ServiceId(6));
  scheduler.AddConflict(ServiceId(1), ServiceId(7));

  auto pid1 = scheduler.Submit(&p1);
  auto pid2 = scheduler.Submit(&p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());

  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kCommitted);
  // Both parallel retriables were prepared (deferred commits) and landed.
  EXPECT_GE(scheduler.stats().prepared_branches, 2);
  EXPECT_EQ(alpha_.store().Get("y1"), 1);
  EXPECT_EQ(beta_.store().Get("y2"), 1);

  // In the emitted history both appear after C1 (Lemma 1), and the
  // schedule is PRED.
  const auto& events = scheduler.history().events();
  size_t c1 = SIZE_MAX, y1_pos = SIZE_MAX, y2_pos = SIZE_MAX;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCommit && events[i].process == *pid1) {
      c1 = i;
    }
    if (events[i].type == EventType::kActivity &&
        events[i].act.process == *pid2 && !events[i].aborted_invocation) {
      if (events[i].act.activity == y1) y1_pos = i;
      if (events[i].act.activity == y2) y2_pos = i;
    }
  }
  ASSERT_NE(c1, SIZE_MAX);
  ASSERT_NE(y1_pos, SIZE_MAX);
  ASSERT_NE(y2_pos, SIZE_MAX);
  EXPECT_LT(c1, y1_pos);
  EXPECT_LT(c1, y2_pos);
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST_F(MultiSubsystemTest, ServicesRouteToTheirSubsystems) {
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(&alpha_).ok());
  ASSERT_TRUE(scheduler.RegisterSubsystem(&beta_).ok());
  ProcessDef def("both");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(2));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(7));
  ASSERT_TRUE(def.AddEdge(a, b).ok());
  ASSERT_TRUE(def.Validate().ok());
  ASSERT_TRUE(scheduler.Submit(&def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(alpha_.store().Get("a"), 1);
  EXPECT_EQ(beta_.store().Get("y2"), 1);  // service 7 writes beta's key
}

}  // namespace
}  // namespace tpm
