// Deterministic fault-injection sweep (the crash-point harness): a crash is
// injected at every log append/flush/compaction site a workload reaches, in
// synchronous and asynchronous logging mode and over the in-memory and the
// file-backed storage backend; transient subsystem failures of retriable
// activities run underneath. After every injected crash the scheduler must
// recover to a state whose completed schedule is still prefix-reducible
// (PRED, Def. 10) and process-recoverable (Proc-REC, Def. 11), no key-value
// entry may ever go negative (a compensation is never applied twice), and
// the scheduler must remain operational.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/scheduler.h"
#include "core/schedule.h"
#include "log/file_backend.h"
#include "testing/fault_injector.h"
#include "testing/mini_world.h"
#include "workload/fault_workload.h"
#include "workload/semantic_world.h"

namespace tpm {
namespace {

using testing::FaultInjector;
using testing::MiniWorld;
using testing::WriteFailingSeed;

struct ScenarioDefs {
  std::vector<const ProcessDef*> workload;
  /// A one-activity process submitted after recovery to prove the
  /// scheduler is still operational (built up front so its services are
  /// registered with the scheduler).
  const ProcessDef* probe = nullptr;
};

struct Scenario {
  std::string name;
  std::function<ScenarioDefs(MiniWorld*)> build;
};

struct Flavor {
  std::string name;
  bool synchronous;
  bool file_backed;
};

/// Workloads chosen to reach every log site: pivot failures force group
/// aborts (COMP records and compensation gates), an alternative branch
/// exercises subtree compensation, cross-process conflicts force cascading
/// aborts, and scripted transient failures of retriable activities run
/// against the subsystem retry policy.
std::vector<Scenario> Scenarios() {
  return {
      {"cascade",
       [](MiniWorld* w) {
         ScenarioDefs d;
         d.workload.push_back(w->MakeChain("p1", "c:a c:b p:x r:y"));
         d.workload.push_back(w->MakeChain("p2", "c:b r:y"));
         d.probe = w->MakeChain("probe", "c:a");
         // The pivot fails once: p1 aborts, compensating b and a; p2's
         // conflicting work on b is cascade-aborted first (Lemma 2).
         w->subsystem()->ScheduleFailures(w->AddServiceFor("x"), 1);
         // Transient failures of the retriable activity; the subsystem
         // masks one per invocation, the rest surface as Def. 3 retries.
         w->subsystem()->ScheduleFailures(w->AddServiceFor("y"), 3);
         w->subsystem()->SetRetryPolicy(
             RetryPolicy{/*max_attempts=*/2, /*backoff_base_ticks=*/1});
         return d;
       }},
      {"branching",
       [](MiniWorld* w) {
         ScenarioDefs d;
         d.workload.push_back(
             w->MakeBranching("b1", "pre", "piv", "mid", "deep", "alt"));
         d.workload.push_back(w->MakeChain("b2", "c:mid r:alt"));
         d.probe = w->MakeChain("probe", "c:pre");
         // The deep pivot fails once: b1 compensates mid and switches to
         // its all-retriable alternative branch.
         w->subsystem()->ScheduleFailures(w->AddServiceFor("deep"), 1);
         w->subsystem()->ScheduleFailures(w->AddServiceFor("alt"), 2);
         w->subsystem()->SetRetryPolicy(
             RetryPolicy{/*max_attempts=*/2, /*backoff_base_ticks=*/0});
         return d;
       }},
  };
}

std::string SweepLogPath(const std::string& tag) {
  return ::testing::TempDir() + "tpm_sweep_" + tag + "_" + StrCat(::getpid()) +
         ".log";
}

Result<std::unique_ptr<RecoveryLog>> MakeLog(const Flavor& flavor,
                                             const std::string& path) {
  if (!flavor.file_backed) {
    return std::make_unique<RecoveryLog>(flavor.synchronous);
  }
  TPM_ASSIGN_OR_RETURN(std::unique_ptr<FileStorageBackend> backend,
                       FileStorageBackend::Open(path));
  return std::make_unique<RecoveryLog>(std::move(backend),
                                       flavor.synchronous);
}

/// Submits the workload, takes a mid-run checkpoint (so the sweep also
/// reaches the compaction sites), and runs to completion. An injected log
/// crash surfaces as kUnavailable from Submit, Checkpoint or Run.
Status DriveWorkload(TransactionalProcessScheduler* scheduler,
                     const std::vector<const ProcessDef*>& defs) {
  for (const ProcessDef* def : defs) {
    if (def == nullptr) {
      return Status::Internal("scenario def failed to build");
    }
    Result<ProcessId> pid = scheduler->Submit(def);
    if (!pid.ok()) return pid.status();
  }
  bool more = true;
  for (int i = 0; i < 4 && more; ++i) {
    TPM_ASSIGN_OR_RETURN(more, scheduler->Step());
  }
  if (more) {
    TPM_RETURN_IF_ERROR(scheduler->Checkpoint());
  }
  return scheduler->Run(200000);
}

/// All correctness criteria asserted after each injected crash + recovery.
/// Returns a failure description, empty on success.
std::string CheckInvariants(TransactionalProcessScheduler* scheduler,
                            MiniWorld* world, const ProcessDef* probe) {
  std::string failures;
  Result<bool> pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  if (!pred.ok()) {
    failures += " PRED-check-error:" + pred.status().ToString();
  } else if (!*pred) {
    failures += " not-PRED:" + scheduler->history().ToString();
  }
  if (!IsProcessRecoverable(scheduler->history(),
                            scheduler->conflict_spec())) {
    failures += " not-ProcREC:" + scheduler->history().ToString();
  }
  for (const auto& [key, value] : world->subsystem()->store().Snapshot()) {
    if (value < 0) {
      failures += StrCat(" negative-value:", key, "=", value);
    }
  }
  // The scheduler must still schedule: run the probe process end to end.
  Result<ProcessId> pid = scheduler->Submit(probe);
  if (!pid.ok()) {
    failures += " probe-submit:" + pid.status().ToString();
  } else {
    Status run = scheduler->Run(200000);
    if (!run.ok()) {
      failures += " probe-run:" + run.ToString();
    } else if (scheduler->OutcomeOf(*pid) != ProcessOutcome::kCommitted) {
      failures += " probe-not-committed";
    }
  }
  return failures;
}

class FaultInjectionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

void RunSweep(const Scenario& scenario, const Flavor& flavor) {
  const std::string tag = scenario.name + "_" + flavor.name;
  const std::string path = SweepLogPath(tag);

  // Dry run: count the crash-point hits T of the undisturbed workload.
  FaultInjector injector;
  int64_t total_hits = 0;
  {
    std::remove(path.c_str());
    MiniWorld world;
    ScenarioDefs defs = scenario.build(&world);
    auto log = MakeLog(flavor, path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    (*log)->wal()->SetCrashPointListener(&injector);
    TransactionalProcessScheduler scheduler({}, log->get());
    ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
    Status run = DriveWorkload(&scheduler, defs.workload);
    ASSERT_TRUE(run.ok()) << tag << ": " << run.ToString();
    total_hits = injector.hits();
  }
  ASSERT_GT(total_hits, 0) << tag;

  // The sweep: crash at hit k, recover, assert the criteria.
  for (int64_t k = 1; k <= total_hits; ++k) {
    std::remove(path.c_str());
    MiniWorld world;
    ScenarioDefs defs = scenario.build(&world);
    ASSERT_NE(defs.probe, nullptr);
    auto log_or = MakeLog(flavor, path);
    ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
    std::unique_ptr<RecoveryLog> log = std::move(*log_or);
    log->wal()->SetCrashPointListener(&injector);
    injector.ArmAt(k);
    injector.ResetCounts();

    auto scheduler = std::make_unique<TransactionalProcessScheduler>(
        SchedulerOptions{}, log.get());
    ASSERT_TRUE(scheduler->RegisterSubsystem(world.subsystem()).ok());

    Status run = DriveWorkload(scheduler.get(), defs.workload);
    ASSERT_TRUE(injector.triggered())
        << tag << " k=" << k << " (deterministic rerun missed the hit): "
        << run.ToString();
    ASSERT_TRUE(run.IsUnavailable())
        << tag << " k=" << k << ": " << run.ToString();
    const std::string site = injector.triggered_site();

    // Crash-and-restart. The in-memory flavor restarts the log component
    // in place; the file flavor kills scheduler and log and reopens the
    // on-disk file, as a restarted process would (the subsystems, being
    // durable, survive either way).
    Status recovered;
    if (flavor.file_backed) {
      scheduler.reset();
      log.reset();
      auto reopened = MakeLog(flavor, path);
      ASSERT_TRUE(reopened.ok())
          << tag << " k=" << k << " site=" << site << ": "
          << reopened.status().ToString();
      log = std::move(*reopened);
      scheduler = std::make_unique<TransactionalProcessScheduler>(
          SchedulerOptions{}, log.get());
      ASSERT_TRUE(scheduler->RegisterSubsystem(world.subsystem()).ok());
    } else {
      log->Crash();
    }
    recovered = scheduler->Recover(world.DefsByName());
    std::string failures;
    if (!recovered.ok()) {
      failures = " recover:" + recovered.ToString();
    } else {
      failures = CheckInvariants(scheduler.get(), &world, defs.probe);
    }
    if (!failures.empty()) {
      std::string seed_file = WriteFailingSeed(tag, k, site, failures);
      FAIL() << tag << " crash at hit " << k << " (site " << site
             << "):" << failures << "\n(reproducer appended to " << seed_file
             << ")";
    }
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionSweep, MemorySynchronous) {
  for (const Scenario& scenario : Scenarios()) {
    RunSweep(scenario, Flavor{"mem_sync", /*synchronous=*/true,
                              /*file_backed=*/false});
  }
}

TEST(FaultInjectionSweep, MemoryAsynchronous) {
  for (const Scenario& scenario : Scenarios()) {
    RunSweep(scenario, Flavor{"mem_async", /*synchronous=*/false,
                              /*file_backed=*/false});
  }
}

TEST(FaultInjectionSweep, FileSynchronous) {
  for (const Scenario& scenario : Scenarios()) {
    RunSweep(scenario, Flavor{"file_sync", /*synchronous=*/true,
                              /*file_backed=*/true});
  }
}

TEST(FaultInjectionSweep, FileAsynchronous) {
  for (const Scenario& scenario : Scenarios()) {
    RunSweep(scenario, Flavor{"file_async", /*synchronous=*/false,
                              /*file_backed=*/true});
  }
}

// ---------------------------------------------------------------------------
// Kill-restart determinism: a file-backed scheduler killed after the
// workload completed and restarted from the on-disk log reaches the same
// state fingerprint (process outcomes + subsystem stores) as the run that
// was never interrupted.

uint64_t StateFingerprint(TransactionalProcessScheduler* scheduler,
                          MiniWorld* world, int64_t num_pids) {
  uint64_t hash = 1469598103934665603ULL;
  for (int64_t p = 1; p <= num_pids; ++p) {
    hash = Fnv1a(hash, StrCat("P", p, "=",
                              static_cast<int>(scheduler->OutcomeOf(
                                  ProcessId(p)))));
  }
  for (const auto& [key, value] : world->subsystem()->store().Snapshot()) {
    hash = Fnv1a(hash, StrCat(key, "=", value));
  }
  return hash;
}

TEST(FaultInjectionSweep, FileBackedRestartMatchesUncrashedFingerprint) {
  for (const Scenario& scenario : Scenarios()) {
    // Reference: the run that is never interrupted.
    uint64_t reference = 0;
    int64_t num_pids = 0;
    {
      MiniWorld world;
      ScenarioDefs defs = scenario.build(&world);
      RecoveryLog log;
      TransactionalProcessScheduler scheduler({}, &log);
      ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
      ASSERT_TRUE(DriveWorkload(&scheduler, defs.workload).ok());
      num_pids = static_cast<int64_t>(defs.workload.size());
      reference = StateFingerprint(&scheduler, &world, num_pids);
    }

    // Same workload over the file backend; kill everything but the world
    // (the subsystems are the durable periphery), restart from disk.
    const std::string path = SweepLogPath(scenario.name + "_fingerprint");
    std::remove(path.c_str());
    MiniWorld world;
    ScenarioDefs defs = scenario.build(&world);
    {
      auto backend = FileStorageBackend::Open(path);
      ASSERT_TRUE(backend.ok());
      RecoveryLog log(std::move(*backend));
      TransactionalProcessScheduler scheduler({}, &log);
      ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
      ASSERT_TRUE(DriveWorkload(&scheduler, defs.workload).ok());
    }  // kill: scheduler and log destroyed, only the file remains
    auto backend = FileStorageBackend::Open(path);
    ASSERT_TRUE(backend.ok());
    RecoveryLog log(std::move(*backend));
    TransactionalProcessScheduler scheduler({}, &log);
    ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
    ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok()) << scenario.name;
    EXPECT_EQ(StateFingerprint(&scheduler, &world, num_pids), reference)
        << scenario.name;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Combined WAL + subsystem sweep: ONE injector is attached to both the
// log's crash points (wal/*) and the fault layer's invocation sites
// (subsystem/invoke, subsystem/prepare, subsystem/commit), and armed at
// every hit the workload reaches. A hit at a wal site crashes the log —
// recover and assert as above. A hit at a subsystem site is absorbed by
// the failure-domain machinery (a one-shot aborted invocation, or a lost
// phase-two decision the coordinator re-drives) — the run must complete
// on its own, with the same invariants. Runs under kPrepared2PC so the
// deferral produces prepared branches and the commit site is reached.

struct CombinedWorldRun {
  std::unique_ptr<FaultDomainWorld> world;
  std::vector<std::unique_ptr<ProcessDef>> owned_defs;
  std::vector<const ProcessDef*> workload;
  const ProcessDef* probe = nullptr;

  std::map<std::string, const ProcessDef*> DefsByName() const {
    std::map<std::string, const ProcessDef*> defs = world->DefsByName();
    for (const auto& def : owned_defs) defs[def->name()] = def.get();
    return defs;
  }
};

CombinedWorldRun BuildCombinedWorld(FaultInjector* injector) {
  CombinedWorldRun r;
  FaultDomainOptions options;
  options.num_subsystems = 2;
  options.seed = 5;
  r.world = std::make_unique<FaultDomainWorld>(options);
  for (int i = 0; i < r.world->num_subsystems(); ++i) {
    r.world->faulty(i)->SetCrashPointListener(injector);
  }
  // The cross-process conflict lives on key S, touched only by retriable
  // activities of processes that cannot abort past it: q1 is all-retriable
  // (assured commit), q2's retriable consumer of S runs while q1 is still
  // active — an ActiveBlocker, so under kPrepared2PC the Lemma 1 deferral
  // turns it into a prepared branch whose release drives CommitPrepared
  // through the subsystem/commit site. (Aborting processes must not share
  // keys with committing ones here: the Proc-REC check is syntactic and
  // does not reduce away compensated work.)
  auto finish = [&r](std::unique_ptr<ProcessDef> def, bool edges_ok) {
    const bool ok = edges_ok && def->Validate().ok() &&
                    ValidateWellFormedFlex(*def).ok();
    r.workload.push_back(ok ? def.get() : nullptr);
    r.owned_defs.push_back(std::move(def));
  };
  auto q1 = std::make_unique<ProcessDef>("q1");
  {
    ActivityId r1 = q1->AddActivity("r1", ActivityKind::kRetriable,
                                    r.world->AddServiceOn(0, "S"));
    ActivityId r2 = q1->AddActivity("r2", ActivityKind::kRetriable,
                                    r.world->AddServiceOn(0, "k1a"));
    ActivityId r3 = q1->AddActivity("r3", ActivityKind::kRetriable,
                                    r.world->AddServiceOn(0, "k1b"));
    const bool edges_ok =
        q1->AddEdge(r1, r2).ok() && q1->AddEdge(r2, r3).ok();
    finish(std::move(q1), edges_ok);
  }
  auto q2 = std::make_unique<ProcessDef>("q2");
  {
    ActivityId c1 = q2->AddActivity("c1", ActivityKind::kCompensatable,
                                    r.world->AddServiceOn(0, "k2a"),
                                    r.world->SubServiceOn(0, "k2a"));
    ActivityId rr = q2->AddActivity("r", ActivityKind::kRetriable,
                                    r.world->AddServiceOn(0, "S"));
    const bool edges_ok = q2->AddEdge(c1, rr).ok();
    finish(std::move(q2), edges_ok);
  }
  // Alternative-bearing process on disjoint keys: exercises compensation,
  // alternative switching and abort paths without clouding the S-conflict.
  r.workload.push_back(r.world->MakeAlternativeProcess("q3", 0, 1, 0, 7));
  r.probe = r.world->MakeChainProcess("probe", 1, 1, 8);
  return r;
}

SchedulerOptions CombinedSchedulerOptions(FaultDomainWorld* world) {
  SchedulerOptions options;
  options.defer_mode = DeferMode::kPrepared2PC;
  options.clock = world->clock();
  return options;
}

std::string CombinedInvariants(TransactionalProcessScheduler* scheduler,
                               FaultDomainWorld* world,
                               const ProcessDef* probe) {
  std::string failures;
  Result<bool> pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  if (!pred.ok()) {
    failures += " PRED-check-error:" + pred.status().ToString();
  } else if (!*pred) {
    failures += " not-PRED:" + scheduler->history().ToString();
  }
  if (!IsProcessRecoverable(scheduler->history(),
                            scheduler->conflict_spec())) {
    failures += " not-ProcREC:" + scheduler->history().ToString();
  }
  if (world->AnyNegativeValue()) failures += " negative-kv-value";
  Result<ProcessId> pid = scheduler->Submit(probe);
  if (!pid.ok()) {
    failures += " probe-submit:" + pid.status().ToString();
  } else {
    Status run = scheduler->Run(200000);
    if (!run.ok()) {
      failures += " probe-run:" + run.ToString();
    } else if (scheduler->OutcomeOf(*pid) != ProcessOutcome::kCommitted) {
      failures += " probe-not-committed";
    }
  }
  return failures;
}

void RunCombinedSweep(bool file_backed) {
  const std::string tag =
      std::string("combined_") + (file_backed ? "file" : "mem");
  const std::string path = SweepLogPath(tag);
  Flavor flavor{tag, /*synchronous=*/true, file_backed};
  FaultInjector injector;

  // Dry run: count hits across BOTH fault domains.
  int64_t total_hits = 0;
  {
    std::remove(path.c_str());
    CombinedWorldRun r = BuildCombinedWorld(&injector);
    auto log = MakeLog(flavor, path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    (*log)->wal()->SetCrashPointListener(&injector);
    TransactionalProcessScheduler scheduler(
        CombinedSchedulerOptions(r.world.get()), log->get());
    ASSERT_TRUE(r.world->RegisterAll(&scheduler).ok());
    Status run = DriveWorkload(&scheduler, r.workload);
    ASSERT_TRUE(run.ok()) << tag << ": " << run.ToString();
    total_hits = injector.hits();
    // The sweep really spans both domains, including phase two.
    EXPECT_GT(injector.site_hits().count("subsystem/invoke"), 0u) << tag;
    EXPECT_GT(injector.site_hits().count("subsystem/prepare"), 0u) << tag;
    EXPECT_GT(injector.site_hits().count("subsystem/commit"), 0u) << tag;
  }
  ASSERT_GT(total_hits, 0) << tag;

  for (int64_t k = 1; k <= total_hits; ++k) {
    std::remove(path.c_str());
    FaultInjector armed;
    CombinedWorldRun r = BuildCombinedWorld(&armed);
    ASSERT_NE(r.probe, nullptr);
    auto log_or = MakeLog(flavor, path);
    ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
    std::unique_ptr<RecoveryLog> log = std::move(*log_or);
    log->wal()->SetCrashPointListener(&armed);
    armed.ArmAt(k);

    auto scheduler = std::make_unique<TransactionalProcessScheduler>(
        CombinedSchedulerOptions(r.world.get()), log.get());
    ASSERT_TRUE(r.world->RegisterAll(scheduler.get()).ok());
    Status run = DriveWorkload(scheduler.get(), r.workload);
    ASSERT_TRUE(armed.triggered())
        << tag << " k=" << k << " (deterministic rerun missed the hit): "
        << run.ToString();
    const std::string site = armed.triggered_site();

    std::string failures;
    if (site.rfind("subsystem/", 0) == 0) {
      // Absorbed by the failure-domain machinery: no crash, the run
      // completes and every process reached a terminal state.
      if (!run.ok()) {
        failures += " absorbed-run:" + run.ToString();
      }
      for (int p = 1; p <= static_cast<int>(r.workload.size()); ++p) {
        if (scheduler->OutcomeOf(ProcessId(p)) == ProcessOutcome::kActive) {
          failures += StrCat(" non-terminal:P", p);
        }
      }
      if (failures.empty()) {
        failures = CombinedInvariants(scheduler.get(), r.world.get(), r.probe);
      }
    } else {
      // A log crash: recover, then assert.
      if (!run.IsUnavailable()) {
        failures += " expected-crash:" + run.ToString();
      } else {
        if (flavor.file_backed) {
          scheduler.reset();
          log.reset();
          auto reopened = MakeLog(flavor, path);
          ASSERT_TRUE(reopened.ok())
              << tag << " k=" << k << ": " << reopened.status().ToString();
          log = std::move(*reopened);
          log->wal()->SetCrashPointListener(&armed);
          armed.ArmAt(0);
          scheduler = std::make_unique<TransactionalProcessScheduler>(
              CombinedSchedulerOptions(r.world.get()), log.get());
          ASSERT_TRUE(r.world->RegisterAll(scheduler.get()).ok());
        } else {
          armed.ArmAt(0);
          log->Crash();
        }
        Status recovered = scheduler->Recover(r.DefsByName());
        if (!recovered.ok()) {
          failures = " recover:" + recovered.ToString();
        } else {
          failures =
              CombinedInvariants(scheduler.get(), r.world.get(), r.probe);
        }
      }
    }
    if (!failures.empty()) {
      std::string seed_file = WriteFailingSeed(tag, k, site, failures);
      FAIL() << tag << " fault at hit " << k << " (site " << site
             << "):" << failures << "\n(reproducer appended to " << seed_file
             << ")";
    }
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionSweep, CombinedWalAndSubsystemMemory) {
  RunCombinedSweep(/*file_backed=*/false);
}

TEST(FaultInjectionSweep, CombinedWalAndSubsystemFile) {
  RunCombinedSweep(/*file_backed=*/true);
}

// ---------------------------------------------------------------------------
// Semantic-ADT WAL sweep: the mixed SemanticWorld (escrow counters + token
// queue + KV behind the full failure-domain stack, fault-free so the hit
// sequence is deterministic) is driven through every WAL crash point it
// reaches, in both conflict modes — op commutativity tables on (adt) and
// reduced to read/write conflicts (rw) — under kPrepared2PC so the sweep
// also crashes between the prepare and commit of the ADTs' local
// transactions. After every crash + recovery: PRED on the full history,
// Proc-REC on the committed projection (the workload shares hot ADT state,
// see CommittedProjection in core/schedule.h), the combined ADT invariants (escrow safety
// envelope, queue token consistency, no negative KV value), and a fresh
// order probe must still run to commit.

struct SemanticRun {
  std::unique_ptr<SemanticWorld> world;
  std::vector<const ProcessDef*> workload;
  const ProcessDef* probe = nullptr;
};

SemanticRun BuildSemanticRun() {
  SemanticRun r;
  SemanticWorldOptions options;
  options.seed = 11;
  options.escrow_initial = 40;
  // More seeded tokens than committed dequeues (one consumer): an aborting
  // producer's fresh token can never have reached the queue head, so its
  // remove-compensation always finds the token it enqueued.
  options.queue_initial_tokens = 6;
  r.world = std::make_unique<SemanticWorld>(options);
  for (int i = 0; i < 3; ++i) {
    r.workload.push_back(r.world->MakeOrderProcess(StrCat("order", i), i));
  }
  r.workload.push_back(r.world->MakeConsumeProcess("consume", 3));
  r.workload.push_back(r.world->MakeRefillProcess("refill", 4));
  r.probe = r.world->MakeOrderProcess("probe", 9);
  return r;
}

SchedulerOptions SemanticSchedulerOptions(SemanticWorld* world, bool use_op) {
  SchedulerOptions options;
  options.defer_mode = DeferMode::kPrepared2PC;
  options.clock = world->clock();
  options.use_op_commutativity = use_op;
  return options;
}

std::string SemanticInvariants(TransactionalProcessScheduler* scheduler,
                               SemanticWorld* world, const ProcessDef* probe) {
  std::string failures;
  Result<bool> pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  if (!pred.ok()) {
    failures += " PRED-check-error:" + pred.status().ToString();
  } else if (!*pred) {
    failures += " not-PRED:" + scheduler->history().ToString();
  }
  if (!IsProcessRecoverable(CommittedProjection(scheduler->history()),
                            scheduler->conflict_spec())) {
    failures += " not-ProcREC:" + scheduler->history().ToString();
  }
  Status adt = world->CheckAdtInvariants();
  if (!adt.ok()) failures += " adt:" + adt.ToString();
  Result<ProcessId> pid = scheduler->Submit(probe);
  if (!pid.ok()) {
    failures += " probe-submit:" + pid.status().ToString();
  } else {
    Status run = scheduler->Run(200000);
    if (!run.ok()) {
      failures += " probe-run:" + run.ToString();
    } else if (scheduler->OutcomeOf(*pid) != ProcessOutcome::kCommitted) {
      failures += " probe-not-committed";
    }
  }
  return failures;
}

void RunSemanticSweep(bool file_backed, bool use_op) {
  const std::string tag = StrCat("semantic_", file_backed ? "file" : "mem",
                                 use_op ? "_adt" : "_rw");
  const std::string path = SweepLogPath(tag);
  Flavor flavor{tag, /*synchronous=*/true, file_backed};

  // Dry run: count the crash-point hits of the undisturbed workload.
  FaultInjector injector;
  int64_t total_hits = 0;
  {
    std::remove(path.c_str());
    SemanticRun r = BuildSemanticRun();
    auto log = MakeLog(flavor, path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    (*log)->wal()->SetCrashPointListener(&injector);
    TransactionalProcessScheduler scheduler(
        SemanticSchedulerOptions(r.world.get(), use_op), log->get());
    ASSERT_TRUE(r.world->RegisterAll(&scheduler).ok());
    Status run = DriveWorkload(&scheduler, r.workload);
    ASSERT_TRUE(run.ok()) << tag << ": " << run.ToString();
    total_hits = injector.hits();
  }
  ASSERT_GT(total_hits, 0) << tag;

  for (int64_t k = 1; k <= total_hits; ++k) {
    std::remove(path.c_str());
    FaultInjector armed;
    SemanticRun r = BuildSemanticRun();
    ASSERT_NE(r.probe, nullptr);
    auto log_or = MakeLog(flavor, path);
    ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
    std::unique_ptr<RecoveryLog> log = std::move(*log_or);
    log->wal()->SetCrashPointListener(&armed);
    armed.ArmAt(k);

    auto scheduler = std::make_unique<TransactionalProcessScheduler>(
        SemanticSchedulerOptions(r.world.get(), use_op), log.get());
    ASSERT_TRUE(r.world->RegisterAll(scheduler.get()).ok());
    Status run = DriveWorkload(scheduler.get(), r.workload);
    ASSERT_TRUE(armed.triggered())
        << tag << " k=" << k << " (deterministic rerun missed the hit): "
        << run.ToString();
    ASSERT_TRUE(run.IsUnavailable())
        << tag << " k=" << k << ": " << run.ToString();
    const std::string site = armed.triggered_site();

    if (flavor.file_backed) {
      scheduler.reset();
      log.reset();
      auto reopened = MakeLog(flavor, path);
      ASSERT_TRUE(reopened.ok())
          << tag << " k=" << k << " site=" << site << ": "
          << reopened.status().ToString();
      log = std::move(*reopened);
      scheduler = std::make_unique<TransactionalProcessScheduler>(
          SemanticSchedulerOptions(r.world.get(), use_op), log.get());
      ASSERT_TRUE(r.world->RegisterAll(scheduler.get()).ok());
    } else {
      log->Crash();
    }
    Status recovered = scheduler->Recover(r.world->DefsByName());
    std::string failures;
    if (!recovered.ok()) {
      failures = " recover:" + recovered.ToString();
    } else {
      failures = SemanticInvariants(scheduler.get(), r.world.get(), r.probe);
    }
    if (!failures.empty()) {
      std::string seed_file = WriteFailingSeed(tag, k, site, failures);
      FAIL() << tag << " crash at hit " << k << " (site " << site
             << "):" << failures << "\n(reproducer appended to " << seed_file
             << ")";
    }
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionSweep, SemanticAdtMemory) {
  RunSemanticSweep(/*file_backed=*/false, /*use_op=*/true);
  RunSemanticSweep(/*file_backed=*/false, /*use_op=*/false);
}

TEST(FaultInjectionSweep, SemanticAdtFile) {
  RunSemanticSweep(/*file_backed=*/true, /*use_op=*/true);
  RunSemanticSweep(/*file_backed=*/true, /*use_op=*/false);
}

}  // namespace
}  // namespace tpm
