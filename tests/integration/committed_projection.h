#ifndef TPM_TESTS_INTEGRATION_COMMITTED_PROJECTION_H_
#define TPM_TESTS_INTEGRATION_COMMITTED_PROJECTION_H_

#include "core/schedule.h"

namespace tpm {
namespace testing {

/// The committed projection of a history: the events of exactly those
/// processes that reached commit.
///
/// Workloads whose processes hammer the SAME hot ADT state routinely have
/// aborted processes conflict-preceding later-committed ones. The
/// syntactic Proc-REC checker (Def. 11) does not reduce away compensated
/// work, so on such histories it would flag every such abort even when the
/// compensations were emitted perfectly. The meaningful split is: check
/// Proc-REC on the committed projection (commit order must agree with
/// conflict order among the survivors) and PRED on the FULL history (the
/// reduction-aware criterion that vets the compensations themselves).
inline ProcessSchedule CommittedProjection(const ProcessSchedule& s) {
  ProcessSchedule out;
  for (const auto& [pid, def] : s.processes()) {
    if (s.IsProcessCommitted(pid)) (void)out.AddProcess(pid, def);
  }
  for (const ScheduleEvent& e : s.events()) {
    if (e.type == EventType::kGroupAbort) continue;
    const ProcessId pid =
        e.type == EventType::kActivity ? e.act.process : e.process;
    if (!s.IsProcessCommitted(pid)) continue;
    (void)out.Append(e, /*enforce_legal=*/false);
  }
  return out;
}

}  // namespace testing
}  // namespace tpm

#endif  // TPM_TESTS_INTEGRATION_COMMITTED_PROJECTION_H_
