// End-to-end run of the mixed-ADT SemanticWorld under the full scheduler,
// fault-free and deterministic: the same closed batch of producers,
// consumers and refillers runs once with the operation-level commutativity
// tables enabled (adt) and once reduced to read/write conflicts (rw).
// Both modes must do exactly the same useful work — every process commits,
// and the escrow counters and token queue land on the same exact final
// values — while the adt mode finishes in strictly less virtual time
// (§3.2: the semantics only change *when* work is admitted, never what
// the committed schedule computes).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/scheduler.h"
#include "log/recovery_log.h"
#include "workload/semantic_world.h"

namespace tpm {
namespace {

constexpr int kProducers = 6;
constexpr int kConsumers = 2;
constexpr int kRefillers = 2;
constexpr int64_t kEscrowInitial = 20;
constexpr int kQueueInitial = 5;

struct ModeResult {
  bool ok = false;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t makespan = 0;
  std::map<std::string, int64_t> escrow;
  int64_t orders_len = 0;
};

ModeResult RunMode(bool use_op_commutativity) {
  ModeResult result;

  SemanticWorldOptions world_options;
  world_options.seed = 7;
  world_options.escrow_initial = kEscrowInitial;
  world_options.queue_initial_tokens = kQueueInitial;
  SemanticWorld world(world_options);

  std::vector<const ProcessDef*> defs;
  int variant = 0;
  for (int i = 0; i < kProducers; ++i) {
    defs.push_back(world.MakeOrderProcess(StrCat("order", i), variant++));
  }
  for (int i = 0; i < kConsumers; ++i) {
    defs.push_back(world.MakeConsumeProcess(StrCat("consume", i), variant++));
  }
  for (int i = 0; i < kRefillers; ++i) {
    defs.push_back(world.MakeRefillProcess(StrCat("refill", i), variant++));
  }

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  options.use_op_commutativity = use_op_commutativity;
  for (int i = 0; i < SemanticWorld::kNumBackends; ++i) {
    for (ServiceId id : world.proxy(i)->services().AllIds()) {
      options.service_durations[id] = 4;
    }
  }
  TransactionalProcessScheduler scheduler(options, &log);
  if (!world.RegisterAll(&scheduler).ok()) return result;

  // Closed batch with resubmission: contention aborts (rw mode) retry
  // until everything commits, so both modes converge on the same state.
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (const ProcessDef* def : defs) {
    if (def == nullptr) return result;
    auto pid = scheduler.Submit(def);
    if (!pid.ok()) return result;
    in_flight[*pid] = def;
  }
  for (int round = 0; round < 20 && !in_flight.empty(); ++round) {
    if (!scheduler.Run(500000).ok()) return result;
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      auto retry = scheduler.Submit(def);
      if (!retry.ok()) return result;
      next[*retry] = def;
    }
    in_flight = std::move(next);
  }
  if (!in_flight.empty()) return result;

  result.committed = scheduler.stats().processes_committed;
  result.aborted = scheduler.stats().processes_aborted;
  result.makespan = scheduler.stats().virtual_time;
  result.escrow = world.escrow()->Snapshot();
  result.orders_len = world.queue()->LengthOf("orders");
  result.ok = world.CheckAdtInvariants().ok();
  return result;
}

TEST(SemanticWorldIntegrationTest, BothModesCommitEverythingIdentically) {
  ModeResult adt = RunMode(true);
  ModeResult rw = RunMode(false);
  ASSERT_TRUE(adt.ok);
  ASSERT_TRUE(rw.ok);

  // Every process of the batch commits exactly once in both modes.
  const int64_t batch = kProducers + kConsumers + kRefillers;
  EXPECT_EQ(adt.committed, batch);
  EXPECT_EQ(rw.committed, batch);
  // Fault-free and with op tables on, nothing even aborts transiently.
  EXPECT_EQ(adt.aborted, 0);

  // Exact final ADT state, identical across modes: each producer/refiller
  // deposits one unit of stock and each consumer withdraws one (Submit
  // param 0 means the services' default amount 1); each producer books one
  // unit of revenue via the preferred alternative, each consumer ships one.
  // Every counter starts at kEscrowInitial (EnsureCounter seeds them all).
  std::map<std::string, int64_t> expected{
      {"stock", kEscrowInitial + kProducers + kRefillers - kConsumers},
      {"revenue", kEscrowInitial + kProducers},
      {"shipped", kEscrowInitial + kConsumers}};
  EXPECT_EQ(adt.escrow, expected);
  EXPECT_EQ(rw.escrow, expected);
  // Orders queue: producers and refillers each enqueue one token,
  // consumers each dequeue one.
  EXPECT_EQ(adt.orders_len,
            kQueueInitial + kProducers + kRefillers - kConsumers);
  EXPECT_EQ(rw.orders_len, adt.orders_len);
}

TEST(SemanticWorldIntegrationTest, AdtModeStrictlyBeatsReadWriteMakespan) {
  ModeResult adt = RunMode(true);
  ModeResult rw = RunMode(false);
  ASSERT_TRUE(adt.ok);
  ASSERT_TRUE(rw.ok);
  // The op tables admit the hot-state producer phase in parallel; the rw
  // relation serializes it. Same work, strictly less virtual time.
  EXPECT_LT(adt.makespan, rw.makespan);
}

TEST(SemanticWorldIntegrationTest, RunsAreDeterministicPerSeed) {
  ModeResult a = RunMode(true);
  ModeResult b = RunMode(true);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.escrow, b.escrow);
  EXPECT_EQ(a.orders_len, b.orders_len);
}

}  // namespace
}  // namespace tpm
