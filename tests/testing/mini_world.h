#ifndef TPM_TESTS_TESTING_MINI_WORLD_H_
#define TPM_TESTS_TESTING_MINI_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/process.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {
namespace testing {

/// A small world for scheduler tests: one KV subsystem offering an
/// add/sub/read service triple per key, plus helpers to assemble chain
/// processes compactly.
///
/// Chain specs are strings like "c:a c:b p:c r:d": kind (c/p/r) and key.
/// Every activity of kind c uses add(key) with compensation sub(key); p and
/// r use add(key).
class MiniWorld {
 public:
  explicit MiniWorld(uint64_t seed = 5)
      : subsystem_(SubsystemId(1), "mini", seed) {}

  KvSubsystem* subsystem() { return &subsystem_; }

  ServiceId AddServiceFor(const std::string& key) {
    EnsureKey(key);
    return keys_[key].add;
  }
  ServiceId SubServiceFor(const std::string& key) {
    EnsureKey(key);
    return keys_[key].sub;
  }
  ServiceId ReadServiceFor(const std::string& key) {
    EnsureKey(key);
    return keys_[key].read;
  }

  /// Parses a chain spec (see class comment) into a validated process.
  const ProcessDef* MakeChain(const std::string& name,
                              const std::string& spec) {
    auto def = std::make_unique<ProcessDef>(name);
    ActivityId prev;
    for (const std::string& token : StrSplit(spec, ' ')) {
      if (token.empty()) continue;
      std::vector<std::string> parts = StrSplit(token, ':');
      const std::string& kind = parts[0];
      const std::string& key = parts[1];
      ActivityId id;
      if (kind == "c") {
        id = def->AddActivity(token, ActivityKind::kCompensatable,
                              AddServiceFor(key), SubServiceFor(key));
      } else if (kind == "p") {
        id = def->AddActivity(token, ActivityKind::kPivot, AddServiceFor(key));
      } else {  // "r"
        id = def->AddActivity(token, ActivityKind::kRetriable,
                              AddServiceFor(key));
      }
      if (prev.valid()) {
        Status s = def->AddEdge(prev, id);
        if (!s.ok()) return nullptr;
      }
      prev = id;
    }
    if (!def->Validate().ok()) return nullptr;
    if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
    defs_.push_back(std::move(def));
    return defs_.back().get();
  }

  /// A P1-shaped process: c:prefix, pivot, then primary branch
  /// (c:mid p:deep) with an all-retriable alternative (r:alt1 r:alt2).
  const ProcessDef* MakeBranching(const std::string& name,
                                  const std::string& prefix_key,
                                  const std::string& pivot_key,
                                  const std::string& mid_key,
                                  const std::string& deep_key,
                                  const std::string& alt_key) {
    auto def = std::make_unique<ProcessDef>(name);
    ActivityId c = def->AddActivity("c", ActivityKind::kCompensatable,
                                    AddServiceFor(prefix_key),
                                    SubServiceFor(prefix_key));
    ActivityId p = def->AddActivity("p", ActivityKind::kPivot,
                                    AddServiceFor(pivot_key));
    ActivityId mid = def->AddActivity("mid", ActivityKind::kCompensatable,
                                      AddServiceFor(mid_key),
                                      SubServiceFor(mid_key));
    ActivityId deep = def->AddActivity("deep", ActivityKind::kPivot,
                                       AddServiceFor(deep_key));
    ActivityId alt = def->AddActivity("alt", ActivityKind::kRetriable,
                                      AddServiceFor(alt_key));
    if (!def->AddEdge(c, p).ok() || !def->AddEdge(p, mid, 0).ok() ||
        !def->AddEdge(mid, deep).ok() || !def->AddEdge(p, alt, 1).ok()) {
      return nullptr;
    }
    if (!def->Validate().ok()) return nullptr;
    if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
    defs_.push_back(std::move(def));
    return defs_.back().get();
  }

  /// Definitions by name, as needed by scheduler recovery.
  std::map<std::string, const ProcessDef*> DefsByName() const {
    std::map<std::string, const ProcessDef*> result;
    for (const auto& def : defs_) result[def->name()] = def.get();
    return result;
  }

  int64_t Value(const std::string& key) const {
    return subsystem_.store().Get(key);
  }

 private:
  struct KeyServices {
    ServiceId add, sub, read;
  };

  void EnsureKey(const std::string& key) {
    if (keys_.count(key) > 0) return;
    int64_t base = static_cast<int64_t>(keys_.size()) * 10 + 100;
    KeyServices ks{ServiceId(base + 1), ServiceId(base + 2),
                   ServiceId(base + 3)};
    Status s = subsystem_.RegisterService(
        MakeAddService(ks.add, "add/" + key, key));
    if (s.ok()) {
      s = subsystem_.RegisterService(MakeSubService(ks.sub, "sub/" + key, key));
    }
    if (s.ok()) {
      s = subsystem_.RegisterService(
          MakeReadService(ks.read, "read/" + key, key));
    }
    keys_[key] = ks;
  }

  KvSubsystem subsystem_;
  std::map<std::string, KeyServices> keys_;
  std::vector<std::unique_ptr<ProcessDef>> defs_;
};

}  // namespace testing
}  // namespace tpm

#endif  // TPM_TESTS_TESTING_MINI_WORLD_H_
