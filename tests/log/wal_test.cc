#include "log/wal.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(WalTest, SynchronousAppendsAreDurable) {
  Wal wal(/*synchronous=*/true);
  wal.Append("a");
  wal.Append("b");
  EXPECT_EQ(wal.durable_size(), 2u);
  wal.Crash();
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, AsynchronousAppendsLostOnCrash) {
  Wal wal(/*synchronous=*/false);
  wal.Append("a");
  wal.Flush();
  wal.Append("b");
  wal.Append("c");
  EXPECT_EQ(wal.durable_size(), 1u);
  wal.Crash();
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.records()[0], "a");
}

TEST(WalTest, FlushMakesTailDurable) {
  Wal wal(/*synchronous=*/false);
  wal.Append("a");
  wal.Flush();
  EXPECT_EQ(wal.durable_size(), 1u);
}

TEST(WalTest, ClearResets) {
  Wal wal;
  wal.Append("a");
  wal.Clear();
  EXPECT_EQ(wal.size(), 0u);
  EXPECT_EQ(wal.durable_size(), 0u);
}

}  // namespace
}  // namespace tpm
