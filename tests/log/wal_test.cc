#include "log/wal.h"

#include <gtest/gtest.h>

#include "testing/fault_injector.h"

namespace tpm {
namespace {

using testing::FaultInjector;

TEST(WalTest, SynchronousAppendsAreDurable) {
  Wal wal(/*synchronous=*/true);
  wal.Append("a");
  wal.Append("b");
  EXPECT_EQ(wal.durable_size(), 2u);
  wal.Crash();
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, AsynchronousAppendsLostOnCrash) {
  Wal wal(/*synchronous=*/false);
  wal.Append("a");
  wal.Flush();
  wal.Append("b");
  wal.Append("c");
  EXPECT_EQ(wal.durable_size(), 1u);
  wal.Crash();
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.records()[0], "a");
}

TEST(WalTest, FlushMakesTailDurable) {
  Wal wal(/*synchronous=*/false);
  wal.Append("a");
  wal.Flush();
  EXPECT_EQ(wal.durable_size(), 1u);
}

TEST(WalTest, ClearResets) {
  Wal wal;
  wal.Append("a");
  wal.Clear();
  EXPECT_EQ(wal.size(), 0u);
  EXPECT_EQ(wal.durable_size(), 0u);
}

TEST(WalTest, InjectedCrashBeforeAppendLosesRecordUntilRestart) {
  Wal wal(/*synchronous=*/true);
  FaultInjector injector;
  wal.SetCrashPointListener(&injector);
  ASSERT_TRUE(wal.Append("a").ok());
  injector.ArmAtSite(kWalCrashSiteAppend, 1);
  injector.ResetCounts();
  Status s = wal.Append("b");
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_TRUE(wal.crashed());
  EXPECT_EQ(injector.triggered_site(), kWalCrashSiteAppend);
  // Every operation fails until the restart.
  EXPECT_TRUE(wal.Append("c").IsUnavailable());
  EXPECT_TRUE(wal.Flush().IsUnavailable());
  wal.Crash();
  EXPECT_FALSE(wal.crashed());
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.records()[0], "a");
  ASSERT_TRUE(wal.Append("d").ok());
  EXPECT_EQ(wal.durable_size(), 2u);
}

TEST(WalTest, InjectedCrashDuringSyncLosesTail) {
  Wal wal(/*synchronous=*/false);
  FaultInjector injector;
  wal.SetCrashPointListener(&injector);
  ASSERT_TRUE(wal.Append("a").ok());
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Append("b").ok());
  injector.ArmAtSite(kWalCrashSiteSync, 1);
  injector.ResetCounts();
  EXPECT_TRUE(wal.Flush().IsUnavailable());
  wal.Crash();
  // The sync never completed: only the previously durable prefix remains.
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.records()[0], "a");
}

TEST(WalTest, ReplaceAllIsAtomicUnderInjectedCrash) {
  // Crash before the swap: the old contents survive untouched.
  {
    Wal wal(/*synchronous=*/true);
    FaultInjector injector;
    wal.SetCrashPointListener(&injector);
    ASSERT_TRUE(wal.Append("old1").ok());
    ASSERT_TRUE(wal.Append("old2").ok());
    injector.ArmAtSite(kWalCrashSiteReplace, 1);
    injector.ResetCounts();
    EXPECT_TRUE(wal.ReplaceAll({"new1"}).IsUnavailable());
    wal.Crash();
    ASSERT_EQ(wal.size(), 2u);
    EXPECT_EQ(wal.records()[0], "old1");
    EXPECT_EQ(wal.records()[1], "old2");
  }
  // Crash after the swap: the complete new contents survive. Either way,
  // never a truncated mixture.
  {
    Wal wal(/*synchronous=*/true);
    FaultInjector injector;
    wal.SetCrashPointListener(&injector);
    ASSERT_TRUE(wal.Append("old1").ok());
    injector.ArmAtSite(kWalCrashSiteReplaced, 1);
    injector.ResetCounts();
    EXPECT_TRUE(wal.ReplaceAll({"new1", "new2"}).IsUnavailable());
    wal.Crash();
    ASSERT_EQ(wal.size(), 2u);
    EXPECT_EQ(wal.records()[0], "new1");
    EXPECT_EQ(wal.records()[1], "new2");
  }
}

}  // namespace
}  // namespace tpm
