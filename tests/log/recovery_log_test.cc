#include "log/recovery_log.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(SchedulerLogRecordTest, RoundTripsAllKinds) {
  std::vector<SchedulerLogRecord> records = {
      {SchedulerLogRecord::Kind::kProcessBegin, ProcessId(3), ActivityId(),
       "my-process", 42},
      {SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(3),
       ActivityId(2), "", 0},
      {SchedulerLogRecord::Kind::kActivityCompensated, ProcessId(3),
       ActivityId(2), "", 0},
      {SchedulerLogRecord::Kind::kProcessCommitted, ProcessId(3),
       ActivityId(), "", 0},
      {SchedulerLogRecord::Kind::kProcessAborted, ProcessId(3), ActivityId(),
       "", 0},
  };
  for (const auto& record : records) {
    auto parsed = SchedulerLogRecord::Parse(record.Serialize());
    ASSERT_TRUE(parsed.ok()) << record.Serialize();
    EXPECT_EQ(*parsed, record);
  }
}

TEST(SchedulerLogRecordTest, MalformedLineRejected) {
  EXPECT_FALSE(SchedulerLogRecord::Parse("garbage").ok());
  EXPECT_FALSE(SchedulerLogRecord::Parse("WHAT|1|2|0|x").ok());
}

TEST(RecoveryLogTest, AppendAndReadBack) {
  RecoveryLog log;
  log.Append({SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1),
              ActivityId(), "p", 7});
  log.Append({SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(1),
              ActivityId(1), "", 0});
  auto records = log.Records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].kind, SchedulerLogRecord::Kind::kProcessBegin);
  EXPECT_EQ((*records)[0].param, 7);
  EXPECT_EQ((*records)[1].activity, ActivityId(1));
}

TEST(RecoveryLogTest, AsynchronousLosesTailOnCrash) {
  RecoveryLog log(/*synchronous=*/false);
  log.Append({SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1),
              ActivityId(), "p", 0});
  log.Flush();
  log.Append({SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(1),
              ActivityId(1), "", 0});
  log.Crash();
  auto records = log.Records();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

}  // namespace
}  // namespace tpm
