#include "log/recovery_log.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(SchedulerLogRecordTest, RoundTripsAllKinds) {
  std::vector<SchedulerLogRecord> records = {
      {SchedulerLogRecord::Kind::kProcessBegin, ProcessId(3), ActivityId(),
       "my-process", 42},
      {SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(3),
       ActivityId(2), "", 0},
      {SchedulerLogRecord::Kind::kActivityCompensated, ProcessId(3),
       ActivityId(2), "", 0},
      {SchedulerLogRecord::Kind::kProcessCommitted, ProcessId(3),
       ActivityId(), "", 0},
      {SchedulerLogRecord::Kind::kProcessAborted, ProcessId(3), ActivityId(),
       "", 0},
  };
  for (const auto& record : records) {
    auto parsed = SchedulerLogRecord::Parse(record.Serialize());
    ASSERT_TRUE(parsed.ok()) << record.Serialize();
    EXPECT_EQ(*parsed, record);
  }
}

TEST(SchedulerLogRecordTest, MalformedLineRejected) {
  EXPECT_FALSE(SchedulerLogRecord::Parse("garbage").ok());
  EXPECT_FALSE(SchedulerLogRecord::Parse("WHAT|1|2|0|x").ok());
}

// Fuzz-style table: corrupted, truncated and garbage lines must all come
// back as a Status — never a throw (std::stoll's failure mode) and never a
// bogus parsed record.
TEST(SchedulerLogRecordTest, CorruptedLinesYieldStatusNotThrow) {
  const std::string corpus[] = {
      "",
      "|",
      "||||",
      "BEGIN",
      "BEGIN|1",
      "BEGIN|1|0",
      "BEGIN|1|0|42",                // truncated: def name missing
      "BEGIN||0|42|p",               // empty pid
      "BEGIN|one|0|42|p",            // non-numeric pid
      "BEGIN|1|zero|42|p",           // non-numeric activity
      "BEGIN|1|0|4x2|p",             // trailing junk in param
      "BEGIN|1|0| 42|p",             // leading space (strict parse)
      "BEGIN|1|0|+42|p",             // explicit plus sign rejected
      "BEGIN|99999999999999999999|0|0|p",  // pid out of int64 range
      "BEGIN|1|0|99999999999999999999|p",  // param out of range
      "ACT|1|2",                     // too few fields
      "ACT|1.5|2|0|",                // float-ish pid
      "COMP|0x10|2|0|",              // hex not accepted
      "COMMIT|1|\xff\xfe|0|",        // binary garbage in a numeric field
      "\x00\x01\x02\x03\x04",        // binary garbage line
      "ABORT|18446744073709551616|0|0|",   // > uint64 max
      "BEGIN|-|0|0|p",               // lone minus sign
  };
  for (const std::string& line : corpus) {
    auto parsed = SchedulerLogRecord::Parse(line);
    EXPECT_FALSE(parsed.ok()) << "accepted corrupt line: " << line;
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << parsed.status().ToString();
  }
}

TEST(SchedulerLogRecordTest, RoundTripSurvivesHostileFieldValues) {
  // Serialize → Parse must round-trip even for edge-case field values,
  // including a def name containing the record separator.
  const SchedulerLogRecord hostile[] = {
      {SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1), ActivityId(),
       "name|with|pipes", -9223372036854775807LL - 1},
      {SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1), ActivityId(),
       "", 9223372036854775807LL},
      {SchedulerLogRecord::Kind::kActivityCommitted,
       ProcessId(9223372036854775807LL), ActivityId(9223372036854775807LL),
       "", 0},
  };
  for (const auto& record : hostile) {
    auto parsed = SchedulerLogRecord::Parse(record.Serialize());
    ASSERT_TRUE(parsed.ok()) << record.Serialize();
    EXPECT_EQ(*parsed, record);
  }
}

TEST(RecoveryLogTest, ReplaceAllIsAtomicCheckpoint) {
  RecoveryLog log;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append({SchedulerLogRecord::Kind::kActivityCommitted,
                            ProcessId(1), ActivityId(i + 1), "", 0})
                    .ok());
  }
  ASSERT_TRUE(log.ReplaceAll({{SchedulerLogRecord::Kind::kProcessBegin,
                               ProcessId(1), ActivityId(), "p", 0}})
                  .ok());
  auto records = log.Records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].kind, SchedulerLogRecord::Kind::kProcessBegin);
}

TEST(RecoveryLogTest, AppendAndReadBack) {
  RecoveryLog log;
  log.Append({SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1),
              ActivityId(), "p", 7});
  log.Append({SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(1),
              ActivityId(1), "", 0});
  auto records = log.Records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].kind, SchedulerLogRecord::Kind::kProcessBegin);
  EXPECT_EQ((*records)[0].param, 7);
  EXPECT_EQ((*records)[1].activity, ActivityId(1));
}

TEST(RecoveryLogTest, AsynchronousLosesTailOnCrash) {
  RecoveryLog log(/*synchronous=*/false);
  log.Append({SchedulerLogRecord::Kind::kProcessBegin, ProcessId(1),
              ActivityId(), "p", 0});
  log.Flush();
  log.Append({SchedulerLogRecord::Kind::kActivityCommitted, ProcessId(1),
              ActivityId(1), "", 0});
  log.Crash();
  auto records = log.Records();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

}  // namespace
}  // namespace tpm
