#include "log/file_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/str_util.h"
#include "log/wal.h"

namespace tpm {
namespace {

/// Unique file path per test, removed on destruction.
class TempLogPath {
 public:
  explicit TempLogPath(const std::string& tag) {
    path_ = ::testing::TempDir() + "tpm_file_backend_" + tag + "_" +
            StrCat(::getpid()) + ".log";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempLogPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(FileStorageBackendTest, RoundTripsAcrossReopen) {
  TempLogPath path("roundtrip");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    ASSERT_TRUE((*backend)->Append("alpha").ok());
    ASSERT_TRUE((*backend)->Append("beta|with|separators").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
    ASSERT_TRUE((*backend)->Append("gamma").ok());  // staged, never synced
  }
  auto reopened = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(reopened.ok());
  // Only the synced prefix survives the (simulated) process death.
  ASSERT_EQ((*reopened)->records().size(), 2u);
  EXPECT_EQ((*reopened)->records()[0], "alpha");
  EXPECT_EQ((*reopened)->records()[1], "beta|with|separators");
  EXPECT_EQ((*reopened)->durable_size(), 2u);
  EXPECT_EQ((*reopened)->open_stats().records_recovered, 2u);
}

TEST(FileStorageBackendTest, EmptyAndMissingFilesOpenClean) {
  TempLogPath path("empty");
  auto backend = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ((*backend)->records().size(), 0u);
  EXPECT_EQ((*backend)->durable_size(), 0u);
}

TEST(FileStorageBackendTest, TornTailTruncatedOnOpen) {
  TempLogPath path("torn");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Append("first").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
  }
  // Simulate a crash mid-write: a partial frame after the valid record.
  std::string bytes = ReadFileBytes(path.get());
  std::string torn = FileStorageBackend::EncodeFrame("second-interrupted");
  torn.resize(torn.size() / 2);
  WriteFileBytes(path.get(), bytes + torn);

  auto reopened = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->records().size(), 1u);
  EXPECT_EQ((*reopened)->records()[0], "first");
  EXPECT_EQ((*reopened)->open_stats().torn_bytes_truncated, torn.size());
  // The torn bytes are physically gone: a fresh append then reopen yields
  // exactly [first, third].
  ASSERT_TRUE((*reopened)->Append("third").ok());
  ASSERT_TRUE((*reopened)->Sync().ok());
  auto again = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ((*again)->records().size(), 2u);
  EXPECT_EQ((*again)->records()[1], "third");
  EXPECT_EQ((*again)->open_stats().torn_bytes_truncated, 0u);
}

TEST(FileStorageBackendTest, CorruptTailFrameRejectedByCrc) {
  TempLogPath path("crc_tail");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Append("keep-me").ok());
    ASSERT_TRUE((*backend)->Append("corrupt-me").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
  }
  // Flip one payload byte of the last frame.
  std::string bytes = ReadFileBytes(path.get());
  bytes.back() ^= 0x40;
  WriteFileBytes(path.get(), bytes);

  auto reopened = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->records().size(), 1u);
  EXPECT_EQ((*reopened)->records()[0], "keep-me");
  EXPECT_GT((*reopened)->open_stats().torn_bytes_truncated, 0u);
}

TEST(FileStorageBackendTest, MidFileCorruptionFailsOpen) {
  TempLogPath path("crc_mid");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Append("first-record").ok());
    ASSERT_TRUE((*backend)->Append("second-record").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
  }
  // Corrupt a byte inside the FIRST frame's payload: dropping a middle
  // record would break prefix replay, so Open must refuse.
  std::string bytes = ReadFileBytes(path.get());
  bytes[9] ^= 0x01;  // first payload byte of frame 0
  WriteFileBytes(path.get(), bytes);

  auto reopened = FileStorageBackend::Open(path.get());
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInvalidArgument())
      << reopened.status().ToString();
}

TEST(FileStorageBackendTest, ReplaceAllSurvivesReopenAndDropsOldContents) {
  TempLogPath path("compact");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*backend)->Append(StrCat("old-", i)).ok());
    }
    ASSERT_TRUE((*backend)->Sync().ok());
    ASSERT_TRUE((*backend)->ReplaceAll({"compact-a", "compact-b"}).ok());
    // The backend stays usable after the rename swap.
    ASSERT_TRUE((*backend)->Append("post-compact").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
  }
  auto reopened = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->records().size(), 3u);
  EXPECT_EQ((*reopened)->records()[0], "compact-a");
  EXPECT_EQ((*reopened)->records()[1], "compact-b");
  EXPECT_EQ((*reopened)->records()[2], "post-compact");
}

TEST(FileStorageBackendTest, StaleCompactionTempFileIgnored) {
  TempLogPath path("stale_tmp");
  {
    auto backend = FileStorageBackend::Open(path.get());
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Append("durable").ok());
    ASSERT_TRUE((*backend)->Sync().ok());
  }
  // A compaction that crashed before its rename leaves path.tmp behind;
  // it must not shadow or corrupt the real log.
  WriteFileBytes(path.get() + ".tmp",
                 FileStorageBackend::EncodeFrame("half-finished-checkpoint"));
  auto reopened = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->records().size(), 1u);
  EXPECT_EQ((*reopened)->records()[0], "durable");
}

TEST(FileStorageBackendTest, WalOverFileBackendLosesUnsyncedTail) {
  TempLogPath path("wal");
  auto backend = FileStorageBackend::Open(path.get());
  ASSERT_TRUE(backend.ok());
  Wal wal(std::move(*backend), /*synchronous=*/false);
  ASSERT_TRUE(wal.Append("a").ok());
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Append("b").ok());
  EXPECT_EQ(wal.durable_size(), 1u);
  wal.Crash();
  ASSERT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.records()[0], "a");
}

}  // namespace
}  // namespace tpm
