#include "agent/coordination_agent.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 0) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class CoordinationAgentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoordinationAgent::AgentService book;
    book.id = ServiceId(1);
    book.name = "book";
    book.resource = "ledger";
    book.make_op = [](const ServiceRequest& r) {
      return "book:" + std::to_string(r.param);
    };
    ASSERT_TRUE(agent_.RegisterAgentService(book).ok());

    CoordinationAgent::AgentService cancel;
    cancel.id = ServiceId(2);
    cancel.name = "cancel";
    cancel.resource = "ledger";
    cancel.make_op = [](const ServiceRequest& r) {
      return "cancel:" + std::to_string(r.param);
    };
    ASSERT_TRUE(agent_.RegisterAgentService(cancel).ok());

    CoordinationAgent::AgentService note;
    note.id = ServiceId(3);
    note.name = "note";
    note.resource = "journal";
    note.make_op = [](const ServiceRequest&) { return std::string("note"); };
    ASSERT_TRUE(agent_.RegisterAgentService(note).ok());
  }

  NonTransactionalApp app_;
  CoordinationAgent agent_{SubsystemId(5), "legacy", &app_};
};

TEST_F(CoordinationAgentTest, ImmediateInvokeAppliesToApp) {
  ASSERT_TRUE(agent_.Invoke(ServiceId(1), Req(7)).ok());
  ASSERT_EQ(app_.journal().size(), 1u);
  EXPECT_EQ(app_.journal()[0], "book:7");
}

TEST_F(CoordinationAgentTest, PreparedIsInvisibleUntilCommit) {
  auto prepared = agent_.InvokePrepared(ServiceId(1), Req(7));
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(app_.size(), 0u);  // the app never sees uncommitted work
  ASSERT_TRUE(agent_.CommitPrepared(prepared->tx).ok());
  ASSERT_EQ(app_.size(), 1u);
  EXPECT_EQ(app_.journal()[0], "book:7");
}

TEST_F(CoordinationAgentTest, PreparedAbortLeavesAppUntouched) {
  auto prepared = agent_.InvokePrepared(ServiceId(1), Req(7));
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(agent_.AbortPrepared(prepared->tx).ok());
  EXPECT_EQ(app_.size(), 0u);
}

TEST_F(CoordinationAgentTest, ResourceLockingBlocksSameResource) {
  auto prepared = agent_.InvokePrepared(ServiceId(1), Req(1));
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(agent_.WouldBlock(ServiceId(2)));   // same resource
  EXPECT_FALSE(agent_.WouldBlock(ServiceId(3)));  // different resource
  EXPECT_TRUE(agent_.Invoke(ServiceId(2), Req(1)).status().IsUnavailable());
  EXPECT_TRUE(agent_.Invoke(ServiceId(3), Req(0)).ok());
  ASSERT_TRUE(agent_.CommitPrepared(prepared->tx).ok());
  EXPECT_FALSE(agent_.WouldBlock(ServiceId(2)));
}

TEST_F(CoordinationAgentTest, ConflictsDerivedPerResource) {
  ConflictSpec spec;
  agent_.services().DeriveConflicts(&spec);
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(3)));
}

TEST_F(CoordinationAgentTest, AbortAllPreparedReleases) {
  ASSERT_TRUE(agent_.InvokePrepared(ServiceId(1), Req(1)).ok());
  ASSERT_TRUE(agent_.AbortAllPrepared().ok());
  EXPECT_FALSE(agent_.WouldBlock(ServiceId(2)));
  EXPECT_EQ(app_.size(), 0u);
}

TEST_F(CoordinationAgentTest, UnknownServiceAndTxRejected) {
  EXPECT_TRUE(agent_.Invoke(ServiceId(99), Req()).status().IsNotFound());
  EXPECT_TRUE(agent_.CommitPrepared(TxId(99)).IsNotFound());
  EXPECT_TRUE(agent_.AbortPrepared(TxId(99)).IsNotFound());
}

TEST_F(CoordinationAgentTest, CompensationAsForwardService) {
  // The agent realizes compensation as a semantic inverse operation.
  ASSERT_TRUE(agent_.Invoke(ServiceId(1), Req(7)).ok());
  ASSERT_TRUE(agent_.Invoke(ServiceId(2), Req(7)).ok());
  ASSERT_EQ(app_.size(), 2u);
  EXPECT_EQ(app_.journal()[1], "cancel:7");
}

}  // namespace
}  // namespace tpm
