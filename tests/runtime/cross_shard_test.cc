// Cross-shard processes end to end: the splitter's plans, the
// coordination agent's distributed commit over the held-vote protocol,
// composite weak/strong orders, ◁ tails across shards, the global merged
// projection (PRED + Proc-REC), and lockstep determinism with spanning
// processes in the mix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "runtime/cross_shard_agent.h"
#include "runtime/global_projection.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

// The mixed workload with spanning processes sprinkled in: per tenant
// round-robin of order/consume/refill, plus `span_pct`% spanning
// processes rotating through the three cross-shard shapes. The spanning
// defs are created AFTER the tenant-local ones so both sides of a mirror
// comparison register identical service ids.
std::vector<const ProcessDef*> BuildSpanningWorkload(ShardedWorld* world,
                                                     int per_tenant,
                                                     int span_pct) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < per_tenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, StrCat("order_t", t, "_", round), round));
      defs.push_back(world->MakeConsumeProcess(
          t, StrCat("consume_t", t, "_", round), round));
      defs.push_back(world->MakeRefillProcess(
          t, StrCat("refill_t", t, "_", round), round));
    }
  }
  const int tenants = world->num_tenants();
  const int spans =
      static_cast<int>(defs.size()) * span_pct / (100 - span_pct + 1);
  for (int i = 0; i < spans; ++i) {
    const int a = i % tenants;
    const int b = (i + 1) % tenants;
    const int c = (i + 2) % tenants;
    const ProcessDef* def = nullptr;
    switch (i % 3) {
      case 0:
        def = world->MakeSpanningProcess(StrCat("span_", i), a, b);
        break;
      case 1:
        def = world->MakeSpanningChainProcess(StrCat("span_", i), a, b, c);
        break;
      default:
        def = world->MakeSpanningAltProcess(StrCat("span_", i), a, b, c);
        break;
    }
    EXPECT_NE(def, nullptr) << "span_" << i;
    // Interleave: every few locals, one spanning.
    defs.insert(defs.begin() + (i * 4) % defs.size(), def);
  }
  for (const ProcessDef* def : defs) EXPECT_NE(def, nullptr);
  return defs;
}

// One spanning process across two shards: split into two sub-processes,
// voted, decided commit, globally committed — and the merged projection
// shows ONE process with the original definition.
TEST(CrossShardTest, TwoShardSpanCommitsAtomically) {
  ShardedWorld world({.seed = 21, .num_tenants = 2});
  const ProcessDef* span = world.MakeSpanningProcess("span", 0, 1);
  ASSERT_NE(span, nullptr);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }

  auto ticket = runtime.Submit(span);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_GE(ticket->gsn, 1);
  ASSERT_TRUE(runtime.Drain().ok());
  auto pid = ticket->Await();
  ASSERT_TRUE(pid.ok()) << pid.status();
  EXPECT_EQ(runtime.SpanningOutcome(ticket->gsn), SpanOutcome::kCommitted);

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.spans_begun, 1);
  EXPECT_EQ(stats.spans_committed, 1);
  EXPECT_EQ(stats.spans_aborted, 0);
  // Both slices went through the held 2PC: two admissions, two prepares.
  EXPECT_EQ(stats.merged.spanning_admitted, 2);
  EXPECT_EQ(stats.merged.cross_shard_prepares, 2);
  EXPECT_EQ(stats.submissions_accepted, 1);

  ASSERT_TRUE(runtime.Stop().ok());
  ASSERT_TRUE(world.CheckAdtInvariants().ok());

  // The global projection reassembles the span: one process, the original
  // def, one Commit — and it satisfies the global criteria.
  auto global = runtime.GlobalProjection();
  ASSERT_TRUE(global.ok()) << global.status();
  int span_processes = 0;
  for (const auto& [gpid, def] : global->processes()) {
    if (def == span) ++span_processes;
  }
  EXPECT_EQ(span_processes, 1);
  auto pred = IsPRED(*global, runtime.union_spec());
  ASSERT_TRUE(pred.ok()) << pred.status();
  EXPECT_TRUE(*pred);
  EXPECT_TRUE(
      IsProcessRecoverable(CommittedProjection(*global), runtime.union_spec()));
}

// The three-stage chain exercises a multi-hop skeleton; strong composite
// order forces strictly sequential sub-process submission and must still
// commit.
TEST(CrossShardTest, MultiHopChainCommitsUnderWeakAndStrongOrder) {
  for (OrderMode order : {OrderMode::kWeak, OrderMode::kStrong}) {
    ShardedWorld world({.seed = 22, .num_tenants = 3});
    const ProcessDef* chain = world.MakeSpanningChainProcess("chain", 0, 1, 2);
    ASSERT_NE(chain, nullptr);
    ShardedRuntimeOptions options;
    options.num_shards = 3;
    options.mode = TickMode::kLockstep;
    options.span_order = order;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }

    auto ticket = runtime.Submit(chain);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    ASSERT_TRUE(runtime.Drain().ok());
    EXPECT_EQ(runtime.SpanningOutcome(ticket->gsn), SpanOutcome::kCommitted)
        << "order mode " << static_cast<int>(order);
    RuntimeStats stats = runtime.Stats();
    EXPECT_EQ(stats.merged.spanning_admitted, 3);
    EXPECT_EQ(stats.merged.cross_shard_prepares, 3);
    ASSERT_TRUE(runtime.Stop().ok());
    ASSERT_TRUE(world.CheckAdtInvariants().ok());
    auto global = runtime.GlobalProjection();
    ASSERT_TRUE(global.ok()) << global.status();
    auto pred = IsPRED(*global, runtime.union_spec());
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(*pred);
  }
}

// Cross-shard ◁ alternatives: the preferred tail is tried first and (its
// services healthy) wins; the spanning process commits with exactly one
// tail slice in the histories.
TEST(CrossShardTest, CrossShardAlternativesTakePreferredTail) {
  ShardedWorld world({.seed = 23, .num_tenants = 3});
  const ProcessDef* alt = world.MakeSpanningAltProcess("alt", 0, 1, 2);
  ASSERT_NE(alt, nullptr);
  ShardedRuntimeOptions options;
  options.num_shards = 3;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }

  auto ticket = runtime.Submit(alt);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_EQ(runtime.SpanningOutcome(ticket->gsn), SpanOutcome::kCommitted);
  // Trunk slice + the preferred tail only: two admissions.
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.merged.spanning_admitted, 2);
  ASSERT_TRUE(runtime.Stop().ok());
  auto global = runtime.GlobalProjection();
  ASSERT_TRUE(global.ok()) << global.status();
  auto pred = IsPRED(*global, runtime.union_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
  EXPECT_TRUE(
      IsProcessRecoverable(CommittedProjection(*global), runtime.union_spec()));
}

// Spanning processes pinned to ONE shard never reach the agent: the
// single-shard fast path is untouched (ticket has no gsn, no SBEGIN).
TEST(CrossShardTest, SameShardFootprintStaysOnFastPath) {
  ShardedWorld world({.seed = 24, .num_tenants = 2});
  // Both tenants of the "spanning" def on one shard: pinned.
  const ProcessDef* local = world.MakeSpanningProcess("local_span", 0, 1);
  ASSERT_NE(local, nullptr);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }
  auto ticket = runtime.Submit(local);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_EQ(ticket->gsn, -1);  // never went near the agent
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.spans_begun, 0);
  EXPECT_EQ(stats.merged.spanning_admitted, 0);
  auto pid = ticket->Await();
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_EQ(runtime.shard_scheduler(0)->OutcomeOf(*pid),
            ProcessOutcome::kCommitted);
}

// The mixed workload at >=20% spanning, lockstep: everything drains, the
// global projection is PRED + Proc-REC, the ADT invariants hold, and the
// span counters agree with the outcomes.
TEST(CrossShardTest, MixedWorkloadWithSpansIsGloballyPredAndProcRec) {
  ShardedWorld world({.seed = 25, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = BuildSpanningWorkload(&world, 2, 20);
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }

  std::vector<int64_t> gsns;
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << def->name() << ": " << ticket.status();
    if (ticket->gsn >= 0) gsns.push_back(ticket->gsn);
  }
  EXPECT_GE(gsns.size(), 5u);
  ASSERT_TRUE(runtime.Drain().ok());

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.spans_begun, static_cast<int64_t>(gsns.size()));
  EXPECT_EQ(stats.spans_begun, stats.spans_committed + stats.spans_aborted);
  for (int64_t gsn : gsns) {
    SpanOutcome outcome = runtime.SpanningOutcome(gsn);
    EXPECT_TRUE(outcome == SpanOutcome::kCommitted ||
                outcome == SpanOutcome::kAborted)
        << "g" << gsn;
  }
  ASSERT_TRUE(runtime.Stop().ok());
  ASSERT_TRUE(world.CheckAdtInvariants().ok());

  auto global = runtime.GlobalProjection();
  ASSERT_TRUE(global.ok()) << global.status();
  auto pred = IsPRED(*global, runtime.union_spec());
  ASSERT_TRUE(pred.ok()) << pred.status();
  EXPECT_TRUE(*pred);
  EXPECT_TRUE(
      IsProcessRecoverable(CommittedProjection(*global), runtime.union_spec()));
}

// Determinism with spanning enabled: two identically seeded lockstep runs
// produce bit-identical per-shard histories, coordinator logs, and global
// projections.
TEST(CrossShardTest, LockstepWithSpansIsDeterministic) {
  std::vector<uint64_t> shard_prints[2];
  uint64_t coord_print[2] = {0, 0};
  uint64_t global_print[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ShardedWorld world({.seed = 26, .num_tenants = 4});
    std::vector<const ProcessDef*> defs = BuildSpanningWorkload(&world, 2, 20);
    ShardedRuntimeOptions options;
    options.num_shards = 4;
    options.mode = TickMode::kLockstep;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }
    for (const ProcessDef* def : defs) {
      auto ticket = runtime.Submit(def);
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      // Lockstep submissions interleave with rounds exactly as the
      // deterministic driver dictates: tick once per submission.
      ASSERT_TRUE(runtime.Tick(1).ok());
    }
    ASSERT_TRUE(runtime.Drain().ok());
    ASSERT_TRUE(runtime.Stop().ok());
    for (int s = 0; s < 4; ++s) {
      shard_prints[run].push_back(
          Fnv1a(runtime.shard_scheduler(s)->history().ToString()));
    }
    std::string coord;
    for (const std::string& record :
         runtime.cross_shard_agent()->wal()->records()) {
      coord += record;
      coord += '\n';
    }
    coord_print[run] = Fnv1a(coord);
    auto global = runtime.GlobalProjection();
    ASSERT_TRUE(global.ok()) << global.status();
    global_print[run] = Fnv1a(global->ToString());
  }
  EXPECT_EQ(shard_prints[0], shard_prints[1]);
  EXPECT_EQ(coord_print[0], coord_print[1]);
  EXPECT_EQ(global_print[0], global_print[1]);
}

// Splitter unit coverage: the plan's shape for the chain — per-shard
// slices in skeleton order, local activity ids remapped onto the
// original's, deterministic re-split.
TEST(CrossShardTest, SplitPlanIsDeterministicAndCoversTheDefinition) {
  ShardedWorld world({.seed = 27, .num_tenants = 3});
  const ProcessDef* chain = world.MakeSpanningChainProcess("chain", 0, 1, 2);
  ASSERT_NE(chain, nullptr);
  ShardedRuntimeOptions options;
  options.num_shards = 3;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }

  auto plan = runtime.router().Split(*chain, "chain@g1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subs.size(), 3u);
  EXPECT_TRUE(plan->tails.empty());
  // Slices are one-per-shard, disjoint, and jointly cover the original's
  // activities through to_original.
  std::set<int> shards;
  std::set<int64_t> covered;
  for (const SubProcessPlan& sub : plan->subs) {
    EXPECT_TRUE(shards.insert(sub.shard).second);
    for (const auto& [local, original] : sub.to_original) {
      EXPECT_TRUE(covered.insert(original.value()).second);
    }
  }
  EXPECT_EQ(covered.size(), chain->activities().size());
  // The first slice has no skeleton predecessors; later ones do.
  EXPECT_TRUE(plan->subs[0].skeleton_preds.empty());
  EXPECT_FALSE(plan->subs[2].skeleton_preds.empty());

  // Deterministic: a second split is bit-identical (names, edges, maps).
  auto replay = runtime.router().Split(*chain, "chain@g1");
  ASSERT_TRUE(replay.ok());
  for (size_t i = 0; i < plan->subs.size(); ++i) {
    EXPECT_EQ(plan->subs[i].def->name(), replay->subs[i].def->name());
    EXPECT_EQ(plan->subs[i].shard, replay->subs[i].shard);
    EXPECT_EQ(plan->subs[i].to_original, replay->subs[i].to_original);
    EXPECT_EQ(plan->subs[i].skeleton_preds, replay->subs[i].skeleton_preds);
  }
  ASSERT_TRUE(runtime.Stop().ok());
}

// Free-running spanning soak: concurrent submitters, spanning mix, drain,
// then the global criteria. TPM_RUNTIME_SPAN_PCT overrides the spanning
// share (CI chaos variant).
TEST(CrossShardTest, FreeRunningSpanningSoakIsGloballyCorrect) {
  int span_pct = 20;
  if (const char* env = std::getenv("TPM_RUNTIME_SPAN_PCT")) {
    auto parsed = ParseInt64(env);
    if (parsed.ok() && *parsed >= 0 && *parsed <= 50) {
      span_pct = static_cast<int>(*parsed);
    }
  }
  ShardedWorld world({.seed = 28, .num_tenants = 4});
  std::vector<const ProcessDef*> defs =
      BuildSpanningWorkload(&world, 3, span_pct);
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kFreeRunning;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  { Status start_status = runtime.Start(); ASSERT_TRUE(start_status.ok()) << start_status; }
  int64_t spans = 0;
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << def->name() << ": " << ticket.status();
    if (ticket->gsn >= 0) ++spans;
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.spans_begun, spans);
  EXPECT_EQ(stats.spans_begun, stats.spans_committed + stats.spans_aborted);
  ASSERT_TRUE(runtime.Stop().ok());
  ASSERT_TRUE(world.CheckAdtInvariants().ok());
  auto global = runtime.GlobalProjection();
  ASSERT_TRUE(global.ok()) << global.status();
  auto pred = IsPRED(*global, runtime.union_spec());
  ASSERT_TRUE(pred.ok()) << pred.status();
  EXPECT_TRUE(*pred);
  EXPECT_TRUE(
      IsProcessRecoverable(CommittedProjection(*global), runtime.union_spec()));
}

}  // namespace
}  // namespace tpm
