// Kill-at-every-crash-point sweep over the coordinator WAL: the scenario
// is first dry-run to count the coordinator crash-point hits per site
// (coordinator/append|sync|synced|decide), then re-run once per hit with
// the injector armed there. After every crash a fresh incarnation must
// recover: durably decided spanning processes keep their decision,
// undecided ones are presumed aborted, NO spanning process is ever
// half-committed (the global projection merge fails loudly on that), and
// the global history stays PRED + Proc-REC.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "runtime/cross_shard_agent.h"
#include "runtime/sharded_runtime.h"
#include "testing/fault_injector.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

constexpr int kTenants = 3;
constexpr int kShards = 3;

// Mixed load with every cross-shard shape: two-shard pair, three-hop
// chain, ◁ tails, plus tenant-local noise that shares the spans' queues
// and counters.
std::vector<const ProcessDef*> BuildDefs(ShardedWorld* world) {
  std::vector<const ProcessDef*> defs;
  for (int t = 0; t < world->num_tenants(); ++t) {
    defs.push_back(world->MakeOrderProcess(t, StrCat("order_t", t)));
    defs.push_back(world->MakeConsumeProcess(t, StrCat("consume_t", t)));
  }
  defs.push_back(world->MakeSpanningProcess("span_pair", 0, 1));
  defs.push_back(world->MakeSpanningChainProcess("span_chain", 0, 1, 2));
  defs.push_back(world->MakeSpanningAltProcess("span_alt", 1, 2, 0));
  defs.push_back(world->MakeSpanningProcess("span_pair2", 2, 0));
  for (const ProcessDef* def : defs) EXPECT_NE(def, nullptr);
  return defs;
}

std::string FreshWalDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "coordinator_recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// Site names contain '/'; flatten them for directory names.
std::string SiteTag(const char* site) {
  std::string tag = site;
  for (char& c : tag) {
    if (c == '/') c = '_';
  }
  return tag;
}

ShardedRuntimeOptions MakeOptions(const std::string& wal_dir,
                                  CrashPointListener* listener) {
  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kLockstep;
  options.log_mode = ShardLogMode::kFile;
  options.wal_dir = wal_dir;
  options.coordinator_crash_listener = listener;
  return options;
}

/// Runs the crash scenario: submit the mix (one tick per submission, so
/// spans interleave with local work), then a bounded tail of rounds —
/// enough for clean runs to finish, but NOT a Drain, since a crashed
/// coordinator parks its held sub-processes forever. Records each
/// spanning ticket's gsn and the first incarnation's view of its outcome
/// at Stop time.
void RunScenario(ShardedWorld* world, const ShardedRuntimeOptions& options,
                 std::map<int64_t, SpanOutcome>* outcomes) {
  std::vector<const ProcessDef*> defs = BuildDefs(world);
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world->RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  std::vector<int64_t> gsns;
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    // After the injected coordinator crash, spanning submissions fail
    // sticky — that IS the scenario, keep going.
    if (ticket.ok() && ticket->gsn >= 0) gsns.push_back(ticket->gsn);
    ASSERT_TRUE(runtime.Tick(1).ok());
  }
  ASSERT_TRUE(runtime.Tick(40).ok());
  ASSERT_TRUE(runtime.Stop().ok());
  for (int64_t gsn : gsns) {
    (*outcomes)[gsn] = runtime.SpanningOutcome(gsn);
  }
}

// The sweep proper. Also doubles as the clean-path test: the dry run (no
// armed crash) must commit every span and recover as a no-op.
TEST(CoordinatorRecoveryTest, KillAtEveryCoordinatorCrashPoint) {
  const char* kSites[] = {kCoordCrashSiteAppend, kCoordCrashSiteSync,
                          kCoordCrashSiteSynced, kCoordCrashSiteDecide};
  for (const char* site : kSites) {
    // Dry run: count this site's hits across the whole scenario.
    testing::FaultInjector injector;
    injector.ArmAtSite(site, 0);
    int64_t total_hits = 0;
    {
      const std::string wal_dir = FreshWalDir(StrCat("dry_", SiteTag(site)));
      ShardedWorld world({.seed = 51, .num_tenants = kTenants});
      std::map<int64_t, SpanOutcome> outcomes;
      RunScenario(&world, MakeOptions(wal_dir, &injector), &outcomes);
      if (HasFatalFailure()) return;
      total_hits = injector.hits();
      // Clean run: every span decided.
      for (const auto& [gsn, outcome] : outcomes) {
        EXPECT_TRUE(outcome == SpanOutcome::kCommitted ||
                    outcome == SpanOutcome::kAborted)
            << site << " dry run g" << gsn;
      }
      std::filesystem::remove_all(wal_dir);
    }
    ASSERT_GT(total_hits, 0) << site;

    for (int64_t k = 1; k <= total_hits; ++k) {
      SCOPED_TRACE(StrCat(site, " hit ", k, "/", total_hits));
      const std::string wal_dir =
          FreshWalDir(StrCat(SiteTag(site), "_", k));
      ShardedWorld world({.seed = 51, .num_tenants = kTenants});
      injector.Reset();
      injector.ArmAtSite(site, k);
      std::map<int64_t, SpanOutcome> before;
      RunScenario(&world, MakeOptions(wal_dir, &injector), &before);
      if (HasFatalFailure()) return;
      EXPECT_TRUE(injector.triggered());

      // Fresh incarnation over the surviving WAL directory and subsystem
      // state; no injector — the crash is over.
      ShardedRuntime recovered(MakeOptions(wal_dir, nullptr));
      ASSERT_TRUE(world.RegisterAll(&recovered).ok());
      ASSERT_TRUE(recovered.Start().ok());
      // Recover internally asserts per-shard PRED + Proc-REC AND the
      // global criteria on the merged projection — a half-committed span
      // fails the merge itself.
      Status status = recovered.Recover(world.DefsByName());
      ASSERT_TRUE(status.ok()) << status;

      // Decision durability: what the first incarnation saw decided must
      // recover to the SAME outcome; in-flight spans resolve either way
      // (a durable decision may predate the crash), but never stay open.
      for (const auto& [gsn, outcome_before] : before) {
        SpanOutcome after = recovered.SpanningOutcome(gsn);
        switch (outcome_before) {
          case SpanOutcome::kCommitted:
            EXPECT_EQ(after, SpanOutcome::kCommitted) << "g" << gsn;
            break;
          case SpanOutcome::kAborted:
            EXPECT_EQ(after, SpanOutcome::kAborted) << "g" << gsn;
            break;
          default:
            EXPECT_TRUE(after == SpanOutcome::kCommitted ||
                        after == SpanOutcome::kAborted)
                << "g" << gsn << " still open after recovery";
            break;
        }
      }

      // The recovered runtime accepts new spanning work.
      const ProcessDef* post =
          world.MakeSpanningProcess(StrCat("post_", k), 0, 2);
      ASSERT_NE(post, nullptr);
      auto ticket = recovered.Submit(post);
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      ASSERT_TRUE(recovered.Drain().ok());
      EXPECT_EQ(recovered.SpanningOutcome(ticket->gsn),
                SpanOutcome::kCommitted);

      ASSERT_TRUE(recovered.Stop().ok());
      EXPECT_TRUE(world.CheckAdtInvariants().ok());

      // External re-check of the atomicity assertion: the merge succeeds
      // (no half-committed span) and the global history is PRED+Proc-REC.
      auto global = recovered.GlobalProjection();
      ASSERT_TRUE(global.ok()) << global.status();
      auto pred = IsPRED(*global, recovered.union_spec());
      ASSERT_TRUE(pred.ok()) << pred.status();
      EXPECT_TRUE(*pred);
      EXPECT_TRUE(IsProcessRecoverable(CommittedProjection(*global),
                                       recovered.union_spec()));
      std::filesystem::remove_all(wal_dir);
    }
  }
}

// Targeted ◁-tail window: crash exactly at the decision point (every
// participant incl. the chosen tail voted, no decision logged). Recovery
// must presume abort — the tail's and trunk's votes alone prove nothing.
TEST(CoordinatorRecoveryTest, DecideCrashOnTailVotePresumesAbort) {
  const std::string wal_dir = FreshWalDir("tail_decide");
  ShardedWorld world({.seed = 53, .num_tenants = kTenants});
  const ProcessDef* alt = world.MakeSpanningAltProcess("alt", 0, 1, 2);
  ASSERT_NE(alt, nullptr);
  testing::FaultInjector injector;
  injector.ArmAtSite(kCoordCrashSiteDecide, 1);
  int64_t gsn = -1;
  {
    ShardedRuntime runtime(MakeOptions(wal_dir, &injector));
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    auto ticket = runtime.Submit(alt);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    gsn = ticket->gsn;
    ASSERT_GE(gsn, 1);
    ASSERT_TRUE(runtime.Tick(40).ok());
    ASSERT_TRUE(runtime.Stop().ok());
    ASSERT_TRUE(injector.triggered());
    // Crashed at the decision: still open in the dying incarnation.
    EXPECT_EQ(runtime.SpanningOutcome(gsn), SpanOutcome::kInFlight);
  }

  ShardedRuntime recovered(MakeOptions(wal_dir, nullptr));
  ASSERT_TRUE(world.RegisterAll(&recovered).ok());
  ASSERT_TRUE(recovered.Start().ok());
  ASSERT_TRUE(recovered.Recover(world.DefsByName()).ok());
  EXPECT_EQ(recovered.SpanningOutcome(gsn), SpanOutcome::kAborted);
  ASSERT_TRUE(recovered.Stop().ok());
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
  // Presumed abort left no committed slice anywhere.
  auto global = recovered.GlobalProjection();
  ASSERT_TRUE(global.ok()) << global.status();
  for (const auto& [pid, def] : global->processes()) {
    if (def == alt) {
      EXPECT_FALSE(global->IsProcessCommitted(pid));
    }
  }
  std::filesystem::remove_all(wal_dir);
}

}  // namespace
}  // namespace tpm
