// Elastic crash recovery: the migration WAL (MBEGIN/MCUT/MFLIP/MEND) must
// make quiesce-and-migrate atomic across a crash at EVERY crash point —
// after recovery the component is owned by exactly one shard, every shard
// WAL verifies (PRED + Proc-REC via verify_recovery), and the ADT
// invariants hold. Plus a seeded chaos soak of migration under concurrent
// producers with a restart per iteration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "log/recovery_log.h"
#include "runtime/sharded_runtime.h"
#include "testing/fault_injector.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

std::vector<const ProcessDef*> MakeMix(ShardedWorld* world, int per_tenant) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < per_tenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, StrCat("order_t", t, "_", round)));
      defs.push_back(world->MakeConsumeProcess(
          t, StrCat("consume_t", t, "_", round)));
      defs.push_back(world->MakeRefillProcess(
          t, StrCat("refill_t", t, "_", round)));
    }
  }
  return defs;
}

std::string FreshWalDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "elastic_recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// Every kProcessBegin record must live in the WAL of the shard that owns
// the record's conflict component under the recovered router — i.e. a
// migrated component's history moved wholesale and exactly once.
void AssertSingleOwnership(ShardedRuntime* runtime,
                           const ShardedWorld& world) {
  auto defs_by_name = world.DefsByName();
  for (int s = 0; s < runtime->num_shards(); ++s) {
    RecoveryLog* log = runtime->shard_log(s);
    ASSERT_NE(log, nullptr);
    auto records = log->Records();
    ASSERT_TRUE(records.ok()) << records.status();
    for (const SchedulerLogRecord& record : *records) {
      if (record.kind != SchedulerLogRecord::Kind::kProcessBegin) continue;
      auto it = defs_by_name.find(record.def_name);
      ASSERT_NE(it, defs_by_name.end()) << record.def_name;
      const int component = runtime->router().ComponentOfDef(*it->second);
      EXPECT_EQ(runtime->router().ShardOfComponent(component), s)
          << "record for '" << record.def_name << "' (component "
          << component << ") stranded in shard " << s << "'s WAL";
    }
  }
}

// A completed migration is durable: the restart re-applies the routing
// override from the migration WAL, re-homes the component's subsystem
// registrations, and recovery verifies the moved history on its new shard.
TEST(ElasticRecoveryTest, CompletedMigrationSurvivesRestart) {
  const std::string wal_dir = FreshWalDir("restart");
  ShardedWorld world({.seed = 51, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = MakeMix(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kFreeRunning;
  options.log_mode = ShardLogMode::kFile;
  options.wal_dir = wal_dir;
  options.elastic.enabled = true;

  int component = -1;
  int to = -1;
  {
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    for (const ProcessDef* def : defs) {
      ASSERT_TRUE(runtime.Submit(def).ok());
    }
    ASSERT_TRUE(runtime.Drain().ok());
    component =
        runtime.router().ComponentOfService(world.TenantServices(0)[0]);
    to = 1 - runtime.router().ShardOfComponent(component);
    ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());
    // More traffic AFTER the move: the new owner's WAL gains records for
    // the migrated component that recovery must accept there.
    auto ticket = runtime.Submit(world.MakeOrderProcess(0, "order_moved"));
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ticket->shard, to);
    ASSERT_TRUE(runtime.Drain().ok());
    ASSERT_TRUE(runtime.Stop().ok());
  }

  ShardedRuntime recovered(options);
  ASSERT_TRUE(world.RegisterAll(&recovered).ok());
  ASSERT_TRUE(recovered.Start().ok());
  // The override outlives the incarnation that wrote it.
  EXPECT_EQ(recovered.router().ShardOfComponent(component), to);
  ASSERT_TRUE(recovered.Recover(world.DefsByName()).ok());
  EXPECT_TRUE(recovered.migration_engine()->ever_migrated());

  auto ticket = recovered.Submit(world.MakeOrderProcess(0, "order_post"));
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->shard, to);
  ASSERT_TRUE(recovered.Drain().ok());
  EXPECT_TRUE(ticket->Await().ok());
  ASSERT_TRUE(recovered.Stop().ok());
  AssertSingleOwnership(&recovered, world);
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
  std::filesystem::remove_all(wal_dir);
}

// The tentpole sweep: crash the migration at every crash point (the
// migration WAL's own append/sync sites plus the explicit protocol sites
// between the cut, the import, the flip and the strip). Whatever the cut
// point, the second incarnation must land in exactly one of the two legal
// worlds — migration never happened (owner = from) or migration fully
// happened (owner = to) — with every shard WAL verifying and fresh traffic
// committing on the surviving owner.
TEST(ElasticRecoveryTest, KillAtEveryCrashPointRecoversSingleOwner) {
  constexpr int kTenants = 2;
  constexpr int kShards = 2;

  // Dry run: count the crash-point hits of one full migration.
  testing::FaultInjector counter;
  int64_t total_hits = 0;
  {
    const std::string wal_dir = FreshWalDir("sweep_dry");
    ShardedWorld world({.seed = 61, .num_tenants = kTenants});
    std::vector<const ProcessDef*> defs = MakeMix(&world, 2);
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    options.elastic.enabled = true;
    options.elastic.crash_listener = &counter;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    for (const ProcessDef* def : defs) {
      ASSERT_TRUE(runtime.Submit(def).ok());
    }
    ASSERT_TRUE(runtime.Drain().ok());
    const int component =
        runtime.router().ComponentOfService(world.TenantServices(0)[0]);
    const int to = 1 - runtime.router().ShardOfComponent(component);
    counter.ResetCounts();
    ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());
    total_hits = counter.hits();
    ASSERT_TRUE(runtime.Stop().ok());
    std::filesystem::remove_all(wal_dir);
  }
  ASSERT_GT(total_hits, 0);

  for (int64_t crash_hit = 1; crash_hit <= total_hits; ++crash_hit) {
    SCOPED_TRACE(StrCat("crash_hit=", crash_hit, "/", total_hits));
    const std::string wal_dir =
        FreshWalDir(StrCat("sweep_", crash_hit));
    ShardedWorld world({.seed = 61, .num_tenants = kTenants});
    std::vector<const ProcessDef*> defs = MakeMix(&world, 2);
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    options.elastic.enabled = true;

    int component = -1;
    int from = -1;
    int to = -1;
    bool crashed = false;
    {
      testing::FaultInjector injector;
      ShardedRuntimeOptions armed = options;
      armed.elastic.crash_listener = &injector;
      ShardedRuntime runtime(armed);
      ASSERT_TRUE(world.RegisterAll(&runtime).ok());
      ASSERT_TRUE(runtime.Start().ok());
      for (const ProcessDef* def : defs) {
        ASSERT_TRUE(runtime.Submit(def).ok());
      }
      ASSERT_TRUE(runtime.Drain().ok());
      component =
          runtime.router().ComponentOfService(world.TenantServices(0)[0]);
      from = runtime.router().ShardOfComponent(component);
      to = 1 - from;
      injector.ResetCounts();
      injector.ArmAt(crash_hit);
      Status status = runtime.MigrateComponent(component, to);
      crashed = injector.triggered();
      if (crashed) {
        EXPECT_FALSE(status.ok()) << "crash point swallowed";
      } else {
        EXPECT_TRUE(status.ok()) << status;
      }
      // Kill the incarnation where it stands (no Drain: a crashed engine
      // is sticky by design).
      ASSERT_TRUE(runtime.Stop().ok());
    }

    // Second incarnation over the same WALs: fix-ups + override replay.
    ShardedRuntime recovered(options);
    ASSERT_TRUE(world.RegisterAll(&recovered).ok());
    ASSERT_TRUE(recovered.Start().ok());
    ASSERT_TRUE(recovered.Recover(world.DefsByName()).ok());
    const int owner = recovered.router().ShardOfComponent(component);
    EXPECT_TRUE(owner == from || owner == to) << "owner=" << owner;

    // Fresh traffic for every tenant commits wherever the recovery landed
    // the components.
    std::vector<SubmitTicket> tickets;
    for (int t = 0; t < kTenants; ++t) {
      auto ticket = recovered.Submit(
          world.MakeOrderProcess(t, StrCat("post_order_t", t)));
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      if (t == 0) {
        EXPECT_EQ(ticket->shard, owner);
      }
      tickets.push_back(*ticket);
    }
    ASSERT_TRUE(recovered.Drain().ok());
    for (SubmitTicket& ticket : tickets) {
      EXPECT_TRUE(ticket.Await().ok());
    }
    RuntimeStats stats = recovered.Stats();
    // Terminal accounting: a durable MBEGIN resolves exactly once —
    // completed iff the decision record (MFLIP) survived, which is also
    // exactly when the override re-homed the component.
    EXPECT_LE(stats.migrations_completed + stats.migrations_aborted, 1);
    EXPECT_EQ(stats.migrations_completed, owner == to ? 1 : 0);
    ASSERT_TRUE(recovered.Stop().ok());
    AssertSingleOwnership(&recovered, world);
    EXPECT_TRUE(world.CheckAdtInvariants().ok());
    std::filesystem::remove_all(wal_dir);
  }
}

// ---------------------------------------------------------------------------
// Seeded chaos soak: migration under concurrent producers, then a full
// restart + recovery per iteration. Fresh seeds per run; override via
// TPM_ELASTIC_SEED_BASE / TPM_ELASTIC_SOAK_ITERS in CI.

TEST(ElasticSoakTest, MigrationUnderConcurrentProducersThenRecovery) {
  const char* base_env = std::getenv("TPM_ELASTIC_SEED_BASE");
  const char* iters_env = std::getenv("TPM_ELASTIC_SOAK_ITERS");
  const uint64_t seed_base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 7777;
  const int iterations = iters_env != nullptr ? std::atoi(iters_env) : 2;
  constexpr int kTenants = 4;
  constexpr int kShards = 2;

  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string wal_dir = FreshWalDir(StrCat("soak_", iter));
    ShardedWorld world({.seed = seed, .num_tenants = kTenants});
    std::vector<const ProcessDef*> defs = MakeMix(&world, 4);
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    options.elastic.enabled = true;

    const int victim_tenant = static_cast<int>(seed % kTenants);
    {
      ShardedRuntime runtime(options);
      ASSERT_TRUE(world.RegisterAll(&runtime).ok());
      ASSERT_TRUE(runtime.Start().ok());
      const int component = runtime.router().ComponentOfService(
          world.TenantServices(victim_tenant)[0]);
      const int to = 1 - runtime.router().ShardOfComponent(component);

      constexpr int kProducers = 3;
      std::atomic<size_t> next{0};
      std::atomic<int> failures{0};
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= defs.size()) break;
            auto ticket = runtime.Submit(defs[i]);
            if (!ticket.ok() || !ticket->Await().ok()) {
              failures.fetch_add(1);
            }
          }
        });
      }
      // Migrate the victim component mid-traffic.
      while (next.load() < defs.size() / 2) std::this_thread::yield();
      ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());
      for (auto& t : producers) t.join();
      ASSERT_TRUE(runtime.Drain().ok());
      RuntimeStats stats = runtime.Stats();
      EXPECT_EQ(failures.load(), 0);
      EXPECT_EQ(stats.migrations_completed, 1);
      EXPECT_EQ(
          stats.merged.processes_committed + stats.merged.processes_aborted,
          static_cast<int64_t>(defs.size()));
      EXPECT_EQ(runtime.router().ShardOfComponent(component), to);
      ASSERT_TRUE(runtime.Stop().ok());
      EXPECT_TRUE(world.CheckAdtInvariants().ok());
    }

    // Restart: the override and the moved history both recover.
    ShardedRuntime recovered(options);
    ASSERT_TRUE(world.RegisterAll(&recovered).ok());
    Status started = recovered.Start();
    ASSERT_TRUE(started.ok()) << started;
    Status recovery = recovered.Recover(world.DefsByName());
    ASSERT_TRUE(recovery.ok()) << recovery;
    std::vector<SubmitTicket> tickets;
    for (int t = 0; t < kTenants; ++t) {
      auto ticket = recovered.Submit(world.MakeOrderProcess(
          t, StrCat("post_order_t", t, "_", iter)));
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      tickets.push_back(*ticket);
    }
    ASSERT_TRUE(recovered.Drain().ok());
    for (SubmitTicket& ticket : tickets) {
      EXPECT_TRUE(ticket.Await().ok());
    }
    ASSERT_TRUE(recovered.Stop().ok());
    AssertSingleOwnership(&recovered, world);
    EXPECT_TRUE(world.CheckAdtInvariants().ok());

    if (::testing::Test::HasFailure()) {
      // Keep the WAL directory around for post-mortem.
      std::string path = testing::WriteFailingSeed(
          "elastic_migration_soak", iter, "ElasticSoakTest",
          StrCat("TPM_ELASTIC_SEED_BASE=", seed,
                 " TPM_ELASTIC_SOAK_ITERS=1 ctest -R ElasticSoak; wal_dir=",
                 wal_dir));
      std::cerr << "soak failed at seed " << seed
                << "; reproducer written to " << path << "\n";
      break;
    }
    std::filesystem::remove_all(wal_dir);
  }
}

}  // namespace
}  // namespace tpm
