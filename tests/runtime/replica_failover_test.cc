// Replicated shards, part 2: hot failover. Killing the acting primary
// mid-run promotes a live follower with no stop-the-world WAL replay —
// the shard keeps serving through the kill. The sweep arms a real WAL
// crash at every crash point of the primary's log; the soak repeats the
// kill-respawn cycle under concurrent producers with fresh seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "runtime/replica_group.h"
#include "runtime/sharded_runtime.h"
#include "testing/fault_injector.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

std::vector<const ProcessDef*> BuildWorkloadRounds(ShardedWorld* world,
                                                   int begin, int end) {
  std::vector<const ProcessDef*> defs;
  for (int round = begin; round < end; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, "order_t" + std::to_string(t) + "_" + std::to_string(round),
          round));
      defs.push_back(world->MakeConsumeProcess(
          t, "consume_t" + std::to_string(t) + "_" + std::to_string(round),
          round));
      defs.push_back(world->MakeRefillProcess(
          t, "refill_t" + std::to_string(t) + "_" + std::to_string(round),
          round));
    }
  }
  return defs;
}

struct ReplicaWorlds {
  std::vector<std::unique_ptr<ShardedWorld>> worlds;
  std::vector<const ProcessDef*> defs;
};

ReplicaWorlds MakeReplicaWorlds(int factor, uint64_t seed, int tenants,
                                int per_tenant, int initial_tokens = 8) {
  ReplicaWorlds rw;
  for (int r = 0; r < factor; ++r) {
    rw.worlds.push_back(std::make_unique<ShardedWorld>(
        ShardedWorldOptions{.seed = seed,
                            .num_tenants = tenants,
                            .queue_initial_tokens = initial_tokens}));
    std::vector<const ProcessDef*> defs =
        BuildWorkloadRounds(rw.worlds.back().get(), 0, per_tenant);
    if (r == 0) rw.defs = std::move(defs);
  }
  return rw;
}

Status RegisterReplicas(ReplicaWorlds* rw, ShardedRuntime* runtime) {
  for (size_t r = 0; r < rw->worlds.size(); ++r) {
    Status status =
        rw->worlds[r]->RegisterAllAsReplica(runtime, static_cast<int>(r));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

// Full post-quiescence audit of one replicated shard on its acting
// primary: PRED, Proc-REC of the committed projection.
void AuditShard(ShardedRuntime* runtime, int shard) {
  TransactionalProcessScheduler* scheduler = runtime->shard_scheduler(shard);
  ASSERT_NE(scheduler, nullptr);
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred) << "shard " << shard << " history not PRED";
  EXPECT_TRUE(IsProcessRecoverable(CommittedProjection(scheduler->history()),
                                   scheduler->conflict_spec()))
      << "shard " << shard << " not Proc-REC";
}

// ---------------------------------------------------------------------------
// Killing the primary mid-run: the follower takes over, every submission
// (including those sent AFTER the kill) is served, no recovery pause.

TEST(ReplicaFailoverTest, KillPrimaryMidRunKeepsServing) {
  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/3, /*seed=*/53,
                                       /*tenants=*/2, /*per_tenant=*/4);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kFreeRunning;
  options.replication.factor = 3;
  options.replication.vote_every_rounds = 2;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  std::vector<SubmitTicket> tickets;
  const size_t half = rw.defs.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    auto ticket = runtime.Submit(rw.defs[i]);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }

  // Kill the acting primary while the first half may still be in flight.
  ASSERT_TRUE(runtime.KillReplica(0, runtime.shard_group(0)->primary()).ok());

  // The shard keeps accepting and serving — the probe of the acceptance
  // criterion: no stop-the-world recovery on the failover path.
  for (size_t i = half; i < rw.defs.size(); ++i) {
    auto ticket = runtime.Submit(rw.defs[i]);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  for (SubmitTicket& ticket : tickets) {
    auto pid = ticket.Await();
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_EQ(stats.failovers, 1);
  EXPECT_EQ(stats.replica_divergences, 0);
  EXPECT_EQ(stats.replicas_evicted, 0);
  const int primary = runtime.shard_group(0)->primary();
  EXPECT_NE(primary, 0);
  EXPECT_EQ(stats.merged.processes_committed + stats.merged.processes_aborted,
            static_cast<int64_t>(rw.defs.size()));
  AuditShard(&runtime, 0);
  EXPECT_TRUE(rw.worlds[primary]->CheckAdtInvariants().ok());
}

// ---------------------------------------------------------------------------
// The sweep: a REAL WAL crash (via the fault injector) at every crash
// point of the initial primary's log. Each armed run must keep the shard
// serving on the survivors with zero availability loss — all submissions
// served, exactly one failover, audit clean.

TEST(ReplicaFailoverSweepTest, KillPrimaryAtEveryCrashPointKeepsServing) {
  constexpr uint64_t kSeed = 59;
  constexpr int kTenants = 2;
  constexpr int kPerTenant = 2;

  auto run_once = [&](testing::FaultInjector* injector,
                      RuntimeStats* stats_out, int* primary_out,
                      std::vector<Status>* results_out) -> Status {
    ReplicaWorlds rw =
        MakeReplicaWorlds(/*factor=*/3, kSeed, kTenants, kPerTenant);
    ShardedRuntimeOptions options;
    options.num_shards = 1;
    options.mode = TickMode::kLockstep;  // deterministic hit stream
    options.replication.factor = 3;
    options.replication.vote_every_rounds = 1;
    options.replication.replica_crash_listener = injector;
    options.replication.listener_replica = 0;  // the initial primary
    ShardedRuntime runtime(options);
    Status status = RegisterReplicas(&rw, &runtime);
    if (!status.ok()) return status;
    status = runtime.Start();
    if (!status.ok()) return status;
    std::vector<SubmitTicket> tickets;
    for (const ProcessDef* def : rw.defs) {
      auto ticket = runtime.Submit(def);
      if (!ticket.ok()) return ticket.status();
      tickets.push_back(*ticket);
    }
    status = runtime.Drain();
    if (!status.ok()) return status;
    for (SubmitTicket& ticket : tickets) {
      results_out->push_back(ticket.Await().status());
    }
    *stats_out = runtime.Stats();
    *primary_out = runtime.shard_group(0)->primary();
    Status stop = runtime.Stop();
    if (!stop.ok()) return stop;
    AuditShard(&runtime, 0);
    return rw.worlds[*primary_out]->CheckAdtInvariants();
  };

  // Dry run: count the crash-point hits of replica 0's WAL.
  testing::FaultInjector injector;
  injector.ArmAt(0);
  {
    RuntimeStats stats;
    int primary = 0;
    std::vector<Status> results;
    ASSERT_TRUE(run_once(&injector, &stats, &primary, &results).ok());
    ASSERT_EQ(stats.failovers, 0);
  }
  const int64_t total_hits = injector.hits();
  ASSERT_GT(total_hits, 0);

  // Armed runs, sampled down to a CI-friendly count while always covering
  // the first and last hit.
  const int64_t stride = std::max<int64_t>(1, total_hits / 24);
  std::cerr << "replica failover sweep: " << total_hits
            << " crash points, stride " << stride << "\n";
  for (int64_t hit = 1; hit <= total_hits; hit += stride) {
    SCOPED_TRACE("crash hit " + std::to_string(hit));
    injector.Reset();
    injector.ArmAt(hit);
    RuntimeStats stats;
    int primary = 0;
    std::vector<Status> results;
    Status status = run_once(&injector, &stats, &primary, &results);
    EXPECT_TRUE(status.ok()) << status;
    EXPECT_TRUE(injector.triggered());
    // Zero availability loss: every submission served by the survivors.
    for (const Status& result : results) {
      EXPECT_TRUE(result.ok()) << result;
    }
    EXPECT_EQ(stats.failovers, 1);
    EXPECT_EQ(stats.replica_divergences, 0);
    EXPECT_NE(primary, 0);
    EXPECT_EQ(stats.per_shard_replicas[0].live_replicas, 2);
    if (::testing::Test::HasFailure()) {
      std::string path = testing::WriteFailingSeed(
          "replica_failover_sweep", hit, injector.triggered_site(),
          StrCat("seed=", kSeed, " crash_hit=", hit,
                 " ctest -R ReplicaFailoverSweep"));
      std::cerr << "sweep failed at crash hit " << hit << " (site "
                << injector.triggered_site() << "); reproducer written to "
                << path << "\n";
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Failover + respawn round trip in free-running mode: the killed primary
// is rebuilt from the promoted one and rejoins as a clean follower.

TEST(ReplicaFailoverTest, RespawnAfterFailoverRestoresTheQuorum) {
  constexpr uint64_t kSeed = 61;
  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/3, kSeed,
                                       /*tenants=*/2, /*per_tenant=*/1);
  std::vector<const ProcessDef*> wave2 =
      BuildWorkloadRounds(rw.worlds[0].get(), 1, 2);
  (void)BuildWorkloadRounds(rw.worlds[1].get(), 1, 2);
  (void)BuildWorkloadRounds(rw.worlds[2].get(), 1, 2);

  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kFreeRunning;
  options.replication.factor = 3;
  options.replication.vote_every_rounds = 1;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    EXPECT_TRUE(ticket->Await().ok());
  }
  ASSERT_TRUE(runtime.KillReplica(0, runtime.shard_group(0)->primary()).ok());
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_EQ(runtime.shard_group(0)->primary(), 1);

  ASSERT_TRUE(runtime.RespawnReplica(0, 0, rw.worlds[0]->DefsByName()).ok());
  EXPECT_EQ(runtime.shard_group(0)->replica_state(0), ReplicaState::kActive);
  // Respawn rebuilds the dead replica but does not steal primaryship back.
  EXPECT_EQ(runtime.shard_group(0)->primary(), 1);

  std::vector<SubmitTicket> tickets;
  for (const ProcessDef* def : wave2) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  for (SubmitTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.Await().ok());
  }
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_EQ(stats.failovers, 1);
  EXPECT_EQ(stats.replica_divergences, 0);
  EXPECT_EQ(stats.per_shard_replicas[0].live_replicas, 3);
  // All three replicas agree on the final store.
  const uint64_t fp =
      runtime.replica_scheduler(0, 1)->SubsystemStateFingerprint();
  EXPECT_EQ(runtime.replica_scheduler(0, 0)->SubsystemStateFingerprint(), fp);
  EXPECT_EQ(runtime.replica_scheduler(0, 2)->SubsystemStateFingerprint(), fp);
  AuditShard(&runtime, 0);
  EXPECT_TRUE(rw.worlds[1]->CheckAdtInvariants().ok());
}

// ---------------------------------------------------------------------------
// TSan soak: concurrent producers, a kill (sometimes of the primary) in
// the middle of the run, full audit per iteration. Fresh seeds per run;
// override via TPM_REPLICA_SEED_BASE / TPM_REPLICA_SOAK_ITERS in CI.

TEST(ReplicaSoakTest, FailoverUnderConcurrentProducersPreservesInvariants) {
  const char* base_env = std::getenv("TPM_REPLICA_SEED_BASE");
  const char* iters_env = std::getenv("TPM_REPLICA_SOAK_ITERS");
  const uint64_t seed_base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 4321;
  const int iterations = iters_env != nullptr ? std::atoi(iters_env) : 2;
  constexpr int kShards = 2;
  constexpr int kFactor = 3;

  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ReplicaWorlds rw = MakeReplicaWorlds(kFactor, seed, /*tenants=*/4,
                                         /*per_tenant=*/3,
                                         /*initial_tokens=*/32);
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.queue_capacity = 16;  // backpressure engages
    options.replication.factor = kFactor;
    options.replication.vote_every_rounds = 2;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());

    const int kill_shard = static_cast<int>(seed % kShards);
    const int kill_replica = static_cast<int>(seed % kFactor);
    constexpr int kProducers = 3;
    std::atomic<size_t> next{0};
    std::atomic<int> submit_failures{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= rw.defs.size()) break;
          auto ticket = runtime.Submit(rw.defs[i]);
          if (!ticket.ok() || !ticket->Await().ok()) {
            submit_failures.fetch_add(1);
          }
        }
      });
    }
    // Kill one replica once the run is roughly half submitted.
    while (next.load() < rw.defs.size() / 2) std::this_thread::yield();
    ASSERT_TRUE(runtime.KillReplica(kill_shard, kill_replica).ok());
    for (auto& t : producers) t.join();
    ASSERT_TRUE(runtime.Drain().ok());
    RuntimeStats stats = runtime.Stats();
    ASSERT_TRUE(runtime.Stop().ok());

    EXPECT_EQ(submit_failures.load(), 0);
    EXPECT_EQ(stats.merged.processes_committed +
                  stats.merged.processes_aborted,
              static_cast<int64_t>(rw.defs.size()));
    EXPECT_EQ(stats.failovers, kill_replica == 0 ? 1 : 0);
    EXPECT_EQ(stats.replica_divergences, 0);
    EXPECT_EQ(stats.replicas_evicted, 0);
    for (int s = 0; s < kShards; ++s) AuditShard(&runtime, s);
    // A replica index alive on EVERY shard holds the complete final
    // state; the killed one is stale on kill_shard only.
    const int intact = (kill_replica + 1) % kFactor;
    EXPECT_TRUE(rw.worlds[intact]->CheckAdtInvariants().ok());

    if (::testing::Test::HasFailure()) {
      std::string path = testing::WriteFailingSeed(
          "replica_failover_soak", iter, "ReplicaSoakTest",
          StrCat("TPM_REPLICA_SEED_BASE=", seed,
                 " TPM_REPLICA_SOAK_ITERS=1 ctest -R ReplicaSoak"));
      std::cerr << "soak failed at seed " << seed << "; reproducer written to "
                << path << "\n";
      break;
    }
  }
}

}  // namespace
}  // namespace tpm
