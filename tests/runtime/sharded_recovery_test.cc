// Sharded crash recovery: every shard writes its own file WAL; after a
// mid-flight kill, a fresh runtime over the same WAL directory recovers
// every shard concurrently and the per-shard self-check (PRED + Proc-REC)
// plus the cross-ADT invariants must hold.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

std::vector<const ProcessDef*> MakeMix(ShardedWorld* world, int per_tenant) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < per_tenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, "order_t" + std::to_string(t) + "_" + std::to_string(round)));
      defs.push_back(world->MakeConsumeProcess(
          t, "consume_t" + std::to_string(t) + "_" + std::to_string(round)));
      defs.push_back(world->MakeRefillProcess(
          t, "refill_t" + std::to_string(t) + "_" + std::to_string(round)));
    }
  }
  return defs;
}

std::string FreshWalDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "sharded_recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// Crash the runtime at a range of lockstep cut points; at each cut the
// second incarnation must recover every shard WAL to a consistent state.
TEST(ShardedRecoveryTest, KillAtEveryTickRecoversEveryShard) {
  constexpr int kTenants = 3;
  constexpr int kShards = 3;
  for (int crash_at = 1; crash_at <= 12; ++crash_at) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
    const std::string wal_dir =
        FreshWalDir("tick_" + std::to_string(crash_at));
    // The world (subsystem state) survives the scheduler crash — the
    // paper's model: subsystems keep orphaned effects and prepared
    // branches; only the scheduler incarnation dies.
    ShardedWorld world({.seed = 31, .num_tenants = kTenants});
    std::vector<const ProcessDef*> defs = MakeMix(&world, 2);

    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kLockstep;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    {
      ShardedRuntime runtime(options);
      ASSERT_TRUE(world.RegisterAll(&runtime).ok());
      ASSERT_TRUE(runtime.Start().ok());
      for (const ProcessDef* def : defs) {
        ASSERT_TRUE(runtime.Submit(def).ok());
      }
      ASSERT_TRUE(runtime.Tick(crash_at).ok());
      // Kill: no drain, workers stop mid-schedule, queued work fails.
      ASSERT_TRUE(runtime.Stop().ok());
      // Each shard produced its own WAL file.
      for (int s = 0; s < kShards; ++s) {
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(wal_dir) /
            ("shard-" + std::to_string(s) + ".wal")))
            << "shard " << s;
      }
    }

    // Second incarnation: same configuration => same deterministic
    // partition, so shard i's WAL meets shard i's subsystems again.
    ShardedRuntime recovered(options);
    ASSERT_TRUE(world.RegisterAll(&recovered).ok());
    ASSERT_TRUE(recovered.Start().ok());
    auto defs_by_name = world.DefsByName();
    // Recover replays all shard WALs concurrently; with verify_recovery
    // (default) each shard asserts PRED + Proc-REC on its own recovered
    // history before reporting success.
    ASSERT_TRUE(recovered.Recover(defs_by_name).ok());

    // The ADT invariants must hold across every tenant after recovery.
    EXPECT_TRUE(world.CheckAdtInvariants().ok());

    // The recovered runtime accepts and completes new work.
    const ProcessDef* post = world.MakeRefillProcess(0, "post_recovery");
    auto ticket = recovered.Submit(post);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    ASSERT_TRUE(recovered.Drain().ok());
    auto pid = ticket->Await();
    ASSERT_TRUE(pid.ok()) << pid.status();
    ASSERT_TRUE(recovered.Stop().ok());
    EXPECT_EQ(recovered.shard_scheduler(ticket->shard)->OutcomeOf(*pid),
              ProcessOutcome::kCommitted);
    // Explicit re-check from the outside, same criteria the internal
    // verify ran: PRED on each shard history, Proc-REC on its committed
    // projection.
    for (int s = 0; s < kShards; ++s) {
      TransactionalProcessScheduler* scheduler = recovered.shard_scheduler(s);
      auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
      ASSERT_TRUE(pred.ok());
      EXPECT_TRUE(*pred) << "shard " << s;
      EXPECT_TRUE(IsProcessRecoverable(
          CommittedProjection(scheduler->history()),
          scheduler->conflict_spec()))
          << "shard " << s;
    }
    std::filesystem::remove_all(wal_dir);
  }
}

// A clean (fully drained) shutdown recovers to a no-op: nothing in flight,
// nothing compensated, stats show zero recovery anomalies.
TEST(ShardedRecoveryTest, RecoveryAfterCleanDrainIsANoOp) {
  const std::string wal_dir = FreshWalDir("clean");
  ShardedWorld world({.seed = 37, .num_tenants = 2});
  std::vector<const ProcessDef*> defs = MakeMix(&world, 1);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kLockstep;
  options.log_mode = ShardLogMode::kFile;
  options.wal_dir = wal_dir;
  int64_t committed_before = 0;
  {
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    for (const ProcessDef* def : defs) {
      ASSERT_TRUE(runtime.Submit(def).ok());
    }
    ASSERT_TRUE(runtime.Drain().ok());
    committed_before = runtime.Stats().merged.processes_committed;
    ASSERT_TRUE(runtime.Stop().ok());
  }
  ASSERT_GT(committed_before, 0);

  ShardedRuntime recovered(options);
  ASSERT_TRUE(world.RegisterAll(&recovered).ok());
  ASSERT_TRUE(recovered.Start().ok());
  ASSERT_TRUE(recovered.Recover(world.DefsByName()).ok());
  RuntimeStats stats = recovered.Stats();
  // Replay rebuilds terminal states without re-running work: no
  // compensations, no anomalies (the drain was clean).
  EXPECT_EQ(stats.merged.compensations, 0);
  EXPECT_EQ(stats.merged.recovered_log_anomalies, 0);
  ASSERT_TRUE(recovered.Stop().ok());
  // Every previously committed process is recorded committed again in the
  // recovered shard histories.
  int64_t committed_after = 0;
  for (int s = 0; s < options.num_shards; ++s) {
    const ProcessSchedule& history =
        recovered.shard_scheduler(s)->history();
    for (const auto& [pid, def] : history.processes()) {
      if (history.IsProcessCommitted(pid)) ++committed_after;
    }
  }
  EXPECT_EQ(committed_after, committed_before);
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
  std::filesystem::remove_all(wal_dir);
}

// Recover must fail loudly, not silently, when a shard WAL is corrupted.
TEST(ShardedRecoveryTest, ReportsWhichShardFailsVerification) {
  const std::string wal_dir = FreshWalDir("corrupt");
  ShardedWorld world({.seed = 41, .num_tenants = 2});
  std::vector<const ProcessDef*> defs = MakeMix(&world, 1);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kLockstep;
  options.log_mode = ShardLogMode::kFile;
  options.wal_dir = wal_dir;
  {
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    for (const ProcessDef* def : defs) {
      ASSERT_TRUE(runtime.Submit(def).ok());
    }
    ASSERT_TRUE(runtime.Tick(3).ok());
    ASSERT_TRUE(runtime.Stop().ok());
  }
  // Recover against EMPTY defs: every BEGIN record references an unknown
  // def name, which the per-shard replay must surface as an error naming
  // the shard.
  ShardedRuntime recovered(options);
  ASSERT_TRUE(world.RegisterAll(&recovered).ok());
  ASSERT_TRUE(recovered.Start().ok());
  std::map<std::string, const ProcessDef*> empty;
  Status status = recovered.Recover(empty);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shard "), std::string::npos) << status;
  ASSERT_TRUE(recovered.Stop().ok());
  std::filesystem::remove_all(wal_dir);
}

}  // namespace
}  // namespace tpm
