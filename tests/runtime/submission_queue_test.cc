#include "runtime/submission_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace tpm {
namespace {

Submission Make(int64_t param) {
  Submission s;
  s.param = param;
  return s;
}

TEST(SubmissionQueueTest, FifoOrderSurvivesDrain) {
  SubmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push(Make(i), BackpressurePolicy::kReject).ok());
  }
  EXPECT_EQ(queue.size(), 5u);
  std::vector<Submission> drained = queue.DrainAll();
  ASSERT_EQ(drained.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(drained[i].param, i);
  EXPECT_TRUE(queue.empty());
}

TEST(SubmissionQueueTest, RejectPolicyFailsWhenFull) {
  SubmissionQueue queue(2);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kReject).ok());
  ASSERT_TRUE(queue.Push(Make(2), BackpressurePolicy::kReject).ok());
  Status full = queue.Push(Make(3), BackpressurePolicy::kReject);
  EXPECT_TRUE(full.IsResourceExhausted()) << full;
  // Draining frees capacity again.
  (void)queue.DrainAll();
  EXPECT_TRUE(queue.Push(Make(4), BackpressurePolicy::kReject).ok());
}

TEST(SubmissionQueueTest, BlockPolicyWaitsForCapacity) {
  SubmissionQueue queue(1);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kBlock).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    Status status = queue.Push(Make(2), BackpressurePolicy::kBlock);
    EXPECT_TRUE(status.ok()) << status;
    pushed.store(true);
  });
  // The producer must be parked on the full queue. (A sleep cannot prove
  // blocking, but it keeps the race window honest without flaking.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<Submission> first = queue.DrainAll();
  ASSERT_EQ(first.size(), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  std::vector<Submission> second = queue.DrainAll();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].param, 2);
}

TEST(SubmissionQueueTest, CloseRejectsPushesAndWakesBlockedProducers) {
  SubmissionQueue queue(1);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kBlock).ok());
  Status woken;
  std::thread producer(
      [&] { woken = queue.Push(Make(2), BackpressurePolicy::kBlock); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_TRUE(woken.IsUnavailable()) << woken;
  // Closed queue refuses new work under either policy...
  EXPECT_TRUE(queue.Push(Make(3), BackpressurePolicy::kReject).IsUnavailable());
  EXPECT_TRUE(queue.Push(Make(4), BackpressurePolicy::kBlock).IsUnavailable());
  // ...but what was queued stays drainable for shutdown bookkeeping.
  EXPECT_EQ(queue.DrainAll().size(), 1u);
}

TEST(SubmissionQueueTest, ManyProducersAllLand) {
  SubmissionQueue queue(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.Push(Make(p * kPerProducer + i), BackpressurePolicy::kBlock)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  int drained = 0;
  while (drained < kProducers * kPerProducer) {
    drained += static_cast<int>(queue.DrainAll().size());
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace tpm
