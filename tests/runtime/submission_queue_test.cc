#include "runtime/submission_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace tpm {
namespace {

Submission Make(int64_t param) {
  Submission s;
  s.param = param;
  return s;
}

TEST(SubmissionQueueTest, FifoOrderSurvivesDrain) {
  SubmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push(Make(i), BackpressurePolicy::kReject).ok());
  }
  EXPECT_EQ(queue.size(), 5u);
  std::vector<Submission> drained = queue.DrainAll();
  ASSERT_EQ(drained.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(drained[i].param, i);
  EXPECT_TRUE(queue.empty());
}

TEST(SubmissionQueueTest, RejectPolicyFailsWhenFull) {
  SubmissionQueue queue(2);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kReject).ok());
  ASSERT_TRUE(queue.Push(Make(2), BackpressurePolicy::kReject).ok());
  Status full = queue.Push(Make(3), BackpressurePolicy::kReject);
  EXPECT_TRUE(full.IsResourceExhausted()) << full;
  // Draining frees capacity again.
  (void)queue.DrainAll();
  EXPECT_TRUE(queue.Push(Make(4), BackpressurePolicy::kReject).ok());
}

TEST(SubmissionQueueTest, BlockPolicyWaitsForCapacity) {
  SubmissionQueue queue(1);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kBlock).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    Status status = queue.Push(Make(2), BackpressurePolicy::kBlock);
    EXPECT_TRUE(status.ok()) << status;
    pushed.store(true);
  });
  // The producer must be parked on the full queue. (A sleep cannot prove
  // blocking, but it keeps the race window honest without flaking.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<Submission> first = queue.DrainAll();
  ASSERT_EQ(first.size(), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  std::vector<Submission> second = queue.DrainAll();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].param, 2);
}

TEST(SubmissionQueueTest, CloseRejectsPushesAndWakesBlockedProducers) {
  SubmissionQueue queue(1);
  ASSERT_TRUE(queue.Push(Make(1), BackpressurePolicy::kBlock).ok());
  Status woken;
  std::thread producer(
      [&] { woken = queue.Push(Make(2), BackpressurePolicy::kBlock); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_TRUE(woken.IsUnavailable()) << woken;
  // Closed queue refuses new work under either policy...
  EXPECT_TRUE(queue.Push(Make(3), BackpressurePolicy::kReject).IsUnavailable());
  EXPECT_TRUE(queue.Push(Make(4), BackpressurePolicy::kBlock).IsUnavailable());
  // ...but what was queued stays drainable for shutdown bookkeeping.
  EXPECT_EQ(queue.DrainAll().size(), 1u);
}

// The class header promises FIFO: admission order equals push order, which
// is what makes lockstep runs replayable. Under backpressure that means a
// producer already parked in a kBlock Push must get the freed slot before
// any producer that arrives later — a late arrival must not barge past the
// waiter just because it reached the mutex first after DrainAll's wakeup.
TEST(SubmissionQueueTest, BlockedProducersAdmitInArrivalOrderUnderBackpressure) {
  constexpr int kIterations = 200;
  int violations = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    SubmissionQueue queue(1);
    ASSERT_TRUE(queue.Push(Make(-1), BackpressurePolicy::kReject).ok());
    std::thread waiter([&] {
      Status status = queue.Push(Make(1), BackpressurePolicy::kBlock);
      EXPECT_TRUE(status.ok()) << status;
    });
    // Wait until the first producer is provably parked on the full queue,
    // THEN start the second — its arrival order is now pinned down.
    while (queue.blocked_producers() < 1) std::this_thread::yield();
    std::thread late([&] {
      Status status = queue.Push(Make(2), BackpressurePolicy::kBlock);
      EXPECT_TRUE(status.ok()) << status;
    });
    while (queue.blocked_producers() < 2) std::this_thread::yield();
    // Free one slot. Both producers wake and contend for it; FIFO demands
    // the earlier arrival wins, every time.
    std::vector<Submission> filler = queue.DrainAll();
    ASSERT_EQ(filler.size(), 1u);
    ASSERT_EQ(filler[0].param, -1);
    std::vector<Submission> admitted;
    while (admitted.size() < 2u) {
      for (Submission& s : queue.DrainAll()) admitted.push_back(std::move(s));
      std::this_thread::yield();
    }
    waiter.join();
    late.join();
    ASSERT_EQ(admitted.size(), 2u);
    if (admitted[0].param != 1) ++violations;
  }
  EXPECT_EQ(violations, 0)
      << violations << "/" << kIterations
      << " iterations admitted the late producer ahead of the parked one";
}

// Per-producer order is the replayability invariant the sharded runtime
// leans on: each front-end thread's submissions must reach the shard
// scheduler in the order that thread pushed them, even when every push
// fights for capacity.
TEST(SubmissionQueueTest, PerProducerOrderHoldsAtCapacity) {
  SubmissionQueue queue(2);  // far below the offered load: constant backpressure
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.Push(Make(p * kPerProducer + i), BackpressurePolicy::kBlock)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::vector<int64_t> admitted;
  while (admitted.size() < size_t{kProducers} * kPerProducer) {
    for (Submission& s : queue.DrainAll()) admitted.push_back(s.param);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(queue.empty());
  // No loss, no duplication, and each producer's items in push order.
  std::vector<int> next(kProducers, 0);
  for (int64_t param : admitted) {
    int producer = static_cast<int>(param / kPerProducer);
    int index = static_cast<int>(param % kPerProducer);
    ASSERT_LT(producer, kProducers);
    EXPECT_EQ(index, next[producer])
        << "producer " << producer << " admitted out of push order";
    next[producer] = index + 1;
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

TEST(SubmissionQueueTest, CloseWakesEveryBlockedProducerWithUnavailable) {
  SubmissionQueue queue(1);
  ASSERT_TRUE(queue.Push(Make(0), BackpressurePolicy::kReject).ok());
  constexpr int kBlocked = 4;
  std::vector<std::thread> producers;
  std::vector<Status> results(kBlocked);
  for (int p = 0; p < kBlocked; ++p) {
    producers.emplace_back([&, p] {
      results[p] = queue.Push(Make(p + 1), BackpressurePolicy::kBlock);
    });
  }
  while (queue.blocked_producers() < kBlocked) std::this_thread::yield();
  queue.Close();
  for (auto& t : producers) t.join();
  for (int p = 0; p < kBlocked; ++p) {
    EXPECT_TRUE(results[p].IsUnavailable()) << "producer " << p << ": "
                                            << results[p];
  }
  // The item admitted before Close stays drainable for shutdown cleanup.
  EXPECT_EQ(queue.DrainAll().size(), 1u);
}

TEST(SubmissionQueueTest, CapacityOneQueueRoundTripsEverySubmission) {
  SubmissionQueue queue(1);
  EXPECT_EQ(queue.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(Make(i), BackpressurePolicy::kReject).ok());
    EXPECT_TRUE(queue.Push(Make(-1), BackpressurePolicy::kReject)
                    .IsResourceExhausted());
    std::vector<Submission> drained = queue.DrainAll();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].param, i);
  }
  EXPECT_TRUE(queue.empty());
}

// Shutdown contract: submissions still queued at Close are drainable, and
// the worker fails their promises — a producer holding the ticket future
// must observe the error, not hang.
TEST(SubmissionQueueTest, DrainAfterCloseFailsLeftoverPromises) {
  SubmissionQueue queue(4);
  std::vector<std::shared_future<Result<ProcessId>>> futures;
  for (int i = 0; i < 3; ++i) {
    Submission s = Make(i);
    futures.push_back(s.result.get_future().share());
    ASSERT_TRUE(queue.Push(std::move(s), BackpressurePolicy::kBlock).ok());
  }
  queue.Close();
  std::vector<Submission> leftovers = queue.DrainAll();
  ASSERT_EQ(leftovers.size(), 3u);
  for (Submission& s : leftovers) {
    s.result.set_value(Status::Unavailable("shard stopped before admission"));
  }
  for (auto& future : futures) {
    Result<ProcessId> outcome = future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_TRUE(outcome.status().IsUnavailable()) << outcome.status();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(SubmissionQueueTest, ManyProducersAllLand) {
  SubmissionQueue queue(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.Push(Make(p * kPerProducer + i), BackpressurePolicy::kBlock)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  int drained = 0;
  while (drained < kProducers * kPerProducer) {
    drained += static_cast<int>(queue.DrainAll().size());
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace tpm
