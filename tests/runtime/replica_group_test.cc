// Replicated shards, part 1: voter semantics, lockstep bit-equivalence of
// every replica against solo schedulers, divergence detection + eviction
// (follower and primary corruption), replica counters through the stats
// fan-in and the shard-tagged observer relay, spanning rejection, total
// death, and respawn rejoin.

#include "runtime/replica_group.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "runtime/sharded_runtime.h"
#include "runtime/voter.h"
#include "testing/divergence_injector.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

// The canonical mixed workload over tick rounds [begin, end): order /
// consume / refill per tenant per round, in a fixed global order — the
// same shape the unreplicated equivalence tests use, with a round range so
// a test can mint a second wave with fresh names after a respawn.
std::vector<const ProcessDef*> BuildWorkloadRounds(ShardedWorld* world,
                                                   int begin, int end) {
  std::vector<const ProcessDef*> defs;
  for (int round = begin; round < end; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      const ProcessDef* order = world->MakeOrderProcess(
          t, "order_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      const ProcessDef* consume = world->MakeConsumeProcess(
          t, "consume_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      const ProcessDef* refill = world->MakeRefillProcess(
          t, "refill_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      EXPECT_NE(order, nullptr);
      EXPECT_NE(consume, nullptr);
      EXPECT_NE(refill, nullptr);
      defs.push_back(order);
      defs.push_back(consume);
      defs.push_back(refill);
    }
  }
  return defs;
}

// R mirror worlds with the identical seed and identical Make sequence (so
// they mint identical ServiceIds), each registered as one replica.
struct ReplicaWorlds {
  std::vector<std::unique_ptr<ShardedWorld>> worlds;
  // Replica 0's defs — the submission set (all replicas execute the same
  // immutable definitions; footprints resolve against their own stores).
  std::vector<const ProcessDef*> defs;
};

ReplicaWorlds MakeReplicaWorlds(int factor, uint64_t seed, int tenants,
                                int per_tenant) {
  ReplicaWorlds rw;
  for (int r = 0; r < factor; ++r) {
    rw.worlds.push_back(std::make_unique<ShardedWorld>(
        ShardedWorldOptions{.seed = seed, .num_tenants = tenants}));
    std::vector<const ProcessDef*> defs =
        BuildWorkloadRounds(rw.worlds.back().get(), 0, per_tenant);
    if (r == 0) rw.defs = std::move(defs);
  }
  return rw;
}

Status RegisterReplicas(ReplicaWorlds* rw, ShardedRuntime* runtime) {
  for (size_t r = 0; r < rw->worlds.size(); ++r) {
    Status status =
        rw->worlds[r]->RegisterAllAsReplica(runtime, static_cast<int>(r));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

VoteDigest MakeDigest(uint64_t h) { return VoteDigest{h, h * 31, h * 131}; }

// ---------------------------------------------------------------------------
// Voter unit semantics.

TEST(VoterTest, MajorityWinsAndTheOddOneOutLoses) {
  Voter voter;
  voter.SubmitVote(0, 0, MakeDigest(1));
  voter.SubmitVote(0, 1, MakeDigest(1));
  voter.SubmitVote(0, 2, MakeDigest(2));
  auto outcomes = voter.TakeCompleted({0, 1, 2}, /*tiebreak_replica=*/0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].round, 0);
  EXPECT_EQ(outcomes[0].winner, MakeDigest(1));
  ASSERT_EQ(outcomes[0].losers.size(), 1u);
  EXPECT_EQ(outcomes[0].losers[0], 2);
  EXPECT_EQ(voter.pending_rounds(), 0);
}

TEST(VoterTest, TwoWayTieKeepsTheTiebreakReplicasSide) {
  // R=2 split 1:1 is unattributable; the group keeps the acting primary's
  // side and evicts the other — by construction, not by evidence.
  Voter voter;
  voter.SubmitVote(3, 0, MakeDigest(7));
  voter.SubmitVote(3, 1, MakeDigest(8));
  auto outcomes = voter.TakeCompleted({0, 1}, /*tiebreak_replica=*/0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].winner, MakeDigest(7));
  ASSERT_EQ(outcomes[0].losers.size(), 1u);
  EXPECT_EQ(outcomes[0].losers[0], 1);

  voter.SubmitVote(4, 0, MakeDigest(7));
  voter.SubmitVote(4, 1, MakeDigest(8));
  outcomes = voter.TakeCompleted({0, 1}, /*tiebreak_replica=*/1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].winner, MakeDigest(8));
  ASSERT_EQ(outcomes[0].losers.size(), 1u);
  EXPECT_EQ(outcomes[0].losers[0], 0);
}

TEST(VoterTest, RoundsWaitForEveryLiveVoter) {
  Voter voter;
  voter.SubmitVote(0, 0, MakeDigest(1));
  EXPECT_TRUE(voter.TakeCompleted({0, 1}, 0).empty());
  EXPECT_EQ(voter.pending_rounds(), 1);
  voter.SubmitVote(0, 1, MakeDigest(1));
  auto outcomes = voter.TakeCompleted({0, 1}, 0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].losers.empty());
}

TEST(VoterTest, RemoveReplicaMakesItsRoundsCompletable) {
  // A replica that dies mid-round must not wedge the vote: dropping it
  // lets the survivors' ballots complete the round.
  Voter voter;
  voter.SubmitVote(0, 0, MakeDigest(5));
  voter.SubmitVote(0, 1, MakeDigest(5));
  EXPECT_TRUE(voter.TakeCompleted({0, 1, 2}, 0).empty());
  voter.RemoveReplica(2);
  auto outcomes = voter.TakeCompleted({0, 1}, 0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].losers.empty());
  EXPECT_EQ(outcomes[0].winner, MakeDigest(5));
}

TEST(VoterTest, ResetForgetsEverything) {
  Voter voter;
  voter.SubmitVote(0, 0, MakeDigest(1));
  voter.SubmitVote(1, 0, MakeDigest(2));
  EXPECT_EQ(voter.pending_rounds(), 2);
  voter.Reset();
  EXPECT_EQ(voter.pending_rounds(), 0);
  EXPECT_TRUE(voter.TakeCompleted({0}, 0).empty());
}

// ---------------------------------------------------------------------------
// Lockstep bit-equivalence: every replica of a replicated lockstep run
// matches a solo single-threaded scheduler fed the same per-shard
// submission sequence — the determinism claim the voter relies on.

TEST(ReplicaGroupTest, ReplicatedLockstepMatchesSoloBitExactly) {
  constexpr int kTenants = 4;
  constexpr int kShards = 2;
  constexpr uint64_t kSeed = 11;

  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, kSeed, kTenants,
                                       /*per_tenant=*/2);
  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kLockstep;
  options.replication.factor = 2;
  options.replication.vote_every_rounds = 2;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  ASSERT_TRUE(runtime.replicated());

  std::vector<std::vector<std::string>> routed_names(kShards);
  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    routed_names[ticket->shard].push_back(def->name());
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  // A healthy replicated run: votes happened, nothing diverged.
  EXPECT_GT(stats.vote_rounds, 0);
  EXPECT_EQ(stats.replica_divergences, 0);
  EXPECT_EQ(stats.replicas_evicted, 0);
  EXPECT_EQ(stats.failovers, 0);
  ASSERT_EQ(stats.per_shard_replicas.size(), static_cast<size_t>(kShards));
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(stats.per_shard_replicas[s].live_replicas, 2) << "shard " << s;
    EXPECT_EQ(stats.per_shard_replicas[s].primary, 0) << "shard " << s;
  }

  std::vector<std::vector<int>> tenants_of_shard(kShards);
  for (int t = 0; t < kTenants; ++t) {
    const int shard = runtime.partition().ShardOfService(
        runtime.union_spec(), rw.worlds[0]->TenantServices(t)[0]);
    ASSERT_GE(shard, 0);
    tenants_of_shard[shard].push_back(t);
  }

  for (int s = 0; s < kShards; ++s) {
    ShardedWorld mirror({.seed = kSeed, .num_tenants = kTenants});
    (void)BuildWorkloadRounds(&mirror, 0, 2);
    auto mirror_by_name = mirror.DefsByName();
    TransactionalProcessScheduler solo;
    for (int t : tenants_of_shard[s]) {
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.kv(t)).ok());
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.escrow(t)).ok());
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.queue(t)).ok());
    }
    for (const std::string& name : routed_names[s]) {
      ASSERT_TRUE(solo.Submit(mirror_by_name.at(name)).ok()) << name;
    }
    if (!routed_names[s].empty()) {
      for (;;) {
        auto more = solo.Step();
        ASSERT_TRUE(more.ok());
        if (!*more) break;
      }
    }
    const uint64_t solo_fp = Fnv1a(solo.history().ToString());
    // BOTH replicas, not just the primary: the whole group tracked the
    // solo baseline bit for bit.
    for (int r = 0; r < 2; ++r) {
      TransactionalProcessScheduler* replica = runtime.replica_scheduler(s, r);
      ASSERT_NE(replica, nullptr);
      EXPECT_EQ(Fnv1a(replica->history().ToString()), solo_fp)
          << "shard " << s << " replica " << r << " history diverged";
    }
    EXPECT_TRUE(stats.per_shard[s] == solo.stats())
        << "shard " << s << " stats diverged";
  }
}

// ---------------------------------------------------------------------------
// Divergence detection. A follower is silently corrupted mid-run; the
// voter catches it at the next boundary and evicts it, and because only
// the acting primary's results and events are ever released, the
// corruption has NO externally visible effect.

TEST(ReplicaGroupTest, CorruptedFollowerIsEvictedWithNoVisibleEffect) {
  constexpr int kTenants = 2;
  constexpr uint64_t kSeed = 17;

  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, kSeed, kTenants,
                                       /*per_tenant=*/2);
  testing::DivergenceInjector injector;
  // The corruption: a stray write into replica 1's tenant-0 KV store,
  // executed on replica 1's own worker thread at the 3rd WAL touch — a
  // model of a bit-flip that damages state without crashing anything.
  ShardedWorld* follower_world = rw.worlds[1].get();
  injector.ArmAt(3, [follower_world] {
    follower_world->kv(0)->store().Put("t0/poison", 99);
  });

  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  options.replication.factor = 2;
  options.replication.vote_every_rounds = 1;  // catch at the next boundary
  options.replication.replica_crash_listener = &injector;
  options.replication.listener_replica = 1;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  std::vector<SubmitTicket> tickets;
  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();

  // Every submission was served despite the eviction.
  for (SubmitTicket& ticket : tickets) {
    auto pid = ticket.Await();
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_TRUE(injector.corrupted());
  EXPECT_EQ(stats.replica_divergences, 1);
  EXPECT_EQ(stats.replicas_evicted, 1);
  EXPECT_EQ(stats.failovers, 0);  // the primary never wavered
  EXPECT_GE(stats.vote_rounds, 1);
  ReplicaGroup* group = runtime.shard_group(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->replica_state(1), ReplicaState::kEvicted);
  EXPECT_EQ(group->replica_state(0), ReplicaState::kActive);
  EXPECT_EQ(group->primary(), 0);

  // The stores really did diverge — that's what the vote saw...
  TransactionalProcessScheduler* primary = runtime.replica_scheduler(0, 0);
  TransactionalProcessScheduler* evicted = runtime.replica_scheduler(0, 1);
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(evicted, nullptr);
  EXPECT_NE(primary->SubsystemStateFingerprint(),
            evicted->SubsystemStateFingerprint());

  // ...but externally the run is indistinguishable from a healthy solo
  // run: the primary's history matches the solo baseline bit for bit.
  ShardedWorld mirror({.seed = kSeed, .num_tenants = kTenants});
  (void)BuildWorkloadRounds(&mirror, 0, 2);
  auto mirror_by_name = mirror.DefsByName();
  TransactionalProcessScheduler solo;
  ASSERT_TRUE(mirror.RegisterAllSolo(&solo).ok());
  for (const ProcessDef* def : rw.defs) {
    ASSERT_TRUE(solo.Submit(mirror_by_name.at(def->name())).ok());
  }
  for (;;) {
    auto more = solo.Step();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_EQ(Fnv1a(primary->history().ToString()),
            Fnv1a(solo.history().ToString()));
  EXPECT_TRUE(rw.worlds[0]->CheckAdtInvariants().ok());
}

// With R=3 the majority attributes the corruption even when it strikes
// the PRIMARY: the two healthy followers outvote it, the primary is
// evicted, and a follower is promoted — serving continues.

TEST(ReplicaGroupTest, CorruptedPrimaryIsOutvotedAndReplaced) {
  constexpr int kTenants = 2;
  constexpr uint64_t kSeed = 23;

  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/3, kSeed, kTenants,
                                       /*per_tenant=*/2);
  testing::DivergenceInjector injector;
  ShardedWorld* primary_world = rw.worlds[0].get();
  injector.ArmAt(3, [primary_world] {
    primary_world->kv(0)->store().Put("t0/poison", 99);
  });

  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  options.replication.factor = 3;
  options.replication.vote_every_rounds = 1;
  options.replication.replica_crash_listener = &injector;
  options.replication.listener_replica = 0;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  std::vector<SubmitTicket> tickets;
  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  for (SubmitTicket& ticket : tickets) {
    auto pid = ticket.Await();
    EXPECT_TRUE(pid.ok()) << pid.status();
  }
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_TRUE(injector.corrupted());
  EXPECT_EQ(stats.replica_divergences, 1);
  EXPECT_EQ(stats.replicas_evicted, 1);
  EXPECT_EQ(stats.failovers, 1);  // eviction of the primary promoted 1
  ReplicaGroup* group = runtime.shard_group(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->replica_state(0), ReplicaState::kEvicted);
  EXPECT_EQ(group->replica_state(1), ReplicaState::kActive);
  EXPECT_EQ(group->replica_state(2), ReplicaState::kActive);
  EXPECT_EQ(group->primary(), 1);

  // The healthy majority agrees with itself and with the solo baseline;
  // the evicted replica's store stands apart.
  TransactionalProcessScheduler* r0 = runtime.replica_scheduler(0, 0);
  TransactionalProcessScheduler* r1 = runtime.replica_scheduler(0, 1);
  TransactionalProcessScheduler* r2 = runtime.replica_scheduler(0, 2);
  EXPECT_EQ(r1->SubsystemStateFingerprint(), r2->SubsystemStateFingerprint());
  EXPECT_NE(r0->SubsystemStateFingerprint(), r1->SubsystemStateFingerprint());
  EXPECT_EQ(Fnv1a(r1->history().ToString()), Fnv1a(r2->history().ToString()));

  auto pred = IsPRED(r1->history(), r1->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
  EXPECT_TRUE(IsProcessRecoverable(CommittedProjection(r1->history()),
                                   r1->conflict_spec()));
  EXPECT_TRUE(rw.worlds[1]->CheckAdtInvariants().ok());
}

// ---------------------------------------------------------------------------
// Counters and events: replica lifecycle flows through Stats() (summing
// the per-shard groups) and through the shard-tagged observer relay.

struct ReplicaEventRecorder : RuntimeObserver {
  struct Event {
    int shard;
    int replica;
    ReplicaState from;
    ReplicaState to;
  };
  std::mutex mu;
  std::vector<Event> events;
  void OnReplicaStateChange(int shard, int replica, ReplicaState from,
                            ReplicaState to) override {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back({shard, replica, from, to});
  }
  bool Saw(int shard, int replica, ReplicaState from, ReplicaState to) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Event& e : events) {
      if (e.shard == shard && e.replica == replica && e.from == from &&
          e.to == to) {
        return true;
      }
    }
    return false;
  }
};

TEST(ReplicaGroupTest, CountersFlowThroughStatsFanInAndObserverRelay) {
  constexpr int kTenants = 4;
  constexpr int kShards = 2;

  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/3, /*seed=*/31, kTenants,
                                       /*per_tenant=*/1);
  ReplicaEventRecorder recorder;
  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kFreeRunning;
  options.replication.factor = 3;
  options.replication.vote_every_rounds = 1;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.AddObserver(&recorder).ok());
  ASSERT_TRUE(runtime.Start().ok());

  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    EXPECT_TRUE(ticket->Await().ok());
  }
  ASSERT_TRUE(runtime.Drain().ok());

  // Kill a follower on each shard, then shard 0's primary (a failover).
  ASSERT_TRUE(runtime.KillReplica(0, 2).ok());
  ASSERT_TRUE(runtime.KillReplica(1, 2).ok());
  ASSERT_TRUE(runtime.KillReplica(0, runtime.shard_group(0)->primary()).ok());
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_EQ(stats.failovers, 1);
  EXPECT_EQ(stats.replica_divergences, 0);
  EXPECT_EQ(stats.replicas_evicted, 0);
  ASSERT_EQ(stats.per_shard_replicas.size(), static_cast<size_t>(kShards));
  EXPECT_EQ(stats.per_shard_replicas[0].live_replicas, 1);
  EXPECT_EQ(stats.per_shard_replicas[0].primary, 1);
  EXPECT_EQ(stats.per_shard_replicas[0].failovers, 1);
  EXPECT_EQ(stats.per_shard_replicas[1].live_replicas, 2);
  EXPECT_EQ(stats.per_shard_replicas[1].primary, 0);
  // The top-level counters are exactly the per-shard sums.
  int64_t vote_sum = 0;
  int64_t failover_sum = 0;
  for (const ReplicaGroupStats& g : stats.per_shard_replicas) {
    vote_sum += g.vote_rounds;
    failover_sum += g.failovers;
  }
  EXPECT_EQ(stats.vote_rounds, vote_sum);
  EXPECT_EQ(stats.failovers, failover_sum);
  EXPECT_GT(stats.vote_rounds, 0);
  // The MergeFrom fan-in still works under replication (primary snapshots).
  EXPECT_EQ(stats.merged.processes_committed + stats.merged.processes_aborted,
            static_cast<int64_t>(rw.defs.size()));

  // The relay tagged every lifecycle event with its shard.
  EXPECT_TRUE(
      recorder.Saw(0, 2, ReplicaState::kActive, ReplicaState::kKilled));
  EXPECT_TRUE(
      recorder.Saw(1, 2, ReplicaState::kActive, ReplicaState::kKilled));
  EXPECT_TRUE(
      recorder.Saw(0, 0, ReplicaState::kActive, ReplicaState::kKilled));
  EXPECT_FALSE(
      recorder.Saw(1, 0, ReplicaState::kActive, ReplicaState::kKilled));
}

// ---------------------------------------------------------------------------
// Guardrails: spanning processes are rejected, a fully dead group fails
// cleanly, file-WAL mode opens one WAL per replica.

TEST(ReplicaGroupTest, SpanningProcessesAreRejectedUnderReplication) {
  constexpr int kTenants = 2;
  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, /*seed=*/37, kTenants,
                                       /*per_tenant=*/1);
  // Mirror worlds must mint identical ServiceIds, so every world makes the
  // spanning def — only replica 0's is submitted.
  std::vector<const ProcessDef*> spans;
  for (auto& world : rw.worlds) {
    spans.push_back(world->MakeSpanningProcess("span", 0, 1));
  }
  ShardedRuntimeOptions options;
  options.num_shards = 2;  // two tenants spread over two shards
  options.mode = TickMode::kLockstep;
  options.replication.factor = 2;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  auto ticket = runtime.Submit(spans[0]);
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsInvalidArgument()) << ticket.status();

  // Pinned (single-shard) processes still go through.
  auto pinned = runtime.Submit(rw.defs[0]);
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_TRUE(pinned->Await().ok());
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.submissions_rejected, 1);
  ASSERT_TRUE(runtime.Stop().ok());
}

TEST(ReplicaGroupTest, AllReplicasDeadFailsTheShardNotTheProcess) {
  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, /*seed=*/41,
                                       /*tenants=*/1, /*per_tenant=*/1);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  options.replication.factor = 2;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  ASSERT_TRUE(runtime.KillReplica(0, 0).ok());  // failover to 1...
  ASSERT_TRUE(runtime.KillReplica(0, 1).ok());  // ...then total death
  ReplicaGroup* group = runtime.shard_group(0);
  ASSERT_NE(group, nullptr);
  EXPECT_FALSE(group->status().ok());
  EXPECT_EQ(group->Stats().live_replicas, 0);
  EXPECT_EQ(group->Stats().failovers, 1);

  auto ticket = runtime.Submit(rw.defs[0]);
  if (ticket.ok()) {
    // Queued before the sequencer saw the death: the promise must still be
    // failed, never dropped.
    EXPECT_FALSE(runtime.Drain().ok());
    ASSERT_TRUE(runtime.Stop().ok());
    auto pid = ticket->Await();
    ASSERT_FALSE(pid.ok());
    EXPECT_TRUE(pid.status().IsUnavailable()) << pid.status();
  } else {
    EXPECT_TRUE(ticket.status().IsUnavailable()) << ticket.status();
    ASSERT_TRUE(runtime.Stop().ok());
  }
}

TEST(ReplicaGroupTest, FileWalModeOpensOneWalPerReplica) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "tpm_replica_wal_test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));

  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, /*seed=*/43,
                                       /*tenants=*/1, /*per_tenant=*/1);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  options.log_mode = ShardLogMode::kFile;
  options.wal_dir = dir.string();
  options.replication.factor = 2;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
  }
  ASSERT_TRUE(runtime.Drain().ok());
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_TRUE(fs::exists(dir / "shard-0-replica-0.wal"));
  EXPECT_TRUE(fs::exists(dir / "shard-0-replica-1.wal"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Respawn: a killed follower rebuilt from the primary rejoins and votes
// cleanly — no false divergence from its shorter history.

TEST(ReplicaGroupTest, RespawnedReplicaRejoinsWithoutFalseDivergence) {
  constexpr int kTenants = 2;
  constexpr uint64_t kSeed = 47;

  // Both waves' defs are minted up front so the mirror worlds' ServiceIds
  // stay aligned.
  ReplicaWorlds rw = MakeReplicaWorlds(/*factor=*/2, kSeed, kTenants,
                                       /*per_tenant=*/1);
  std::vector<const ProcessDef*> wave2 =
      BuildWorkloadRounds(rw.worlds[0].get(), 1, 2);
  (void)BuildWorkloadRounds(rw.worlds[1].get(), 1, 2);

  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  options.replication.factor = 2;
  options.replication.vote_every_rounds = 1;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(RegisterReplicas(&rw, &runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  for (const ProcessDef* def : rw.defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
  }
  ASSERT_TRUE(runtime.Drain().ok());

  ASSERT_TRUE(runtime.KillReplica(0, 1).ok());
  ASSERT_TRUE(runtime.Drain().ok());
  ReplicaGroup* group = runtime.shard_group(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->replica_state(1), ReplicaState::kKilled);

  ASSERT_TRUE(
      runtime.RespawnReplica(0, 1, rw.worlds[0]->DefsByName()).ok());
  EXPECT_EQ(group->replica_state(1), ReplicaState::kActive);
  // Stores must agree immediately after adoption (probed through the
  // worlds' subsystems — the schedulers are affined to their workers).
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(rw.worlds[0]->kv(t)->StateFingerprint(),
              rw.worlds[1]->kv(t)->StateFingerprint());
    EXPECT_EQ(rw.worlds[0]->escrow(t)->StateFingerprint(),
              rw.worlds[1]->escrow(t)->StateFingerprint());
    EXPECT_EQ(rw.worlds[0]->queue(t)->StateFingerprint(),
              rw.worlds[1]->queue(t)->StateFingerprint());
  }
  const int64_t votes_before = group->Stats().vote_rounds;

  std::vector<SubmitTicket> tickets;
  for (const ProcessDef* def : wave2) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  for (SubmitTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.Await().ok());
  }
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  // The respawned replica voted again and never falsely diverged.
  EXPECT_GT(stats.vote_rounds, votes_before);
  EXPECT_EQ(stats.replica_divergences, 0);
  EXPECT_EQ(stats.replicas_evicted, 0);
  EXPECT_EQ(group->replica_state(1), ReplicaState::kActive);
  EXPECT_EQ(stats.per_shard_replicas[0].live_replicas, 2);

  // Post-respawn the stores agree exactly.
  EXPECT_EQ(runtime.replica_scheduler(0, 0)->SubsystemStateFingerprint(),
            runtime.replica_scheduler(0, 1)->SubsystemStateFingerprint());
  EXPECT_TRUE(rw.worlds[0]->CheckAdtInvariants().ok());
}

}  // namespace
}  // namespace tpm
