// Elastic runtime (DESIGN.md §4k): load telemetry, the rebalancing policy
// state machine, skewed traffic generation, manual quiesce-and-migrate,
// DPM parking / adaptive growth, and the bit-equivalence of the elastic-off
// and elastic-on-but-idle runtimes.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "runtime/elastic/elastic_policy.h"
#include "runtime/elastic/load_monitor.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"
#include "workload/skewed_traffic.h"

namespace tpm {
namespace {

// The canonical mixed workload (same shape as the sharded runtime tests):
// `per_tenant` each of order/consume/refill per tenant.
std::vector<const ProcessDef*> BuildWorkload(ShardedWorld* world,
                                             int per_tenant) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < per_tenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, StrCat("order_t", t, "_", round), round));
      defs.push_back(world->MakeConsumeProcess(
          t, StrCat("consume_t", t, "_", round), round));
      defs.push_back(world->MakeRefillProcess(
          t, StrCat("refill_t", t, "_", round), round));
    }
  }
  return defs;
}

// ---------------------------------------------------------------------------
// LoadMonitor

TEST(LoadMonitorTest, TracksPassSamplesAndSubmissions) {
  LoadMonitor monitor(/*num_shards=*/2, /*num_components=*/3,
                      /*window_ns=*/1'000'000'000);
  ShardPassSample sample;
  sample.pass_ns = 5'000'000;
  sample.queue_depth = 7;
  sample.admitted = 4;
  sample.committed_total = 11;
  monitor.RecordPass(0, sample);
  sample.committed_total = 13;
  sample.queue_depth = 2;
  monitor.RecordPass(0, sample);

  ShardLoadSnapshot snap = monitor.Snapshot(0);
  EXPECT_EQ(snap.shard, 0);
  EXPECT_FALSE(snap.parked);
  EXPECT_EQ(snap.queue_depth, 2u);           // last pass boundary
  EXPECT_EQ(snap.committed_total, 13);       // cumulative, not windowed
  EXPECT_EQ(snap.admitted_total, 8);
  EXPECT_GT(snap.busy_fraction, 0.0);
  EXPECT_LE(snap.busy_fraction, 1.0);

  // Shard 1 never ran a pass: everything zero.
  ShardLoadSnapshot idle = monitor.Snapshot(1);
  EXPECT_EQ(idle.busy_fraction, 0.0);
  EXPECT_EQ(idle.admitted_total, 0);

  monitor.SetParked(1, true);
  EXPECT_TRUE(monitor.Snapshot(1).parked);
  monitor.SetParked(1, false);
  EXPECT_FALSE(monitor.Snapshot(1).parked);

  monitor.CountSubmission(2);
  monitor.CountSubmission(2);
  monitor.CountSubmission(0);
  std::vector<int64_t> subs = monitor.ComponentSubmissions();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], 1);
  EXPECT_EQ(subs[1], 0);
  EXPECT_EQ(subs[2], 2);

  EXPECT_EQ(monitor.SnapshotAll().size(), 2u);
}

// ---------------------------------------------------------------------------
// ElasticPolicy: drive the pure state machine directly.

PolicyInputs TwoShardInputs(double busy0, double busy1) {
  PolicyInputs inputs;
  inputs.shards.resize(2);
  inputs.shards[0].busy_fraction = busy0;
  inputs.shards[0].components = 2;
  inputs.shards[1].busy_fraction = busy1;
  inputs.shards[1].components = 0;
  inputs.components.resize(2);
  inputs.components[0] = {.component = 0, .shard = 0,
                          .recent_submissions = 100};
  inputs.components[1] = {.component = 1, .shard = 0,
                          .recent_submissions = 40};
  return inputs;
}

TEST(ElasticPolicyTest, SustainedImbalanceMigratesSecondHottest) {
  ElasticPolicyOptions options;
  options.imbalance_ratio = 1.5;
  options.sustain_polls = 3;
  options.cooldown_polls = 4;
  options.park_idle_shards = false;
  ElasticPolicy policy(options);

  PolicyInputs hot = TwoShardInputs(/*busy0=*/0.9, /*busy1=*/0.05);
  // Breach must SUSTAIN for sustain_polls before anything moves.
  EXPECT_EQ(policy.Evaluate(hot).kind, PolicyActionKind::kNone);
  EXPECT_EQ(policy.Evaluate(hot).kind, PolicyActionKind::kNone);
  PolicyDecision decision = policy.Evaluate(hot);
  ASSERT_EQ(decision.kind, PolicyActionKind::kMigrate);
  EXPECT_EQ(decision.from, 0);
  EXPECT_EQ(decision.to, 1);
  // Second-hottest component leaves: moving the hottest would just move
  // the hotspot.
  EXPECT_EQ(decision.component, 1);

  // Cooldown: the very next breaches do not fire again.
  EXPECT_EQ(policy.Evaluate(hot).kind, PolicyActionKind::kNone);
  EXPECT_EQ(policy.Evaluate(hot).kind, PolicyActionKind::kNone);
}

TEST(ElasticPolicyTest, BreachStreakResetsWhenLoadEvensOut) {
  ElasticPolicyOptions options;
  options.imbalance_ratio = 1.5;
  options.sustain_polls = 2;
  options.park_idle_shards = false;
  ElasticPolicy policy(options);
  EXPECT_EQ(policy.Evaluate(TwoShardInputs(0.9, 0.05)).kind,
            PolicyActionKind::kNone);
  // Balanced poll breaks the streak; the next breach starts from zero.
  EXPECT_EQ(policy.Evaluate(TwoShardInputs(0.5, 0.5)).kind,
            PolicyActionKind::kNone);
  EXPECT_EQ(policy.Evaluate(TwoShardInputs(0.9, 0.05)).kind,
            PolicyActionKind::kNone);
  EXPECT_EQ(policy.Evaluate(TwoShardInputs(0.9, 0.05)).kind,
            PolicyActionKind::kMigrate);
}

TEST(ElasticPolicyTest, DeclinesSingleComponentAndColdSecondDonors) {
  ElasticPolicyOptions options;
  options.imbalance_ratio = 1.2;
  options.sustain_polls = 1;
  options.park_idle_shards = false;
  {
    // One owned component: migrating it moves the hotspot, not splits it.
    ElasticPolicy policy(options);
    PolicyInputs inputs = TwoShardInputs(0.9, 0.05);
    inputs.shards[0].components = 1;
    inputs.components.resize(1);
    EXPECT_EQ(policy.Evaluate(inputs).kind, PolicyActionKind::kNone);
  }
  {
    // Second-hottest component has no traffic: nothing worth moving.
    ElasticPolicy policy(options);
    PolicyInputs inputs = TwoShardInputs(0.9, 0.05);
    inputs.components[1].recent_submissions = 0;
    EXPECT_EQ(policy.Evaluate(inputs).kind, PolicyActionKind::kNone);
  }
}

TEST(ElasticPolicyTest, GrowthPrefersParkedTarget) {
  ElasticPolicyOptions options;
  options.imbalance_ratio = 1.2;
  options.sustain_polls = 1;
  options.park_idle_shards = false;
  ElasticPolicy policy(options);
  PolicyInputs inputs;
  inputs.shards.resize(3);
  inputs.shards[0] = {.parked = false, .busy_fraction = 0.9, .components = 2};
  inputs.shards[1] = {.parked = false, .busy_fraction = 0.1, .components = 1};
  inputs.shards[2] = {.parked = true};  // spare capacity
  inputs.components = {{.component = 0, .shard = 0, .recent_submissions = 50},
                       {.component = 1, .shard = 0, .recent_submissions = 20},
                       {.component = 2, .shard = 1, .recent_submissions = 5}};
  PolicyDecision decision = policy.Evaluate(inputs);
  ASSERT_EQ(decision.kind, PolicyActionKind::kMigrate);
  // Adaptive grow: a parked spare beats the merely-cool active shard.
  EXPECT_EQ(decision.to, 2);
}

TEST(ElasticPolicyTest, ConsolidatesColdestComponentWhenAllShardsCold) {
  ElasticPolicyOptions options;
  options.consolidate_below = 0.2;
  options.park_idle_shards = false;
  options.min_active_shards = 1;
  ElasticPolicy policy(options);
  PolicyInputs inputs;
  inputs.shards.resize(2);
  inputs.shards[0] = {.parked = false, .busy_fraction = 0.05, .components = 1};
  inputs.shards[1] = {.parked = false, .busy_fraction = 0.01, .components = 1};
  inputs.components = {{.component = 0, .shard = 0, .recent_submissions = 9},
                       {.component = 1, .shard = 1, .recent_submissions = 2}};
  PolicyDecision decision = policy.Evaluate(inputs);
  ASSERT_EQ(decision.kind, PolicyActionKind::kMigrate);
  // Least-busy shard that still owns something donates its coldest
  // component toward the remaining active shard.
  EXPECT_EQ(decision.from, 1);
  EXPECT_EQ(decision.to, 0);
  EXPECT_EQ(decision.component, 1);
}

TEST(ElasticPolicyTest, ParksEmptyIdleShardButKeepsMinimumActive) {
  ElasticPolicyOptions options;
  options.park_idle_shards = true;
  options.park_busy_threshold = 0.05;
  options.min_active_shards = 1;
  ElasticPolicy policy(options);
  PolicyInputs inputs;
  inputs.shards.resize(2);
  inputs.shards[0] = {.parked = false, .busy_fraction = 0.5, .components = 2};
  inputs.shards[1] = {.parked = false, .busy_fraction = 0.0, .queue_depth = 0,
                      .components = 0};
  inputs.components = {{.component = 0, .shard = 0, .recent_submissions = 5},
                       {.component = 1, .shard = 0, .recent_submissions = 5}};
  PolicyDecision decision = policy.Evaluate(inputs);
  ASSERT_EQ(decision.kind, PolicyActionKind::kPark);
  EXPECT_EQ(decision.shard, 1);

  // The same shape with min_active_shards = 2 must leave both running.
  options.min_active_shards = 2;
  ElasticPolicy strict(options);
  EXPECT_EQ(strict.Evaluate(inputs).kind, PolicyActionKind::kNone);

  // An emptied shard with queued work is not idle.
  ElasticPolicy busy_queue(ElasticPolicyOptions{
      .park_idle_shards = true, .min_active_shards = 1});
  inputs.shards[1].queue_depth = 3;
  EXPECT_EQ(busy_queue.Evaluate(inputs).kind, PolicyActionKind::kNone);
}

// ---------------------------------------------------------------------------
// SkewedTraffic

TEST(SkewedTrafficTest, DeterministicAndHotHeavy) {
  SkewedTrafficOptions options;
  options.seed = 7;
  options.num_tenants = 8;
  options.hot_tenants = 2;
  options.hot_fraction = 0.9;
  SkewedTraffic a(options);
  SkewedTraffic b(options);
  int hot_draws = 0;
  for (int i = 0; i < 2000; ++i) {
    const int tenant = a.NextTenant();
    EXPECT_EQ(tenant, b.NextTenant());  // same seed, same stream
    ASSERT_GE(tenant, 0);
    ASSERT_LT(tenant, 8);
    if (tenant == a.hot_set()[0] || tenant == a.hot_set()[1]) ++hot_draws;
  }
  // 90% nominal; allow generous slack.
  EXPECT_GT(hot_draws, 1600);
  EXPECT_EQ(a.draws(), 2000);
  EXPECT_EQ(a.phase(), 0);
}

TEST(SkewedTrafficTest, PhaseRotationMovesTheHotSet) {
  SkewedTrafficOptions options;
  options.seed = 11;
  options.num_tenants = 6;
  options.hot_tenants = 2;
  options.phase_length = 100;
  SkewedTraffic traffic(options);
  std::vector<int> first_hot = traffic.hot_set();
  ASSERT_EQ(first_hot.size(), 2u);
  EXPECT_EQ(first_hot[0], 0);
  EXPECT_EQ(first_hot[1], 1);
  for (int i = 0; i < 100; ++i) (void)traffic.NextTenant();
  (void)traffic.NextTenant();  // first draw of phase 1 rotates
  EXPECT_EQ(traffic.phase(), 1);
  std::vector<int> second_hot = traffic.hot_set();
  EXPECT_EQ(second_hot[0], 2);
  EXPECT_EQ(second_hot[1], 3);
}

// ---------------------------------------------------------------------------
// Runtime integration

TEST(ElasticRuntimeTest, StartRejectsInvalidElasticConfigs) {
  {
    // Elastic and replication are mutually exclusive (staged limit).
    ShardedWorld world({.seed = 3, .num_tenants = 2});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.replication.factor = 3;
    options.elastic.enabled = true;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    Status status = runtime.Start();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
  }
  {
    // The controller needs the elastic layer it steers.
    ShardedWorld world({.seed = 3, .num_tenants = 2});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.elastic.policy.enabled = true;  // but elastic.enabled = false
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    EXPECT_EQ(runtime.Start().code(), StatusCode::kInvalidArgument);
  }
  {
    // Autonomous rebalancing needs free-running workers.
    ShardedWorld world({.seed = 3, .num_tenants = 2});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.mode = TickMode::kLockstep;
    options.elastic.enabled = true;
    options.elastic.policy.enabled = true;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    EXPECT_EQ(runtime.Start().code(), StatusCode::kInvalidArgument);
  }
  {
    // Cannot pre-pack onto more shards than exist.
    ShardedWorld world({.seed = 3, .num_tenants = 2});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.elastic.enabled = true;
    options.elastic.initial_active_shards = 3;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    EXPECT_EQ(runtime.Start().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ElasticRuntimeTest, MigrateComponentRequiresElasticAndValidArguments) {
  ShardedWorld world({.seed = 5, .num_tenants = 2});
  (void)BuildWorkload(&world, 1);
  {
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    EXPECT_EQ(runtime.MigrateComponent(0, 1).code(),
              StatusCode::kFailedPrecondition);  // elastic off
    EXPECT_EQ(runtime.ParkShard(1).code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(runtime.Stop().ok());
  }
  ShardedWorld elastic_world({.seed = 5, .num_tenants = 2});
  (void)BuildWorkload(&elastic_world, 1);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.elastic.enabled = true;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(elastic_world.RegisterAll(&runtime).ok());
  EXPECT_EQ(runtime.MigrateComponent(0, 1).code(),
            StatusCode::kFailedPrecondition);  // not started yet
  ASSERT_TRUE(runtime.Start().ok());
  EXPECT_EQ(runtime.MigrateComponent(-1, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime.MigrateComponent(99, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime.MigrateComponent(0, 9).code(),
            StatusCode::kInvalidArgument);
  const int owner = runtime.router().ShardOfComponent(0);
  EXPECT_EQ(runtime.MigrateComponent(0, owner).code(),
            StatusCode::kInvalidArgument);  // already there
  EXPECT_EQ(runtime.ResumeShard(9).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(runtime.Stop().ok());
}

// Manual quiesce-and-migrate: the component's services reroute, traffic
// follows, ADT state stays intact, and the stats counters account for it.
TEST(ElasticRuntimeTest, ManualMigrationMovesComponentAndTraffic) {
  ShardedWorld world({.seed = 21, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kFreeRunning;
  options.elastic.enabled = true;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  for (const ProcessDef* def : defs) {
    ASSERT_TRUE(runtime.Submit(def).ok());
  }
  ASSERT_TRUE(runtime.Drain().ok());

  // Move tenant 0's component to the other shard.
  const ServiceId svc = world.TenantServices(0)[0];
  const int component = runtime.router().ComponentOfService(svc);
  const int from = runtime.router().ShardOfComponent(component);
  const int to = 1 - from;
  ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());

  // The router remap flipped: every service of the component now routes
  // to the target shard.
  for (ServiceId id : world.TenantServices(0)) {
    EXPECT_EQ(runtime.router().ShardOfService(id), to);
  }
  EXPECT_EQ(runtime.router().ShardOfComponent(component), to);

  // Fresh traffic for the migrated tenant lands on — and commits on —
  // the new shard.
  const ProcessDef* post = world.MakeOrderProcess(0, "order_post", 0);
  auto ticket = runtime.Submit(post);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->shard, to);
  ASSERT_TRUE(runtime.Drain().ok());
  Result<ProcessId> admitted = ticket->Await();
  ASSERT_TRUE(admitted.ok());

  // Drive-by: per-shard producer queue depth is surfaced, and a drained
  // runtime reports empty queues.
  std::vector<size_t> depths = runtime.QueueDepths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], 0u);

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.migrations_started, 1);
  EXPECT_EQ(stats.migrations_completed, 1);
  EXPECT_EQ(stats.migrations_aborted, 0);
  ASSERT_EQ(stats.queue_depths.size(), 2u);
  ASSERT_TRUE(runtime.Stop().ok());
  // After Stop the workers have released scheduler affinity: the process
  // admitted post-migration committed on the target shard.
  EXPECT_EQ(runtime.shard_scheduler(to)->OutcomeOf(*admitted),
            ProcessOutcome::kCommitted);
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

// Migration with producers still submitting: the route gate buffers the
// migrating component's traffic and replays it on the target; every ticket
// resolves and the ADT invariants hold.
TEST(ElasticRuntimeTest, MigrationUnderLiveTrafficKeepsInvariants) {
  ShardedWorld world({.seed = 33, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 6);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kFreeRunning;
  options.elastic.enabled = true;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  const ServiceId svc = world.TenantServices(0)[0];
  const int component = runtime.router().ComponentOfService(svc);
  const int to = 1 - runtime.router().ShardOfComponent(component);

  constexpr int kProducers = 3;
  std::atomic<size_t> next{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= defs.size()) break;
        auto ticket = runtime.Submit(defs[i]);
        if (!ticket.ok() || !ticket->Await().ok()) failures.fetch_add(1);
      }
    });
  }
  while (next.load() < defs.size() / 3) std::this_thread::yield();
  ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());
  for (auto& t : producers) t.join();
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stats.migrations_completed, 1);
  EXPECT_EQ(stats.merged.processes_committed + stats.merged.processes_aborted,
            static_cast<int64_t>(defs.size()));
  EXPECT_EQ(runtime.router().ShardOfComponent(component), to);
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

// Observer that records elastic lifecycle events.
class ElasticEventObserver : public RuntimeObserver {
 public:
  void OnShardParked(int shard) override {
    std::lock_guard<std::mutex> lock(mu_);
    parked_.push_back(shard);
  }
  void OnShardResumed(int shard) override {
    std::lock_guard<std::mutex> lock(mu_);
    resumed_.push_back(shard);
  }
  void OnComponentMigrated(int component, int from, int to) override {
    std::lock_guard<std::mutex> lock(mu_);
    migrated_.push_back({component, from, to});
  }
  std::vector<int> parked() {
    std::lock_guard<std::mutex> lock(mu_);
    return parked_;
  }
  std::vector<int> resumed() {
    std::lock_guard<std::mutex> lock(mu_);
    return resumed_;
  }
  std::vector<std::array<int, 3>> migrated() {
    std::lock_guard<std::mutex> lock(mu_);
    return migrated_;
  }

 private:
  std::mutex mu_;
  std::vector<int> parked_;
  std::vector<int> resumed_;
  std::vector<std::array<int, 3>> migrated_;
};

// Adaptive growth out of parked spares: initial_active_shards packs the
// whole workload onto a prefix of the fleet, the surplus shards park at
// Start, and a migration into a spare resumes it. Then the emptied donor
// parks (adaptive shrink).
TEST(ElasticRuntimeTest, AdaptiveGrowResumesParkedSpareAndShrinkParks) {
  ShardedWorld world({.seed = 27, .num_tenants = 2});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kFreeRunning;
  options.elastic.enabled = true;
  options.elastic.initial_active_shards = 1;
  ShardedRuntime runtime(options);
  ElasticEventObserver observer;
  ASSERT_TRUE(runtime.AddObserver(&observer).ok());
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  // Everything packed on shard 0; shard 1 is a parked spare.
  ASSERT_EQ(runtime.router().num_components(), 2);
  EXPECT_EQ(runtime.router().ShardOfComponent(0), 0);
  EXPECT_EQ(runtime.router().ShardOfComponent(1), 0);
  EXPECT_FALSE(runtime.ShardParked(0));
  EXPECT_TRUE(runtime.ShardParked(1));
  EXPECT_EQ(observer.parked(), std::vector<int>{1});
  EXPECT_EQ(runtime.Stats().shards_parked, 1);

  // Parking an owner is refused.
  EXPECT_EQ(runtime.ParkShard(0).code(), StatusCode::kFailedPrecondition);

  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ticket->shard, 0);  // spare gets no traffic
  }
  ASSERT_TRUE(runtime.Drain().ok());

  // Grow: migrating into the parked spare resumes it.
  const int component = runtime.router().ComponentOfService(
      world.TenantServices(0)[0]);
  ASSERT_TRUE(runtime.MigrateComponent(component, 1).ok());
  EXPECT_FALSE(runtime.ShardParked(1));
  EXPECT_EQ(observer.resumed(), std::vector<int>{1});
  auto migrated = observer.migrated();
  ASSERT_EQ(migrated.size(), 1u);
  EXPECT_EQ(migrated[0], (std::array<int, 3>{component, 0, 1}));

  const ProcessDef* grown = world.MakeOrderProcess(0, "order_grown", 0);
  auto ticket = runtime.Submit(grown);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->shard, 1);
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_TRUE(ticket->Await().ok());

  // Shrink: move the other component over too, park the emptied donor.
  const int other = 1 - component;
  ASSERT_TRUE(runtime.MigrateComponent(other, 1).ok());
  ASSERT_TRUE(runtime.Drain().ok());
  ASSERT_TRUE(runtime.ParkShard(0).ok());
  EXPECT_TRUE(runtime.ShardParked(0));
  EXPECT_EQ(runtime.Stats().shards_parked, 1);

  // Traffic is unaffected by the parked shard 0.
  const ProcessDef* shrunk = world.MakeOrderProcess(1, "order_shrunk", 0);
  auto ticket2 = runtime.Submit(shrunk);
  ASSERT_TRUE(ticket2.ok());
  EXPECT_EQ(ticket2->shard, 1);
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_TRUE(ticket2->Await().ok());

  ASSERT_TRUE(runtime.ResumeShard(0).ok());
  EXPECT_FALSE(runtime.ShardParked(0));
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

// Staged limits around spanning processes: spans block migration, and a
// past migration blocks new spans (sub-process names encode shard
// numbers).
TEST(ElasticRuntimeTest, SpanningProcessesAndMigrationAreMutuallyStaged) {
  {
    // A begun span pins the topology.
    ShardedWorld world({.seed = 9, .num_tenants = 4});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.mode = TickMode::kFreeRunning;
    options.elastic.enabled = true;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    // Two tenants on different shards make the span route kSplit.
    int tenant_a = 0, tenant_b = -1;
    const int shard_a =
        runtime.router().ShardOfService(world.TenantServices(0)[0]);
    for (int t = 1; t < 4; ++t) {
      if (runtime.router().ShardOfService(world.TenantServices(t)[0]) !=
          shard_a) {
        tenant_b = t;
        break;
      }
    }
    ASSERT_GE(tenant_b, 1);
    const ProcessDef* span =
        world.MakeSpanningProcess("span", tenant_a, tenant_b);
    auto ticket = runtime.Submit(span);
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(runtime.Drain().ok());
    const int away = 1 - runtime.router().ShardOfComponent(0);
    EXPECT_EQ(runtime.MigrateComponent(0, away).code(),
              StatusCode::kFailedPrecondition);
    ASSERT_TRUE(runtime.Stop().ok());
  }
  {
    // A past migration rejects new spans.
    ShardedWorld world({.seed = 9, .num_tenants = 4});
    (void)BuildWorkload(&world, 1);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.mode = TickMode::kFreeRunning;
    options.elastic.enabled = true;
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());
    const int component = runtime.router().ComponentOfService(
        world.TenantServices(0)[0]);
    const int to = 1 - runtime.router().ShardOfComponent(component);
    ASSERT_TRUE(runtime.MigrateComponent(component, to).ok());
    int tenant_b = -1;
    const int shard_a =
        runtime.router().ShardOfService(world.TenantServices(0)[0]);
    for (int t = 1; t < 4; ++t) {
      if (runtime.router().ShardOfService(world.TenantServices(t)[0]) !=
          shard_a) {
        tenant_b = t;
        break;
      }
    }
    ASSERT_GE(tenant_b, 1);
    const ProcessDef* span =
        world.MakeSpanningProcess("span_late", 0, tenant_b);
    auto ticket = runtime.Submit(span);
    ASSERT_FALSE(ticket.ok());
    EXPECT_EQ(ticket.status().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(runtime.Stop().ok());
    EXPECT_TRUE(world.CheckAdtInvariants().ok());
  }
}

// The controller end to end: one hot shard, a parked spare, an aggressive
// policy — the runtime splits the load onto the spare by itself.
TEST(ElasticRuntimeTest, ControllerRebalancesOntoParkedSpare) {
  ShardedWorld world({.seed = 45, .num_tenants = 2});
  // Defs (and hence services) must exist before Start computes the
  // partition; pre-generate the whole traffic budget.
  constexpr int kMaxRounds = 4000;
  std::vector<std::vector<const ProcessDef*>> rounds;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<const ProcessDef*> pair;
    for (int t = 0; t < 2; ++t) {
      pair.push_back(world.MakeOrderProcess(
          t, StrCat("hot_t", t, "_", round), round));
    }
    rounds.push_back(std::move(pair));
  }
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kFreeRunning;
  options.elastic.enabled = true;
  options.elastic.initial_active_shards = 1;
  options.elastic.policy.enabled = true;
  options.elastic.policy.imbalance_ratio = 1.0;  // any load is "imbalanced"
  options.elastic.policy.sustain_polls = 2;
  options.elastic.policy.cooldown_polls = 2;
  options.elastic.policy.poll_interval_ms = 5;
  options.elastic.policy.park_idle_shards = false;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  // Keep both tenants busy until the controller migrates one of them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  int round = 0;
  while (runtime.migration_engine()->migrations_completed() == 0 &&
         std::chrono::steady_clock::now() < deadline && round < kMaxRounds) {
    std::vector<SubmitTicket> tickets;
    for (const ProcessDef* def : rounds[static_cast<size_t>(round)]) {
      auto ticket = runtime.Submit(def);
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      tickets.push_back(*ticket);
    }
    for (SubmitTicket& ticket : tickets) ASSERT_TRUE(ticket.Await().ok());
    ++round;
  }
  ASSERT_TRUE(runtime.Drain().ok());
  // The two components ended up on different shards: adaptive growth into
  // the spare.
  EXPECT_NE(runtime.router().ShardOfComponent(0),
            runtime.router().ShardOfComponent(1))
      << "controller never rebalanced after " << round << " rounds";
  ASSERT_TRUE(runtime.Stop().ok());
  RuntimeStats stats = runtime.Stats();
  EXPECT_GE(stats.migrations_completed, 1);
  EXPECT_GE(stats.rebalance_decisions, 1);
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

// The elastic-off bit-equivalence satellite: the same lockstep workload
// produces bit-identical per-shard histories whether the elastic layer is
// absent or present-but-idle (enabled, no policy, no migrations).
TEST(ElasticRuntimeTest, IdleElasticLayerIsBitIdenticalToPlainRuntime) {
  auto run = [](bool elastic) {
    ShardedWorld world({.seed = 17, .num_tenants = 4});
    std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
    ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.mode = TickMode::kLockstep;
    options.elastic.enabled = elastic;
    ShardedRuntime runtime(options);
    EXPECT_TRUE(world.RegisterAll(&runtime).ok());
    EXPECT_TRUE(runtime.Start().ok());
    for (const ProcessDef* def : defs) {
      EXPECT_TRUE(runtime.Submit(def).ok());
    }
    EXPECT_TRUE(runtime.Drain().ok());
    RuntimeStats stats = runtime.Stats();
    EXPECT_TRUE(runtime.Stop().ok());
    std::vector<uint64_t> digests;
    for (int s = 0; s < 2; ++s) {
      digests.push_back(
          Fnv1a(runtime.shard_scheduler(s)->history().ToString()));
    }
    return std::make_pair(digests, stats);
  };
  auto [plain_digests, plain_stats] = run(false);
  auto [elastic_digests, elastic_stats] = run(true);
  EXPECT_EQ(plain_digests, elastic_digests);
  ASSERT_EQ(plain_stats.per_shard.size(), elastic_stats.per_shard.size());
  for (size_t s = 0; s < plain_stats.per_shard.size(); ++s) {
    EXPECT_TRUE(plain_stats.per_shard[s] == elastic_stats.per_shard[s])
        << "shard " << s;
  }
  EXPECT_EQ(plain_stats.submissions_accepted,
            elastic_stats.submissions_accepted);
  EXPECT_EQ(elastic_stats.migrations_started, 0);
  EXPECT_EQ(elastic_stats.rebalance_decisions, 0);
}

}  // namespace
}  // namespace tpm
