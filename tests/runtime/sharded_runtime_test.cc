// End-to-end tests of the sharded runtime facade: lockstep bit-equivalence
// against solo schedulers, stats fan-in, routing errors, backpressure,
// observer relay, and free-running multi-producer soak.

#include "runtime/sharded_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <set>
#include <thread>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "testing/fault_injector.h"
#include "workload/sharded_world.h"

namespace tpm {
namespace {

// The canonical mixed workload: `per_tenant` each of order/consume/refill
// per tenant, interleaved across tenants in a fixed global order.
std::vector<const ProcessDef*> BuildWorkload(ShardedWorld* world,
                                             int per_tenant) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < per_tenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      const ProcessDef* order = world->MakeOrderProcess(
          t, "order_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      const ProcessDef* consume = world->MakeConsumeProcess(
          t, "consume_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      const ProcessDef* refill = world->MakeRefillProcess(
          t, "refill_t" + std::to_string(t) + "_" + std::to_string(round),
          round);
      EXPECT_NE(order, nullptr);
      EXPECT_NE(consume, nullptr);
      EXPECT_NE(refill, nullptr);
      defs.push_back(order);
      defs.push_back(consume);
      defs.push_back(refill);
    }
  }
  return defs;
}

TEST(ShardedRuntimeTest, StartComputesAVerifiedPartition) {
  ShardedWorld world({.seed = 3, .num_tenants = 4});
  (void)BuildWorkload(&world, 1);  // registers the services
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  // Four independent tenants over four shards: the colocation groups fuse
  // each tenant into one component, and packing spreads them one per shard.
  EXPECT_EQ(runtime.partition().num_components(), 4);
  EXPECT_TRUE(
      VerifyPartition(runtime.union_spec(), runtime.partition()).ok());
  std::vector<bool> used(4, false);
  for (int t = 0; t < 4; ++t) {
    std::vector<ServiceId> services = world.TenantServices(t);
    ASSERT_FALSE(services.empty());
    const int shard =
        runtime.partition().ShardOfService(runtime.union_spec(), services[0]);
    for (ServiceId id : services) {
      EXPECT_EQ(
          runtime.partition().ShardOfService(runtime.union_spec(), id), shard)
          << "tenant " << t;
    }
    used[shard] = true;
  }
  for (int s = 0; s < 4; ++s) EXPECT_TRUE(used[s]) << "shard " << s;
  EXPECT_TRUE(runtime.Stop().ok());
}

// The tentpole equivalence property: a lockstep sharded run is
// bit-identical, shard by shard, to solo single-threaded schedulers fed
// the same per-shard submission sequences — same history fingerprint, same
// SchedulerStats.
TEST(ShardedRuntimeTest, LockstepShardsMatchSoloSchedulersBitExactly) {
  constexpr int kTenants = 4;
  constexpr int kShards = 4;

  // Sharded run.
  ShardedWorld world({.seed = 11, .num_tenants = kTenants});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  std::vector<std::vector<std::string>> routed_names(kShards);
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    routed_names[ticket->shard].push_back(def->name());
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats sharded_stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  // Which tenants each shard hosts (for the mirror's registration order).
  std::vector<std::vector<int>> tenants_of_shard(kShards);
  for (int t = 0; t < kTenants; ++t) {
    const int shard = runtime.partition().ShardOfService(
        runtime.union_spec(), world.TenantServices(t)[0]);
    ASSERT_GE(shard, 0);
    tenants_of_shard[shard].push_back(t);
  }

  for (int s = 0; s < kShards; ++s) {
    // Mirror world: identical seed and Make sequence, so identical
    // ServiceIds and def shapes; register exactly shard s's tenants, in
    // the same relative order the runtime did.
    ShardedWorld mirror({.seed = 11, .num_tenants = kTenants});
    std::vector<const ProcessDef*> mirror_defs = BuildWorkload(&mirror, 2);
    auto mirror_by_name = mirror.DefsByName();
    TransactionalProcessScheduler solo;
    for (int t : tenants_of_shard[s]) {
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.kv(t)).ok());
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.escrow(t)).ok());
      ASSERT_TRUE(solo.RegisterSubsystem(mirror.queue(t)).ok());
    }
    // Same per-shard submission sequence, then run to completion exactly
    // as the worker does: every pass is one Step while work remains.
    for (const std::string& name : routed_names[s]) {
      ASSERT_TRUE(solo.Submit(mirror_by_name.at(name)).ok()) << name;
    }
    if (!routed_names[s].empty()) {
      for (;;) {
        auto more = solo.Step();
        ASSERT_TRUE(more.ok());
        if (!*more) break;
      }
    }
    TransactionalProcessScheduler* sharded = runtime.shard_scheduler(s);
    ASSERT_NE(sharded, nullptr);
    EXPECT_EQ(Fnv1a(sharded->history().ToString()),
              Fnv1a(solo.history().ToString()))
        << "shard " << s << " history diverged:\n"
        << sharded->history().ToString() << "\nvs solo:\n"
        << solo.history().ToString();
    EXPECT_TRUE(sharded_stats.per_shard[s] == solo.stats())
        << "shard " << s << " stats diverged";
  }
}

// Satellite: with one shard the merged stats ARE a solo run's stats.
TEST(ShardedRuntimeTest, MergedStatsWithOneShardEqualSoloRun) {
  ShardedWorld world({.seed = 5, .num_tenants = 3});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ticket->shard, 0);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  ShardedWorld mirror({.seed = 5, .num_tenants = 3});
  std::vector<const ProcessDef*> mirror_defs = BuildWorkload(&mirror, 2);
  TransactionalProcessScheduler solo;
  ASSERT_TRUE(mirror.RegisterAllSolo(&solo).ok());
  for (const ProcessDef* def : mirror_defs) {
    ASSERT_TRUE(solo.Submit(def).ok());
  }
  for (;;) {
    auto more = solo.Step();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_TRUE(stats.merged == solo.stats());
  ASSERT_EQ(stats.per_shard.size(), 1u);
  EXPECT_TRUE(stats.merged == stats.per_shard[0]);
  EXPECT_EQ(stats.submissions_accepted,
            static_cast<int64_t>(mirror_defs.size()));
  EXPECT_EQ(stats.submissions_rejected, 0);
}

TEST(ShardedRuntimeTest, MergeFromAddsCountersAndMaxesVirtualTime) {
  SchedulerStats a;
  a.steps = 3;
  a.virtual_time = 10;
  a.processes_committed = 2;
  SchedulerStats b;
  b.steps = 4;
  b.virtual_time = 7;
  b.processes_committed = 1;
  SchedulerStats merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.steps, 7);
  EXPECT_EQ(merged.virtual_time, 10);  // makespan, not sum
  EXPECT_EQ(merged.processes_committed, 3);
}

// Satellite: the router's typed decision — a tenant-local footprint is
// kPinned, a supported cross-tenant one is kSplit, and an UNSUPPORTED
// spanning shape (remote compensation) is kRejected with the positioned
// diagnostic the admission error carries verbatim.
TEST(ShardedRuntimeTest, UnsupportedSpanningShapeIsPositionedAdmissionError) {
  ShardedWorld world({.seed = 7, .num_tenants = 4});
  (void)BuildWorkload(&world, 1);
  // Forward service on tenant 0 but compensation on tenant 1: a
  // sub-process must compensate locally, so the splitter refuses.
  ProcessDef bad("cross_comp");
  ActivityId c1 = bad.AddActivity(
      "enq_remote_comp", ActivityKind::kCompensatable,
      world.Enqueue(0, "orders"), world.Remove(1, "orders"));
  ActivityId p = bad.AddActivity("seal", ActivityKind::kPivot,
                                 world.KvAdd(0, "audit_v0"));
  ASSERT_TRUE(bad.AddEdge(c1, p).ok());
  ASSERT_TRUE(bad.Validate().ok());

  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  RouterDecision rejected = runtime.router().Decide(bad);
  EXPECT_EQ(rejected.kind, RouteKind::kRejected);
  EXPECT_EQ(rejected.shard, -1);

  auto ticket = runtime.Submit(&bad);
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsInvalidArgument()) << ticket.status();
  // Positioned: the message names the process, the offending activity,
  // both shards, and says how to fix the spec.
  EXPECT_NE(ticket.status().message().find("cross_comp"), std::string::npos)
      << ticket.status();
  EXPECT_NE(ticket.status().message().find("enq_remote_comp"),
            std::string::npos)
      << ticket.status();
  EXPECT_NE(ticket.status().message().find("compensate locally"),
            std::string::npos)
      << ticket.status();
  EXPECT_NE(ticket.status().message().find("colocate"), std::string::npos)
      << ticket.status();
  EXPECT_EQ(runtime.Stats().submissions_rejected, 1);

  // A tenant-local process is kPinned; a supported spanning one kSplit.
  const ProcessDef* good = world.MakeOrderProcess(0, "post_error_order");
  ASSERT_NE(good, nullptr);
  RouterDecision pinned = runtime.router().Decide(*good);
  EXPECT_EQ(pinned.kind, RouteKind::kPinned);
  EXPECT_GE(pinned.shard, 0);
  EXPECT_TRUE(pinned.error.ok());
  const ProcessDef* spanning = world.MakeSpanningProcess("cross_tenant", 0, 1);
  ASSERT_NE(spanning, nullptr);
  RouterDecision split = runtime.router().Decide(*spanning);
  EXPECT_EQ(split.kind, RouteKind::kSplit);
  EXPECT_TRUE(split.error.ok());

  // A well-routed process still goes through after the rejection.
  auto ok_ticket = runtime.Submit(good);
  ASSERT_TRUE(ok_ticket.ok()) << ok_ticket.status();
  ASSERT_TRUE(runtime.Drain().ok());
  auto pid = ok_ticket->Await();
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_EQ(runtime.shard_scheduler(ok_ticket->shard)->OutcomeOf(*pid),
            ProcessOutcome::kCommitted);
}

TEST(ShardedRuntimeTest, UnregisteredServiceIsNotFound) {
  ShardedWorld world({.seed = 7, .num_tenants = 2});
  (void)BuildWorkload(&world, 1);
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  // Variant 99 mints fresh per-variant KV services AFTER Start snapshotted
  // the union spec, so the router has never heard of them.
  const ProcessDef* late = world.MakeOrderProcess(0, "late", /*variant=*/99);
  auto ticket = runtime.Submit(late);
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsNotFound()) << ticket.status();
  ASSERT_TRUE(runtime.Stop().ok());
}

// Satellite: kReject backpressure sheds load once a shard queue is full.
TEST(ShardedRuntimeTest, RejectBackpressureShedsWhenQueueFull) {
  ShardedWorld world({.seed = 13, .num_tenants = 1});
  (void)BuildWorkload(&world, 1);
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;  // the worker drains only on ticks
  options.queue_capacity = 2;
  options.backpressure = BackpressurePolicy::kReject;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  // Variant-0 order processes reuse the services BuildWorkload registered
  // before Start, so these route fine even though the defs are new.
  const ProcessDef* a = world.MakeOrderProcess(0, "bp_a");
  const ProcessDef* b = world.MakeOrderProcess(0, "bp_b");
  const ProcessDef* c = world.MakeOrderProcess(0, "bp_c");
  ASSERT_TRUE(runtime.Submit(a).ok());
  ASSERT_TRUE(runtime.Submit(b).ok());
  auto shed = runtime.Submit(c);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.submissions_accepted, 2);
  EXPECT_EQ(stats.submissions_rejected, 1);
  // The queue drains on the next ticks and capacity frees up again.
  ASSERT_TRUE(runtime.Tick(1).ok());
  ASSERT_TRUE(runtime.Submit(c).ok());
  ASSERT_TRUE(runtime.Drain().ok());
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_EQ(runtime.Stats().merged.processes_committed, 3);
}

class CountingObserver : public RuntimeObserver {
 public:
  void OnActivityCommitted(int shard, ProcessId, ActivityId,
                           bool inverse) override {
    ++activities_;
    if (inverse) ++inverses_;
    TouchShard(shard);
  }
  void OnProcessTerminated(int shard, ProcessId,
                           ProcessOutcome outcome) override {
    if (outcome == ProcessOutcome::kCommitted) ++committed_;
    if (outcome == ProcessOutcome::kAborted) ++aborted_;
    TouchShard(shard);
  }
  void TouchShard(int shard) { shards_seen_.insert(shard); }

  int activities_ = 0;
  int inverses_ = 0;
  int committed_ = 0;
  int aborted_ = 0;
  std::set<int> shards_seen_;
};

// Satellite: the relay fans shard-tagged events into runtime observers,
// and the counts agree with the merged stats.
TEST(ShardedRuntimeTest, ObserverRelayMatchesMergedStats) {
  ShardedWorld world({.seed = 17, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kLockstep;
  ShardedRuntime runtime(options);
  CountingObserver observer;
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.AddObserver(&observer).ok());
  ASSERT_TRUE(runtime.Start().ok());
  for (const ProcessDef* def : defs) {
    ASSERT_TRUE(runtime.Submit(def).ok());
  }
  ASSERT_TRUE(runtime.Drain().ok());
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());

  EXPECT_EQ(observer.committed_, stats.merged.processes_committed);
  EXPECT_EQ(observer.aborted_, stats.merged.processes_aborted);
  EXPECT_EQ(observer.activities_,
            stats.merged.activities_committed + stats.merged.compensations);
  EXPECT_EQ(observer.inverses_, stats.merged.compensations);
  EXPECT_EQ(static_cast<int>(observer.shards_seen_.size()), 4);
}

TEST(ShardedRuntimeTest, FreeRunningDrainReachesQuiescence) {
  ShardedWorld world({.seed = 23, .num_tenants = 4});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 2);
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.mode = TickMode::kFreeRunning;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  std::vector<SubmitTicket> tickets;
  for (const ProcessDef* def : defs) {
    auto ticket = runtime.Submit(def);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(runtime.Drain().ok());
  ASSERT_TRUE(runtime.Stop().ok());
  for (auto& ticket : tickets) {
    auto pid = ticket.Await();
    ASSERT_TRUE(pid.ok()) << pid.status();
    EXPECT_EQ(runtime.shard_scheduler(ticket.shard)->OutcomeOf(*pid),
              ProcessOutcome::kCommitted);
  }
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
  EXPECT_EQ(runtime.Stats().merged.processes_committed,
            static_cast<int64_t>(defs.size()));
}

// The ownership-transferring Submit overload: the producer drops its
// reference to the definition immediately after submitting, and only the
// runtime's retained reference keeps it alive while the shard scheduler
// admits, runs, and records the process. ASan turns any lifetime hole
// here into a hard use-after-free failure.
TEST(ShardedRuntimeTest, SharedPtrSubmissionOutlivesProducerReference) {
  ShardedWorld world({.seed = 31, .num_tenants = 1});
  (void)BuildWorkload(&world, 1);  // registers the services
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kFreeRunning;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  std::vector<SubmitTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    auto def = std::make_shared<ProcessDef>(
        *world.MakeOrderProcess(0, "ephemeral_" + std::to_string(i)));
    auto ticket =
        runtime.Submit(std::shared_ptr<const ProcessDef>(def), /*param=*/i);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
    def.reset();  // producer's reference is gone before the worker drains
  }
  ASSERT_TRUE(runtime.Drain().ok());
  ASSERT_TRUE(runtime.Stop().ok());
  for (auto& ticket : tickets) {
    auto pid = ticket.Await();
    ASSERT_TRUE(pid.ok()) << pid.status();
    EXPECT_EQ(runtime.shard_scheduler(ticket.shard)->OutcomeOf(*pid),
              ProcessOutcome::kCommitted);
  }
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

// Stats() is documented thread-safe; hammering it from a polling thread
// while producers submit and shard workers publish snapshots must be
// race-free (lifecycle flags, accept/reject counters, lockstep round
// counter, agent counters, shard snapshots). TSan is the real assertion
// here; the monotonicity checks keep the snapshots honest.
TEST(ShardedRuntimeTest, StatsReadsAreSafeUnderConcurrentTraffic) {
  ShardedWorld world({.seed = 37, .num_tenants = 3});
  std::vector<const ProcessDef*> defs = BuildWorkload(&world, 3);
  ShardedRuntimeOptions options;
  options.num_shards = 3;
  options.mode = TickMode::kFreeRunning;
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());

  std::atomic<bool> done{false};
  std::thread poller([&] {
    int64_t last_accepted = 0;
    int64_t last_committed = 0;
    while (!done.load()) {
      RuntimeStats stats = runtime.Stats();
      EXPECT_GE(stats.submissions_accepted, last_accepted);
      EXPECT_GE(stats.merged.processes_committed, last_committed);
      EXPECT_GE(stats.submissions_rejected, 0);
      last_accepted = stats.submissions_accepted;
      last_committed = stats.merged.processes_committed;
      std::this_thread::yield();
    }
  });
  constexpr int kProducers = 3;
  std::atomic<size_t> next{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= defs.size()) break;
        auto ticket = runtime.Submit(defs[i]);
        EXPECT_TRUE(ticket.ok()) << ticket.status();
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(runtime.Drain().ok());
  done.store(true);
  poller.join();
  RuntimeStats stats = runtime.Stats();
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_EQ(stats.submissions_accepted, static_cast<int64_t>(defs.size()));
  EXPECT_TRUE(world.CheckAdtInvariants().ok());
}

TEST(ShardedRuntimeTest, StopFailsLeftoverSubmissionsInsteadOfDropping) {
  ShardedWorld world({.seed = 29, .num_tenants = 1});
  (void)BuildWorkload(&world, 1);
  const ProcessDef* def = world.MakeOrderProcess(0, "leftover");
  ShardedRuntimeOptions options;
  options.num_shards = 1;
  options.mode = TickMode::kLockstep;  // never ticked: stays queued
  ShardedRuntime runtime(options);
  ASSERT_TRUE(world.RegisterAll(&runtime).ok());
  ASSERT_TRUE(runtime.Start().ok());
  auto ticket = runtime.Submit(def);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(runtime.Stop().ok());
  auto pid = ticket->Await();
  ASSERT_FALSE(pid.ok());
  EXPECT_TRUE(pid.status().IsUnavailable()) << pid.status();
}

// Free-running multi-producer soak: concurrent Submit from several
// threads, fresh seeds per iteration (override via TPM_RUNTIME_SEED_BASE /
// TPM_RUNTIME_SOAK_ITERS for the CI soak), full correctness audit after
// quiescence: PRED + Proc-REC per shard plus the ADT invariants.
TEST(ShardedRuntimeSoakTest, ConcurrentProducersPreserveAllInvariants) {
  const char* base_env = std::getenv("TPM_RUNTIME_SEED_BASE");
  const char* iters_env = std::getenv("TPM_RUNTIME_SOAK_ITERS");
  const uint64_t seed_base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 1234;
  const int iterations =
      iters_env != nullptr ? std::atoi(iters_env) : 2;

  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ShardedWorld world(
        {.seed = seed, .num_tenants = 6, .queue_initial_tokens = 32});
    std::vector<const ProcessDef*> defs = BuildWorkload(&world, 4);
    ShardedRuntimeOptions options;
    options.num_shards = 3;
    options.mode = TickMode::kFreeRunning;
    options.queue_capacity = 16;  // small, so backpressure engages
    ShardedRuntime runtime(options);
    ASSERT_TRUE(world.RegisterAll(&runtime).ok());
    ASSERT_TRUE(runtime.Start().ok());

    constexpr int kProducers = 4;
    std::atomic<size_t> next{0};
    std::atomic<int> submit_failures{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= defs.size()) break;
          auto ticket = runtime.Submit(defs[i]);
          if (!ticket.ok() || !ticket->Await().ok()) {
            submit_failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    ASSERT_TRUE(runtime.Drain().ok());
    RuntimeStats stats = runtime.Stats();
    ASSERT_TRUE(runtime.Stop().ok());

    EXPECT_EQ(submit_failures.load(), 0);
    EXPECT_EQ(stats.submissions_accepted,
              static_cast<int64_t>(defs.size()));
    EXPECT_EQ(stats.merged.processes_committed +
                  stats.merged.processes_aborted,
              static_cast<int64_t>(defs.size()));
    EXPECT_TRUE(world.CheckAdtInvariants().ok());
    for (int s = 0; s < options.num_shards; ++s) {
      TransactionalProcessScheduler* scheduler = runtime.shard_scheduler(s);
      auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
      ASSERT_TRUE(pred.ok());
      EXPECT_TRUE(*pred) << "shard " << s << " history not PRED";
      EXPECT_TRUE(IsProcessRecoverable(
          CommittedProjection(scheduler->history()),
          scheduler->conflict_spec()))
          << "shard " << s << " not Proc-REC";
    }
    if (::testing::Test::HasFailure()) {
      // CI uploads this file so the failing seed survives the run; rerun
      // locally with TPM_RUNTIME_SEED_BASE=<seed> TPM_RUNTIME_SOAK_ITERS=1.
      std::string path = testing::WriteFailingSeed(
          "sharded_runtime_soak", iter, "ShardedRuntimeSoakTest",
          StrCat("TPM_RUNTIME_SEED_BASE=", seed,
                 " TPM_RUNTIME_SOAK_ITERS=1 ctest -R ShardedRuntimeSoak"));
      std::cerr << "soak failed at seed " << seed << "; reproducer written to "
                << path << "\n";
      break;
    }
  }
}

}  // namespace
}  // namespace tpm
