// Property tests for the conflict partitioner: over random conflict specs,
// every conflict edge stays shard-local, packing is deterministic, and the
// independent VerifyPartition checker rejects corrupted assignments.

#include "runtime/conflict_partition.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace tpm {
namespace {

ConflictSpec RandomSpec(Rng* rng, int num_services, double edge_probability) {
  ConflictSpec spec;
  for (int i = 0; i < num_services; ++i) {
    spec.RegisterService(ServiceId(i + 1));
  }
  for (int i = 0; i < num_services; ++i) {
    for (int j = i; j < num_services; ++j) {
      if (rng->NextBool(edge_probability)) {
        spec.AddConflict(ServiceId(i + 1), ServiceId(j + 1));
      }
    }
  }
  return spec;
}

TEST(ConflictPartitionTest, SingletonSpecLandsOnShardZero) {
  ConflictSpec spec;
  spec.RegisterService(ServiceId(7));
  auto partition = ComputeConflictPartition(spec, 3);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->num_components(), 1);
  EXPECT_EQ(partition->ShardOfService(spec, ServiceId(7)), 0);
  EXPECT_EQ(partition->ShardOfService(spec, ServiceId(8)), -1);  // unknown
  EXPECT_TRUE(VerifyPartition(spec, *partition).ok());
}

TEST(ConflictPartitionTest, RejectsNonPositiveShardCount) {
  ConflictSpec spec;
  spec.RegisterService(ServiceId(1));
  EXPECT_FALSE(ComputeConflictPartition(spec, 0).ok());
  EXPECT_FALSE(ComputeConflictPartition(spec, -2).ok());
}

TEST(ConflictPartitionTest, RandomSpecsNeverSplitAConflictEdge) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const int n = 1 + static_cast<int>(rng.NextBounded(40));
    const double p = rng.NextDouble() * 0.2;
    const int shards = 1 + static_cast<int>(rng.NextBounded(8));
    ConflictSpec spec = RandomSpec(&rng, n, p);
    auto partition = ComputeConflictPartition(spec, shards);
    ASSERT_TRUE(partition.ok()) << "round " << round;
    ASSERT_TRUE(VerifyPartition(spec, *partition).ok()) << "round " << round;
    for (const auto& [a, b] : spec.ConflictPairs()) {
      EXPECT_EQ(partition->ShardOfService(spec, a),
                partition->ShardOfService(spec, b))
          << "round " << round << " edge " << a.value() << "-" << b.value();
      EXPECT_EQ(partition->component_of[spec.IndexOf(a)],
                partition->component_of[spec.IndexOf(b)])
          << "round " << round;
    }
  }
}

TEST(ConflictPartitionTest, PackingIsDeterministic) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBounded(30));
    ConflictSpec spec = RandomSpec(&rng, n, 0.1);
    auto a = ComputeConflictPartition(spec, 4);
    auto b = ComputeConflictPartition(spec, 4);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->component_of, b->component_of) << "round " << round;
    EXPECT_EQ(a->shard_of_component, b->shard_of_component)
        << "round " << round;
    EXPECT_EQ(a->shard_of, b->shard_of) << "round " << round;
  }
}

TEST(ConflictPartitionTest, IndependentServicesSpreadAcrossShards) {
  // 8 mutually non-conflicting self-conflicting services over 4 shards:
  // greedy least-loaded packing must balance them 2-2-2-2.
  ConflictSpec spec;
  for (int i = 0; i < 8; ++i) {
    spec.RegisterService(ServiceId(i + 1));
    spec.AddConflict(ServiceId(i + 1), ServiceId(i + 1));
  }
  auto partition = ComputeConflictPartition(spec, 4);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->num_components(), 8);
  std::vector<int> load(4, 0);
  for (int shard : partition->shard_of) {
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    ++load[shard];
  }
  for (int shard = 0; shard < 4; ++shard) EXPECT_EQ(load[shard], 2);
}

TEST(ConflictPartitionTest, ColocationGroupsAreCoResident) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const int n = 6 + static_cast<int>(rng.NextBounded(20));
    ConflictSpec spec = RandomSpec(&rng, n, 0.05);
    // Two random colocation groups of three services each.
    ColocationGroups groups;
    for (int g = 0; g < 2; ++g) {
      std::set<int> members;
      while (members.size() < 3) {
        members.insert(1 + static_cast<int>(rng.NextBounded(n)));
      }
      std::vector<ServiceId> group;
      for (int m : members) group.push_back(ServiceId(m));
      groups.push_back(group);
    }
    auto partition = ComputeConflictPartition(spec, 4, groups);
    ASSERT_TRUE(partition.ok()) << "round " << round;
    ASSERT_TRUE(VerifyPartition(spec, *partition, groups).ok())
        << "round " << round;
    for (const auto& group : groups) {
      const int shard = partition->ShardOfService(spec, group[0]);
      for (ServiceId id : group) {
        EXPECT_EQ(partition->ShardOfService(spec, id), shard)
            << "round " << round;
      }
    }
  }
}

TEST(ConflictPartitionTest, UnknownColocationServiceIsRejected) {
  ConflictSpec spec;
  spec.RegisterService(ServiceId(1));
  ColocationGroups groups = {{ServiceId(1), ServiceId(42)}};
  auto partition = ComputeConflictPartition(spec, 2, groups);
  EXPECT_FALSE(partition.ok());
  EXPECT_TRUE(partition.status().IsNotFound());
}

TEST(ConflictPartitionTest, VerifyRejectsCorruptedAssignments) {
  Rng rng(5);
  int corrupted_edges = 0;
  for (int round = 0; round < 100; ++round) {
    const int n = 4 + static_cast<int>(rng.NextBounded(20));
    ConflictSpec spec = RandomSpec(&rng, n, 0.15);
    auto partition = ComputeConflictPartition(spec, 3);
    ASSERT_TRUE(partition.ok());
    ASSERT_TRUE(VerifyPartition(spec, *partition).ok());

    // Corruption 1: truncate a table.
    {
      ConflictPartition bad = *partition;
      bad.shard_of.pop_back();
      EXPECT_FALSE(VerifyPartition(spec, bad).ok()) << "round " << round;
    }
    // Corruption 2: out-of-range shard.
    {
      ConflictPartition bad = *partition;
      bad.shard_of[rng.NextIndex(bad.shard_of.size())] = bad.num_shards;
      EXPECT_FALSE(VerifyPartition(spec, bad).ok()) << "round " << round;
    }
    // Corruption 3: move one endpoint of a conflict edge to a different
    // shard (the violation the whole subsystem exists to prevent). Only
    // meaningful when the spec has an edge between distinct shards'
    // candidates; count how often we exercised it.
    auto pairs = spec.ConflictPairs();
    if (!pairs.empty() && partition->num_shards > 1) {
      const auto& [a, b] = pairs[rng.NextIndex(pairs.size())];
      ConflictPartition bad = *partition;
      const int ia = spec.IndexOf(a);
      bad.shard_of[ia] = (bad.shard_of[ia] + 1) % bad.num_shards;
      EXPECT_FALSE(VerifyPartition(spec, bad).ok())
          << "round " << round << " edge " << a.value() << "-" << b.value();
      ++corrupted_edges;
    }
  }
  EXPECT_GT(corrupted_edges, 10);  // the interesting corruption did run
}

}  // namespace
}  // namespace tpm
