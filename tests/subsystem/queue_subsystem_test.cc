#include "subsystem/queue_subsystem.h"

#include <gtest/gtest.h>

#include "core/conflict.h"

namespace tpm {
namespace {

ServiceRequest Req(int64_t process, int64_t activity) {
  return ServiceRequest{ProcessId(process), ActivityId(activity), 0};
}

class QueueSubsystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sub_.CreateQueue("orders", /*initial_tokens=*/2).ok());
    ASSERT_TRUE(sub_.RegisterEnqueueService(kEnq, "orders").ok());
    ASSERT_TRUE(sub_.RegisterDequeueService(kDeq, "orders").ok());
    ASSERT_TRUE(sub_.RegisterRemoveService(kRm, "orders").ok());
    ASSERT_TRUE(sub_.RegisterRequeueService(kReq, "orders").ok());
    ASSERT_TRUE(sub_.RegisterLenService(kLen, "orders").ok());
  }

  static constexpr ServiceId kEnq{1}, kDeq{2}, kRm{3}, kReq{4}, kLen{5};
  QueueSubsystem sub_{SubsystemId(1), "queue"};
};

TEST_F(QueueSubsystemTest, FifoOrderWithSeededTokens) {
  // CreateQueue pre-seeded tokens 1 and 2.
  auto first = sub_.Invoke(kDeq, Req(1, 1));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->return_value, 1);
  auto enq = sub_.Invoke(kEnq, Req(2, 1));
  ASSERT_TRUE(enq.ok());
  EXPECT_EQ(enq->return_value, 3);  // fresh token, not a reused id
  auto second = sub_.Invoke(kDeq, Req(1, 2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->return_value, 2);  // FIFO: the seeded token before 3
  EXPECT_EQ(sub_.LengthOf("orders"), 1);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, DequeueOnEmptyQueueAborts) {
  ASSERT_TRUE(sub_.Invoke(kDeq, Req(1, 1)).ok());
  ASSERT_TRUE(sub_.Invoke(kDeq, Req(1, 2)).ok());
  EXPECT_TRUE(sub_.Invoke(kDeq, Req(1, 3)).status().IsAborted());
  EXPECT_EQ(sub_.empty_dequeues(), 1);
}

TEST_F(QueueSubsystemTest, RemoveCompensatesTheActivitysOwnEnqueue) {
  // P1/a7 enqueues; the compensating rm arrives under the same (process,
  // activity) key and removes exactly that token, wherever it sits.
  auto enq = sub_.Invoke(kEnq, Req(1, 7));
  ASSERT_TRUE(enq.ok());
  ASSERT_TRUE(sub_.Invoke(kEnq, Req(2, 1)).ok());  // someone else behind it
  auto rm = sub_.Invoke(kRm, Req(1, 7));
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(rm->return_value, enq->return_value);
  EXPECT_EQ(sub_.LengthOf("orders"), 3);  // 2 seeded + P2's
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, DoubleRemoveIsRejected) {
  ASSERT_TRUE(sub_.Invoke(kEnq, Req(1, 7)).ok());
  ASSERT_TRUE(sub_.Invoke(kRm, Req(1, 7)).ok());
  // The bookkeeping is gone: a second compensation must surface, not
  // silently succeed.
  EXPECT_TRUE(sub_.Invoke(kRm, Req(1, 7)).status().IsAborted());
}

TEST_F(QueueSubsystemTest, RemoveAfterTokenWasDequeuedIsRejected) {
  QueueSubsystem fresh(SubsystemId(2), "queue2");
  ASSERT_TRUE(fresh.CreateQueue("q", 0).ok());
  ASSERT_TRUE(fresh.RegisterEnqueueService(kEnq, "q").ok());
  ASSERT_TRUE(fresh.RegisterDequeueService(kDeq, "q").ok());
  ASSERT_TRUE(fresh.RegisterRemoveService(kRm, "q").ok());
  ASSERT_TRUE(fresh.Invoke(kEnq, Req(1, 1)).ok());
  ASSERT_TRUE(fresh.Invoke(kDeq, Req(2, 1)).ok());  // P2 consumed the token
  EXPECT_TRUE(fresh.Invoke(kRm, Req(1, 1)).status().IsAborted());
}

TEST_F(QueueSubsystemTest, RequeueRestoresFifoPosition) {
  auto deq = sub_.Invoke(kDeq, Req(1, 3));
  ASSERT_TRUE(deq.ok());
  EXPECT_EQ(deq->return_value, 1);
  auto req = sub_.Invoke(kReq, Req(1, 3));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->return_value, 1);
  // Back at the head: the next dequeue sees the same token again.
  auto again = sub_.Invoke(kDeq, Req(2, 1));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->return_value, 1);
  // Double requeue is a double compensation.
  EXPECT_TRUE(sub_.Invoke(kReq, Req(1, 3)).status().IsAborted());
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, EnqueueReturnValuesAreOrderIndependent) {
  // §3.2: concurrent enqueues commute observationally — each returns its
  // own token and both tokens end up present, in either order.
  QueueSubsystem other(SubsystemId(2), "queue2");
  ASSERT_TRUE(other.CreateQueue("orders", 2).ok());
  ASSERT_TRUE(other.RegisterEnqueueService(kEnq, "orders").ok());
  auto a1 = sub_.Invoke(kEnq, Req(1, 1));
  auto b1 = sub_.Invoke(kEnq, Req(2, 1));
  auto b2 = other.Invoke(kEnq, Req(2, 1));
  auto a2 = other.Invoke(kEnq, Req(1, 1));
  ASSERT_TRUE(a1.ok() && b1.ok() && a2.ok() && b2.ok());
  // Each process sees a fresh token; the multiset of queued tokens is the
  // same in both orders (the ids differ by issue order, the *sets* match).
  EXPECT_EQ(sub_.LengthOf("orders"), other.LengthOf("orders"));
  EXPECT_TRUE(sub_.CheckInvariants().ok());
  EXPECT_TRUE(other.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, PreparedEnqueueBlocksOnlyNonCommutingOps) {
  auto prepared = sub_.InvokePrepared(kEnq, Req(1, 1));
  ASSERT_TRUE(prepared.ok());
  // enq/enq commutes: a second producer proceeds.
  EXPECT_FALSE(sub_.WouldBlock(kEnq));
  EXPECT_TRUE(sub_.Invoke(kEnq, Req(2, 1)).ok());
  // deq races with the in-doubt enq near-empty: blocked.
  EXPECT_TRUE(sub_.WouldBlock(kDeq));
  EXPECT_TRUE(sub_.Invoke(kDeq, Req(3, 1)).status().IsUnavailable());
  EXPECT_TRUE(sub_.WouldBlock(kLen));
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  EXPECT_FALSE(sub_.WouldBlock(kDeq));
  EXPECT_TRUE(sub_.Invoke(kDeq, Req(3, 1)).ok());
}

TEST_F(QueueSubsystemTest, PreparedAbortUndoesTheEnqueue) {
  auto prepared = sub_.InvokePrepared(kEnq, Req(1, 1));
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(sub_.LengthOf("orders"), 3);
  ASSERT_TRUE(sub_.AbortPrepared(prepared->tx).ok());
  EXPECT_EQ(sub_.LengthOf("orders"), 2);
  // The bookkeeping went with it: compensating the aborted enq is an error.
  EXPECT_TRUE(sub_.Invoke(kRm, Req(1, 1)).status().IsAborted());
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, AbortAllPreparedRestoresTheQueue) {
  auto snapshot = sub_.Snapshot();
  ASSERT_TRUE(sub_.InvokePrepared(kEnq, Req(1, 1)).ok());
  ASSERT_TRUE(sub_.InvokePrepared(kEnq, Req(2, 1)).ok());
  ASSERT_TRUE(sub_.AbortAllPrepared().ok());
  EXPECT_EQ(sub_.Snapshot(), snapshot);
  EXPECT_FALSE(sub_.WouldBlock(kDeq));
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, ResolvedProcessLosesItsCompensationHandles) {
  ASSERT_TRUE(sub_.Invoke(kEnq, Req(1, 1)).ok());
  ASSERT_TRUE(sub_.Invoke(kDeq, Req(1, 2)).ok());
  sub_.OnProcessResolved(ProcessId(1), /*committed=*/true);
  EXPECT_TRUE(sub_.Invoke(kRm, Req(1, 1)).status().IsAborted());
  EXPECT_TRUE(sub_.Invoke(kReq, Req(1, 2)).status().IsAborted());
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(QueueSubsystemTest, LenIsEffectFreeAndReportsLength) {
  auto len = sub_.Invoke(kLen, Req(1, 1));
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len->return_value, 2);
  auto def = sub_.services().Lookup(kLen);
  ASSERT_TRUE(def.ok());
  EXPECT_TRUE((*def)->effect_free);
}

TEST_F(QueueSubsystemTest, DerivedSpecMatchesTheDocumentedTable) {
  ConflictSpec spec;
  sub_.services().DeriveConflicts(&spec);
  // enq commutes with enq, and by perfect-closure with rm (and rm with
  // rm); deq/req conflict with every update, len stays conservative.
  EXPECT_FALSE(spec.ServicesConflict(kEnq, kEnq));
  EXPECT_FALSE(spec.ServicesConflict(kEnq, kRm));
  EXPECT_FALSE(spec.ServicesConflict(kRm, kRm));
  EXPECT_TRUE(spec.ServicesConflict(kEnq, kDeq));
  EXPECT_TRUE(spec.ServicesConflict(kDeq, kDeq));
  EXPECT_TRUE(spec.ServicesConflict(kDeq, kReq));
  EXPECT_TRUE(spec.ServicesConflict(kReq, kRm));
  EXPECT_TRUE(spec.ServicesConflict(kLen, kEnq));
  EXPECT_TRUE(spec.IsEffectFreeService(kLen));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());

  spec.set_op_commutativity_enabled(false);
  EXPECT_TRUE(spec.ServicesConflict(kEnq, kEnq));
  EXPECT_TRUE(spec.ServicesConflict(kEnq, kRm));
}

TEST_F(QueueSubsystemTest, RejectsInvalidRegistrationsAndRequests) {
  EXPECT_TRUE(sub_.CreateQueue("bad", -1).IsInvalidArgument());
  EXPECT_TRUE(sub_.Invoke(ServiceId(99), Req(1, 1)).status().IsNotFound());
}

}  // namespace
}  // namespace tpm
