#include "subsystem/commit_order.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 0) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class CommitOrderTest : public ::testing::Test {
 protected:
  KvStore store_;
  CommitOrderedTxManager mgr_{&store_};
};

TEST_F(CommitOrderTest, SerialEquivalenceOfParallelNonConflicting) {
  auto add_a = MakeAddService(ServiceId(1), "a", "a");
  auto add_b = MakeAddService(ServiceId(2), "b", "b");
  auto t1 = mgr_.Begin(0);
  auto t2 = mgr_.Begin(1);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(mgr_.Execute(*t1, add_a, Req(1), nullptr).ok());
  ASSERT_TRUE(mgr_.Execute(*t2, add_b, Req(2), nullptr).ok());
  ASSERT_TRUE(mgr_.Commit(*t1).ok());
  ASSERT_TRUE(mgr_.Commit(*t2).ok());
  EXPECT_EQ(store_.Get("a"), 1);
  EXPECT_EQ(store_.Get("b"), 2);
}

TEST_F(CommitOrderTest, CommitOrderGateBlocksOutOfOrderCommit) {
  auto add_a = MakeAddService(ServiceId(1), "a", "a");
  auto t1 = mgr_.Begin(0);
  auto t2 = mgr_.Begin(1);
  ASSERT_TRUE(mgr_.Execute(*t2, add_a, Req(1), nullptr).ok());
  // t2 cannot commit before t1 (commit-order serializability).
  EXPECT_TRUE(mgr_.Commit(*t2).IsFailedPrecondition());
  ASSERT_TRUE(mgr_.Commit(*t1).ok());
  EXPECT_TRUE(mgr_.Commit(*t2).ok());
}

TEST_F(CommitOrderTest, StaleReadForcesRestart) {
  auto add = MakeAddService(ServiceId(1), "k", "k");
  auto t1 = mgr_.Begin(0);
  auto t2 = mgr_.Begin(1);
  // Both read "k" = 0 and add; t2's read becomes stale once t1 commits.
  ASSERT_TRUE(mgr_.Execute(*t1, add, Req(5), nullptr).ok());
  ASSERT_TRUE(mgr_.Execute(*t2, add, Req(7), nullptr).ok());
  ASSERT_TRUE(mgr_.Commit(*t1).ok());
  EXPECT_TRUE(mgr_.Commit(*t2).IsAborted());
  EXPECT_EQ(mgr_.live(), 0u);
  // Restart t2 (the §3.6 re-invocation); now it sees t1's effect.
  auto t2r = mgr_.Begin(2);
  int64_t ret = 0;
  ASSERT_TRUE(mgr_.Execute(*t2r, add, Req(7), &ret).ok());
  ASSERT_TRUE(mgr_.Commit(*t2r).ok());
  EXPECT_EQ(store_.Get("k"), 12);  // 5 + 7: serial-order equivalent
}

TEST_F(CommitOrderTest, ReadYourOwnWrites) {
  auto add = MakeAddService(ServiceId(1), "k", "k");
  auto t = mgr_.Begin(0);
  int64_t ret = 0;
  ASSERT_TRUE(mgr_.Execute(*t, add, Req(3), &ret).ok());
  EXPECT_EQ(ret, 3);
  ASSERT_TRUE(mgr_.Execute(*t, add, Req(4), &ret).ok());
  EXPECT_EQ(ret, 7);  // sees its own prior write
  ASSERT_TRUE(mgr_.Commit(*t).ok());
  EXPECT_EQ(store_.Get("k"), 7);
}

TEST_F(CommitOrderTest, AbortDiscardsBufferedWrites) {
  auto add = MakeAddService(ServiceId(1), "k", "k");
  auto t = mgr_.Begin(0);
  ASSERT_TRUE(mgr_.Execute(*t, add, Req(3), nullptr).ok());
  ASSERT_TRUE(mgr_.Abort(*t).ok());
  EXPECT_FALSE(store_.Exists("k"));
  EXPECT_TRUE(mgr_.Abort(*t).IsNotFound());
}

TEST_F(CommitOrderTest, PositionBookkeeping) {
  auto t1 = mgr_.Begin(0);
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(mgr_.Begin(0).status().code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(mgr_.Commit(*t1).ok());
  EXPECT_TRUE(mgr_.Begin(0).status().IsInvalidArgument());  // passed
  EXPECT_TRUE(mgr_.Begin(1).ok());
}

TEST_F(CommitOrderTest, EffectEqualsStrongOrderExecution) {
  // Weakly ordered execution of three conflicting add transactions, with
  // interleaved Execute calls, must equal the serial (strong-order) run.
  KvStore strong;
  for (int i = 0; i < 3; ++i) strong.Add("k", i + 1);

  auto add = MakeAddService(ServiceId(1), "k", "k");
  auto t1 = mgr_.Begin(0);
  auto t2 = mgr_.Begin(1);
  auto t3 = mgr_.Begin(2);
  ASSERT_TRUE(mgr_.Execute(*t1, add, Req(1), nullptr).ok());
  ASSERT_TRUE(mgr_.Execute(*t2, add, Req(2), nullptr).ok());
  ASSERT_TRUE(mgr_.Execute(*t3, add, Req(3), nullptr).ok());
  ASSERT_TRUE(mgr_.Commit(*t1).ok());
  // t2 and t3 read stale snapshots: restart them, keeping their relative
  // weak-order positions (a restart re-enters at its old slot, §3.6).
  ASSERT_TRUE(mgr_.Commit(*t2).IsAborted());
  auto t2r = mgr_.Begin(1);
  ASSERT_TRUE(t2r.ok()) << t2r.status();
  ASSERT_TRUE(mgr_.Execute(*t2r, add, Req(2), nullptr).ok());
  ASSERT_TRUE(mgr_.Commit(*t2r).ok());
  ASSERT_TRUE(mgr_.Commit(*t3).IsAborted());
  auto t3r = mgr_.Begin(2);
  ASSERT_TRUE(t3r.ok()) << t3r.status();
  ASSERT_TRUE(mgr_.Execute(*t3r, add, Req(3), nullptr).ok());
  ASSERT_TRUE(mgr_.Commit(*t3r).ok());

  EXPECT_TRUE(store_.SameContents(strong));
}

}  // namespace
}  // namespace tpm
