#include "subsystem/local_tx.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 0) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class LocalTxTest : public ::testing::Test {
 protected:
  KvStore store_;
  LocalTxManager mgr_{&store_};
};

TEST_F(LocalTxTest, ImmediateInvocationApplies) {
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto outcome = mgr_.InvokeImmediate(put, Req(5));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(store_.Get("k"), 5);
}

TEST_F(LocalTxTest, FailingBodyLeavesNoEffects) {
  ServiceDef failing;
  failing.id = ServiceId(1);
  failing.name = "failing";
  failing.write_set = {"k"};
  failing.body = [](KvStore* store, const ServiceRequest&, int64_t*) {
    store->Put("k", 99);  // partial work, then abort
    return Status::Aborted("boom");
  };
  auto outcome = mgr_.InvokeImmediate(failing, Req());
  EXPECT_TRUE(outcome.status().IsAborted());
  EXPECT_FALSE(store_.Exists("k"));  // atomicity: nothing leaked
}

TEST_F(LocalTxTest, PreparedBuffersUntilCommit) {
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto prepared = mgr_.InvokePrepared(put, Req(5));
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(store_.Exists("k"));  // not visible yet
  EXPECT_EQ(mgr_.num_prepared(), 1u);
  ASSERT_TRUE(mgr_.CommitPrepared(prepared->tx).ok());
  EXPECT_EQ(store_.Get("k"), 5);
  EXPECT_EQ(mgr_.num_prepared(), 0u);
}

TEST_F(LocalTxTest, PreparedAbortDiscards) {
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto prepared = mgr_.InvokePrepared(put, Req(5));
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(mgr_.AbortPrepared(prepared->tx).ok());
  EXPECT_FALSE(store_.Exists("k"));
}

TEST_F(LocalTxTest, PreparedLocksBlockConflicts) {
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto put2 = MakePutService(ServiceId(2), "put2", "k");
  auto read = MakeReadService(ServiceId(3), "read", "k");
  auto other = MakePutService(ServiceId(4), "other", "j");
  auto prepared = mgr_.InvokePrepared(put, Req(5));
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(mgr_.WouldBlock(put2));
  EXPECT_TRUE(mgr_.WouldBlock(read));
  EXPECT_FALSE(mgr_.WouldBlock(other));
  EXPECT_TRUE(mgr_.InvokeImmediate(put2, Req(1)).status().IsUnavailable());
  EXPECT_TRUE(mgr_.InvokePrepared(read, Req()).status().IsUnavailable());
  ASSERT_TRUE(mgr_.CommitPrepared(prepared->tx).ok());
  EXPECT_FALSE(mgr_.WouldBlock(put2));
}

TEST_F(LocalTxTest, UnknownPreparedTxRejected) {
  EXPECT_TRUE(mgr_.CommitPrepared(TxId(7)).IsNotFound());
  EXPECT_TRUE(mgr_.AbortPrepared(TxId(7)).IsNotFound());
}

TEST_F(LocalTxTest, AbortAllPreparedReleasesEverything) {
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto other = MakePutService(ServiceId(2), "put2", "j");
  ASSERT_TRUE(mgr_.InvokePrepared(put, Req(1)).ok());
  ASSERT_TRUE(mgr_.InvokePrepared(other, Req(2)).ok());
  mgr_.AbortAllPrepared();
  EXPECT_EQ(mgr_.num_prepared(), 0u);
  EXPECT_FALSE(mgr_.WouldBlock(put));
  EXPECT_FALSE(store_.Exists("k"));
  EXPECT_FALSE(store_.Exists("j"));
}

TEST_F(LocalTxTest, ReturnValueComesFromSandbox) {
  store_.Put("k", 42);
  auto put = MakePutService(ServiceId(1), "put", "k");
  auto outcome = mgr_.InvokeImmediate(put, Req(1));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->return_value, 42);  // previous value
}

}  // namespace
}  // namespace tpm
