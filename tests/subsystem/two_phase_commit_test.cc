#include "subsystem/two_phase_commit.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/virtual_clock.h"
#include "subsystem/subsystem_proxy.h"
#include "testing/fault_injector.h"
#include "testing/faulty_subsystem.h"

namespace tpm {
namespace {

ServiceRequest Req(int64_t param) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class TwoPhaseCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        a_.RegisterService(MakeAddService(ServiceId(1), "add", "x")).ok());
    ASSERT_TRUE(
        b_.RegisterService(MakeAddService(ServiceId(2), "add", "y")).ok());
  }

  std::vector<CommitBranch> PrepareBoth() {
    auto pa = a_.InvokePrepared(ServiceId(1), Req(1));
    auto pb = b_.InvokePrepared(ServiceId(2), Req(2));
    EXPECT_TRUE(pa.ok());
    EXPECT_TRUE(pb.ok());
    return {{&a_, pa->tx}, {&b_, pb->tx}};
  }

  KvSubsystem a_{SubsystemId(1), "A"};
  KvSubsystem b_{SubsystemId(2), "B"};
  TwoPhaseCommitCoordinator coord_;
};

TEST_F(TwoPhaseCommitTest, CommitAllAppliesAtomically) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.CommitAll(branches).ok());
  EXPECT_EQ(a_.store().Get("x"), 1);
  EXPECT_EQ(b_.store().Get("y"), 2);
  ASSERT_EQ(coord_.log().size(), 1u);
  EXPECT_TRUE(coord_.log()[0].completed);
}

TEST_F(TwoPhaseCommitTest, AbortAllDiscards) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.AbortAll(branches).ok());
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_FALSE(b_.store().Exists("y"));
}

TEST_F(TwoPhaseCommitTest, MissingSubsystemVotesNo) {
  auto branches = PrepareBoth();
  branches.push_back(CommitBranch{nullptr, TxId(9)});
  EXPECT_TRUE(coord_.CommitAll(branches).IsAborted());
  // The healthy branches were rolled back, not committed.
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_FALSE(b_.store().Exists("y"));
}

TEST_F(TwoPhaseCommitTest, CoordinatorCrashLeavesInDoubtThenRecovers) {
  auto branches = PrepareBoth();
  coord_.SimulateCrashBeforePhaseTwo();
  EXPECT_TRUE(coord_.CommitAll(branches).IsUnavailable());
  // In doubt: nothing applied yet, locks still held.
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_TRUE(a_.WouldBlock(ServiceId(1)));
  // Recovery completes the logged decision.
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_EQ(a_.store().Get("x"), 1);
  EXPECT_EQ(b_.store().Get("y"), 2);
  EXPECT_FALSE(a_.WouldBlock(ServiceId(1)));
}

TEST_F(TwoPhaseCommitTest, RecoverIsIdempotent) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.CommitAll(branches).ok());
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_EQ(a_.store().Get("x"), 1);  // not applied twice
}

// ---------------------------------------------------------------------------
// Failure-domain coverage: a participant whose health layer has tripped
// (open breaker, outage, expired budget) is unreachable for new work but
// must still resolve its prepared branches — Lemma 1's deferred commit
// would otherwise wedge on the first sick subsystem.

class SickParticipantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    raw_ = std::make_unique<KvSubsystem>(SubsystemId(1), "sick", 42);
    raw_->SetClock(&clock_);
    ASSERT_TRUE(
        raw_->RegisterService(MakeAddService(ServiceId(1), "add_x", "x"))
            .ok());
    ASSERT_TRUE(
        raw_->RegisterService(MakeAddService(ServiceId(2), "add_y", "y"))
            .ok());
    faulty_ = std::make_unique<testing::FaultySubsystem>(
        raw_.get(), &clock_, testing::FaultProfile{}, 7);
    SubsystemProxyOptions options;
    options.window = 2;
    options.min_samples = 2;
    options.failure_threshold = 0.5;
    options.cooldown_ticks = 1000;
    proxy_ = std::make_unique<SubsystemProxy>(faulty_.get(), &clock_, options);
    ASSERT_TRUE(healthy_
                    .RegisterService(MakeAddService(ServiceId(3), "add_z", "z"))
                    .ok());
  }

  /// Prepares one branch on the sick stack and one on the healthy peer.
  std::vector<CommitBranch> PrepareAcrossBoth() {
    auto ps = proxy_->InvokePrepared(ServiceId(1), Req(1));
    auto ph = healthy_.InvokePrepared(ServiceId(3), Req(2));
    EXPECT_TRUE(ps.ok());
    EXPECT_TRUE(ph.ok());
    return {{proxy_.get(), ps->tx}, {&healthy_, ph->tx}};
  }

  /// Breaker opens and an outage begins *after* the prepare.
  void MakeSick() {
    testing::FaultProfile always;
    always.transient_abort_probability = 1.0;
    faulty_->set_profile(always);
    for (int i = 0;
         i < 16 && proxy_->breaker_state() != BreakerState::kOpen; ++i) {
      EXPECT_FALSE(proxy_->Invoke(ServiceId(2), Req(1)).ok());
    }
    ASSERT_EQ(proxy_->breaker_state(), BreakerState::kOpen);
    faulty_->AddOutage(clock_.now(), clock_.now() + 100000);
  }

  VirtualClock clock_;
  std::unique_ptr<KvSubsystem> raw_;
  std::unique_ptr<testing::FaultySubsystem> faulty_;
  std::unique_ptr<SubsystemProxy> proxy_;
  KvSubsystem healthy_{SubsystemId(2), "healthy"};
  TwoPhaseCommitCoordinator coord_;
};

TEST_F(SickParticipantTest, CommitAllResolvesThroughOpenBreaker) {
  auto branches = PrepareAcrossBoth();
  MakeSick();
  ASSERT_TRUE(coord_.CommitAll(branches).ok());
  EXPECT_EQ(raw_->store().Get("x"), 1);
  EXPECT_EQ(healthy_.store().Get("z"), 2);
  EXPECT_FALSE(coord_.HasInDoubt());
}

TEST_F(SickParticipantTest, AbortAllResolvesThroughOpenBreaker) {
  auto branches = PrepareAcrossBoth();
  MakeSick();
  ASSERT_TRUE(coord_.AbortAll(branches).ok());
  EXPECT_FALSE(raw_->store().Exists("x"));
  EXPECT_FALSE(healthy_.store().Exists("z"));
  // Locks released: the key is writable again (once the fault model
  // would admit a call — check at the raw layer).
  EXPECT_FALSE(raw_->WouldBlock(ServiceId(1)));
}

TEST_F(SickParticipantTest, LostDecisionLeavesBranchInDoubtThenRecovers) {
  testing::FaultInjector injector;
  faulty_->SetCrashPointListener(&injector);
  auto branches = PrepareAcrossBoth();
  // The commit decision to the sick participant is lost exactly once
  // (reset the counts the prepare-site hits already advanced).
  injector.ArmAtSite("subsystem/commit", 1);
  injector.ResetCounts();

  Status commit = coord_.CommitAll(branches);
  EXPECT_TRUE(commit.IsUnavailable()) << commit.ToString();
  EXPECT_TRUE(coord_.HasInDoubt());
  // The decision is logged and the healthy branch already applied; the
  // sick branch stays prepared (locks held), not aborted.
  ASSERT_EQ(coord_.log().size(), 1u);
  EXPECT_FALSE(coord_.log()[0].completed);
  EXPECT_EQ(healthy_.store().Get("z"), 2);
  EXPECT_FALSE(raw_->store().Exists("x"));
  EXPECT_TRUE(raw_->WouldBlock(ServiceId(1)));

  // Still unreachable: recovery reports kUnavailable and stays in doubt
  // rather than wedging or dropping the branch.
  injector.ArmAtSite("subsystem/commit", 1);
  injector.ResetCounts();
  EXPECT_TRUE(coord_.RecoverInDoubt().IsUnavailable());
  EXPECT_TRUE(coord_.HasInDoubt());

  // Participant reachable again: recovery re-drives the logged decision.
  injector.ArmAt(0);
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_FALSE(coord_.HasInDoubt());
  EXPECT_TRUE(coord_.log()[0].completed);
  EXPECT_EQ(raw_->store().Get("x"), 1);
  EXPECT_FALSE(raw_->WouldBlock(ServiceId(1)));
  // Idempotent once resolved.
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_EQ(raw_->store().Get("x"), 1);
}

}  // namespace
}  // namespace tpm
