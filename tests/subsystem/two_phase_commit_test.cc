#include "subsystem/two_phase_commit.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ServiceRequest Req(int64_t param) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class TwoPhaseCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        a_.RegisterService(MakeAddService(ServiceId(1), "add", "x")).ok());
    ASSERT_TRUE(
        b_.RegisterService(MakeAddService(ServiceId(2), "add", "y")).ok());
  }

  std::vector<CommitBranch> PrepareBoth() {
    auto pa = a_.InvokePrepared(ServiceId(1), Req(1));
    auto pb = b_.InvokePrepared(ServiceId(2), Req(2));
    EXPECT_TRUE(pa.ok());
    EXPECT_TRUE(pb.ok());
    return {{&a_, pa->tx}, {&b_, pb->tx}};
  }

  KvSubsystem a_{SubsystemId(1), "A"};
  KvSubsystem b_{SubsystemId(2), "B"};
  TwoPhaseCommitCoordinator coord_;
};

TEST_F(TwoPhaseCommitTest, CommitAllAppliesAtomically) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.CommitAll(branches).ok());
  EXPECT_EQ(a_.store().Get("x"), 1);
  EXPECT_EQ(b_.store().Get("y"), 2);
  ASSERT_EQ(coord_.log().size(), 1u);
  EXPECT_TRUE(coord_.log()[0].completed);
}

TEST_F(TwoPhaseCommitTest, AbortAllDiscards) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.AbortAll(branches).ok());
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_FALSE(b_.store().Exists("y"));
}

TEST_F(TwoPhaseCommitTest, MissingSubsystemVotesNo) {
  auto branches = PrepareBoth();
  branches.push_back(CommitBranch{nullptr, TxId(9)});
  EXPECT_TRUE(coord_.CommitAll(branches).IsAborted());
  // The healthy branches were rolled back, not committed.
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_FALSE(b_.store().Exists("y"));
}

TEST_F(TwoPhaseCommitTest, CoordinatorCrashLeavesInDoubtThenRecovers) {
  auto branches = PrepareBoth();
  coord_.SimulateCrashBeforePhaseTwo();
  EXPECT_TRUE(coord_.CommitAll(branches).IsUnavailable());
  // In doubt: nothing applied yet, locks still held.
  EXPECT_FALSE(a_.store().Exists("x"));
  EXPECT_TRUE(a_.WouldBlock(ServiceId(1)));
  // Recovery completes the logged decision.
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_EQ(a_.store().Get("x"), 1);
  EXPECT_EQ(b_.store().Get("y"), 2);
  EXPECT_FALSE(a_.WouldBlock(ServiceId(1)));
}

TEST_F(TwoPhaseCommitTest, RecoverIsIdempotent) {
  auto branches = PrepareBoth();
  ASSERT_TRUE(coord_.CommitAll(branches).ok());
  ASSERT_TRUE(coord_.RecoverInDoubt().ok());
  EXPECT_EQ(a_.store().Get("x"), 1);  // not applied twice
}

}  // namespace
}  // namespace tpm
