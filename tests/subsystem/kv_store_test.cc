#include "subsystem/kv_store.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(KvStoreTest, AbsentKeyReadsZero) {
  KvStore store;
  EXPECT_EQ(store.Get("missing"), 0);
  EXPECT_FALSE(store.Exists("missing"));
}

TEST(KvStoreTest, PutGet) {
  KvStore store;
  store.Put("a", 5);
  EXPECT_EQ(store.Get("a"), 5);
  EXPECT_TRUE(store.Exists("a"));
}

TEST(KvStoreTest, PutZeroErases) {
  KvStore store;
  store.Put("a", 5);
  store.Put("a", 0);
  EXPECT_FALSE(store.Exists("a"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, AddAccumulates) {
  KvStore store;
  store.Add("a", 3);
  store.Add("a", -1);
  EXPECT_EQ(store.Get("a"), 2);
  store.Add("a", -2);
  EXPECT_FALSE(store.Exists("a"));
}

TEST(KvStoreTest, EraseRemoves) {
  KvStore store;
  store.Put("a", 1);
  store.Erase("a");
  EXPECT_FALSE(store.Exists("a"));
}

TEST(KvStoreTest, VersionBumpsOnMutation) {
  KvStore store;
  uint64_t v0 = store.version();
  store.Put("a", 1);
  EXPECT_GT(store.version(), v0);
  uint64_t v1 = store.version();
  store.Get("a");  // reads do not bump
  EXPECT_EQ(store.version(), v1);
}

TEST(KvStoreTest, SameContentsIgnoresVersion) {
  KvStore a, b;
  a.Put("x", 1);
  a.Put("x", 2);
  b.Put("x", 2);
  EXPECT_TRUE(a.SameContents(b));
  b.Put("y", 1);
  EXPECT_FALSE(a.SameContents(b));
}

TEST(KvStoreTest, SnapshotMatchesState) {
  KvStore store;
  store.Put("a", 1);
  store.Put("b", 2);
  auto snapshot = store.Snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot["a"], 1);
  EXPECT_EQ(snapshot["b"], 2);
}

}  // namespace
}  // namespace tpm
