#include "subsystem/escrow_subsystem.h"

#include <gtest/gtest.h>

#include "core/conflict.h"

namespace tpm {
namespace {

ServiceRequest Req(int64_t process, int64_t param = 0,
                   int64_t activity = 1) {
  return ServiceRequest{ProcessId(process), ActivityId(activity), param};
}

class EscrowSubsystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sub_.CreateCounter("stock", 10).ok());
    ASSERT_TRUE(sub_.RegisterIncService(kInc, "stock").ok());
    ASSERT_TRUE(sub_.RegisterDecService(kDec, "stock").ok());
    ASSERT_TRUE(sub_.RegisterWithdrawService(kWithdraw, "stock").ok());
    ASSERT_TRUE(sub_.RegisterReadService(kRead, "stock").ok());
  }

  static constexpr ServiceId kInc{1}, kDec{2}, kWithdraw{3}, kRead{4};
  EscrowSubsystem sub_{SubsystemId(1), "escrow"};
};

TEST_F(EscrowSubsystemTest, IncReturnsAmountAndRaisesBalance) {
  auto outcome = sub_.Invoke(kInc, Req(1, 5));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->return_value, 5);
  EXPECT_EQ(sub_.BalanceOf("stock"), 15);
  // The deposit is unstable until P1 resolves: nothing withdrawable yet.
  EXPECT_EQ(sub_.AvailableOf("stock"), 10);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, ParamZeroFallsBackToDefaultAmount) {
  ASSERT_TRUE(sub_.Invoke(kInc, Req(1, 0)).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 11);
}

TEST_F(EscrowSubsystemTest, WithdrawEscrowTestsAgainstStableBalance) {
  auto first = sub_.Invoke(kWithdraw, Req(1, 7));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->return_value, 7);
  EXPECT_EQ(sub_.BalanceOf("stock"), 3);
  // 3 left: a withdraw of 4 exhausts the escrow and aborts.
  EXPECT_TRUE(sub_.Invoke(kWithdraw, Req(2, 4)).status().IsAborted());
  EXPECT_EQ(sub_.exhaustion_aborts(), 1);
  EXPECT_EQ(sub_.BalanceOf("stock"), 3);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, UnstableDepositsAreInvisibleToWithdraws) {
  // P1 deposits 5; until P1 resolves, the credit must not fund withdraws
  // (P1 could still abort and take it back).
  ASSERT_TRUE(sub_.Invoke(kInc, Req(1, 5)).ok());
  EXPECT_TRUE(sub_.Invoke(kWithdraw, Req(2, 12)).status().IsAborted());
  sub_.OnProcessResolved(ProcessId(1), /*committed=*/true);
  EXPECT_EQ(sub_.AvailableOf("stock"), 15);
  EXPECT_TRUE(sub_.Invoke(kWithdraw, Req(2, 12)).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 3);
}

TEST_F(EscrowSubsystemTest, CompensatingDecConsumesOwnCreditInfallibly) {
  // Drain the stable balance completely, then deposit-and-compensate:
  // the dec must succeed although stable() is at the low bound (Def. 2
  // demands an infallible compensation).
  ASSERT_TRUE(sub_.Invoke(kWithdraw, Req(9, 10)).ok());
  ASSERT_TRUE(sub_.Invoke(kInc, Req(1, 5)).ok());
  auto dec = sub_.Invoke(kDec, Req(1, 5));
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(sub_.BalanceOf("stock"), 0);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, UnmatchedDecIsEscrowTestedLikeAWithdraw) {
  // P2 never deposited: its dec is a forward decrement and must respect
  // the escrow test.
  ASSERT_TRUE(sub_.Invoke(kDec, Req(2, 8)).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 2);
  EXPECT_TRUE(sub_.Invoke(kDec, Req(2, 3)).status().IsAborted());
  EXPECT_EQ(sub_.exhaustion_aborts(), 1);
}

TEST_F(EscrowSubsystemTest, IncWithdrawReturnValuesAreOrderIndependent) {
  // §3.2 observational commutativity: both orders return the same values
  // and land in the same state.
  EscrowSubsystem other(SubsystemId(2), "escrow2");
  ASSERT_TRUE(other.CreateCounter("stock", 10).ok());
  ASSERT_TRUE(other.RegisterIncService(kInc, "stock").ok());
  ASSERT_TRUE(other.RegisterWithdrawService(kWithdraw, "stock").ok());

  auto inc_first = sub_.Invoke(kInc, Req(1, 5));
  auto wd_second = sub_.Invoke(kWithdraw, Req(2, 4));
  auto wd_first = other.Invoke(kWithdraw, Req(2, 4));
  auto inc_second = other.Invoke(kInc, Req(1, 5));
  ASSERT_TRUE(inc_first.ok() && wd_second.ok() && wd_first.ok() &&
              inc_second.ok());
  EXPECT_EQ(inc_first->return_value, inc_second->return_value);
  EXPECT_EQ(wd_second->return_value, wd_first->return_value);
  EXPECT_EQ(sub_.Snapshot(), other.Snapshot());
}

TEST_F(EscrowSubsystemTest, PreparedCommitKeepsAbortRestores) {
  auto prepared = sub_.InvokePrepared(kInc, Req(1, 5));
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->return_value, 5);
  EXPECT_EQ(sub_.BalanceOf("stock"), 15);  // executed against live state
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 15);

  auto aborted = sub_.InvokePrepared(kWithdraw, Req(2, 3));
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 12);
  ASSERT_TRUE(sub_.AbortPrepared(aborted->tx).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 15);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, PreparedWithdrawBlocksOnlyNonCommutingOps) {
  auto prepared = sub_.InvokePrepared(kWithdraw, Req(1, 2));
  ASSERT_TRUE(prepared.ok());
  // withdraw/withdraw is the one semantic conflict: blocked.
  EXPECT_TRUE(sub_.WouldBlock(kWithdraw));
  EXPECT_TRUE(sub_.Invoke(kWithdraw, Req(2, 1)).status().IsUnavailable());
  // inc and dec commute with the in-doubt withdraw: they proceed.
  EXPECT_FALSE(sub_.WouldBlock(kInc));
  EXPECT_TRUE(sub_.Invoke(kInc, Req(2, 3)).ok());
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  EXPECT_FALSE(sub_.WouldBlock(kWithdraw));
}

TEST_F(EscrowSubsystemTest, ReadsConservativelyBlockOnPreparedUpdates) {
  auto prepared = sub_.InvokePrepared(kInc, Req(1, 5));
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(sub_.WouldBlock(kRead));
  EXPECT_TRUE(sub_.Invoke(kRead, Req(2)).status().IsUnavailable());
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  auto read = sub_.Invoke(kRead, Req(2));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->return_value, 15);
}

TEST_F(EscrowSubsystemTest, AbortAllPreparedRollsBackInReverseOrder) {
  ASSERT_TRUE(sub_.InvokePrepared(kInc, Req(1, 5)).ok());
  ASSERT_TRUE(sub_.InvokePrepared(kWithdraw, Req(2, 3)).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 12);
  ASSERT_TRUE(sub_.AbortAllPrepared().ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 10);
  EXPECT_FALSE(sub_.WouldBlock(kWithdraw));
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, UndoAfterResolutionClampsToRemainingCredit) {
  // Prepared inc, process resolves (credit folded to stable), then the
  // branch aborts: the undo must not drive pending negative.
  auto prepared = sub_.InvokePrepared(kInc, Req(1, 5));
  ASSERT_TRUE(prepared.ok());
  sub_.OnProcessResolved(ProcessId(1), /*committed=*/true);
  ASSERT_TRUE(sub_.AbortPrepared(prepared->tx).ok());
  EXPECT_EQ(sub_.BalanceOf("stock"), 10);
  EXPECT_TRUE(sub_.CheckInvariants().ok());
}

TEST_F(EscrowSubsystemTest, DerivedSpecAdmitsCommutingUpdates) {
  ConflictSpec spec;
  sub_.services().DeriveConflicts(&spec);
  // Shared counter: every pair conflicts at the read/write level, but the
  // op table downgrades everything except withdraw/withdraw (and the
  // unbound read, which stays conservative).
  EXPECT_FALSE(spec.ServicesConflict(kInc, kInc));
  EXPECT_FALSE(spec.ServicesConflict(kInc, kDec));
  EXPECT_FALSE(spec.ServicesConflict(kInc, kWithdraw));
  EXPECT_FALSE(spec.ServicesConflict(kDec, kWithdraw));
  EXPECT_TRUE(spec.ServicesConflict(kWithdraw, kWithdraw));
  EXPECT_TRUE(spec.ServicesConflict(kRead, kInc));
  EXPECT_TRUE(spec.IsEffectFreeService(kRead));
  EXPECT_FALSE(spec.IsEffectFreeService(kInc));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());

  // The ablation knob restores the read/write relation wholesale.
  spec.set_op_commutativity_enabled(false);
  EXPECT_TRUE(spec.ServicesConflict(kInc, kInc));
  EXPECT_TRUE(spec.ServicesConflict(kInc, kWithdraw));
}

TEST_F(EscrowSubsystemTest, RejectsInvalidRegistrationsAndRequests) {
  EXPECT_TRUE(sub_.CreateCounter("bad", 1, 5).IsInvalidArgument());
  EXPECT_TRUE(
      sub_.RegisterIncService(ServiceId(9), "stock", -1).IsInvalidArgument());
  EXPECT_TRUE(sub_.Invoke(ServiceId(99), Req(1)).status().IsNotFound());
  EXPECT_TRUE(sub_.Invoke(kInc, Req(1, -2)).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tpm
