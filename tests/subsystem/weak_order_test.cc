#include "subsystem/weak_order.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(WeakOrderTest, StrongOrderSerializesConstrainedTxs) {
  std::vector<WeakTxSpec> txs = {{10, 0, 0}, {10, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}};
  auto report = SimulateWeakOrder(txs, constraints, OrderMode::kStrong);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->makespan, 20);
  EXPECT_EQ(report->commit_times, (std::vector<int64_t>{10, 20}));
}

TEST(WeakOrderTest, WeakOrderOverlapsExecution) {
  std::vector<WeakTxSpec> txs = {{10, 0, 0}, {10, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}};
  auto report = SimulateWeakOrder(txs, constraints, OrderMode::kWeak);
  ASSERT_TRUE(report.ok());
  // Both run in parallel; commits in order, both at t=10.
  EXPECT_EQ(report->makespan, 10);
  EXPECT_EQ(report->commit_times, (std::vector<int64_t>{10, 10}));
  EXPECT_EQ(report->cascade_restarts, 0);
}

TEST(WeakOrderTest, CommitOrderEnforcedUnderWeakOrder) {
  // The successor is much shorter but must commit after its predecessor.
  std::vector<WeakTxSpec> txs = {{10, 0, 0}, {2, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}};
  auto report = SimulateWeakOrder(txs, constraints, OrderMode::kWeak);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->commit_times[1], 10);  // held back to the commit order
}

TEST(WeakOrderTest, PredecessorAbortCascades) {
  // Predecessor aborts once at t=5, restarts, finishes at 15. The
  // dependent running in parallel must restart with it (§3.6).
  std::vector<WeakTxSpec> txs = {{10, 1, 5}, {10, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}};
  auto report = SimulateWeakOrder(txs, constraints, OrderMode::kWeak);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cascade_restarts, 1);
  EXPECT_EQ(report->commit_times[0], 15);
  EXPECT_EQ(report->commit_times[1], 15);  // restarted at 5, ran 10
}

TEST(WeakOrderTest, StrongOrderHasNoCascades) {
  std::vector<WeakTxSpec> txs = {{10, 1, 5}, {10, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}};
  auto report = SimulateWeakOrder(txs, constraints, OrderMode::kStrong);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cascade_restarts, 0);
  EXPECT_EQ(report->commit_times[0], 15);  // 5 wasted + 10
  EXPECT_EQ(report->commit_times[1], 25);
}

TEST(WeakOrderTest, UnconstrainedTxsAlwaysParallel) {
  std::vector<WeakTxSpec> txs = {{10, 0, 0}, {10, 0, 0}, {10, 0, 0}};
  auto strong = SimulateWeakOrder(txs, {}, OrderMode::kStrong);
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(strong->makespan, 10);
}

TEST(WeakOrderTest, RejectsCyclicConstraints) {
  std::vector<WeakTxSpec> txs = {{1, 0, 0}, {1, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 1}, {1, 0}};
  EXPECT_FALSE(SimulateWeakOrder(txs, constraints, OrderMode::kWeak).ok());
}

TEST(WeakOrderTest, RejectsOutOfRangeConstraint) {
  std::vector<WeakTxSpec> txs = {{1, 0, 0}};
  std::vector<OrderConstraint> constraints = {{0, 5}};
  EXPECT_TRUE(SimulateWeakOrder(txs, constraints, OrderMode::kWeak)
                  .status()
                  .IsInvalidArgument());
}

TEST(WeakOrderTest, ChainGainGrowsWithLength) {
  // Weak order turns a chain's makespan from n*d into ~d.
  for (int n : {2, 4, 8}) {
    std::vector<WeakTxSpec> txs(n, WeakTxSpec{10, 0, 0});
    std::vector<OrderConstraint> constraints;
    for (int i = 0; i + 1 < n; ++i) {
      constraints.push_back({static_cast<size_t>(i),
                             static_cast<size_t>(i + 1)});
    }
    auto strong = SimulateWeakOrder(txs, constraints, OrderMode::kStrong);
    auto weak = SimulateWeakOrder(txs, constraints, OrderMode::kWeak);
    ASSERT_TRUE(strong.ok());
    ASSERT_TRUE(weak.ok());
    EXPECT_EQ(strong->makespan, n * 10);
    EXPECT_EQ(weak->makespan, 10);
  }
}

}  // namespace
}  // namespace tpm
