#include "subsystem/subsystem_proxy.h"

#include <gtest/gtest.h>

#include "common/virtual_clock.h"
#include "testing/fault_injector.h"
#include "testing/faulty_subsystem.h"

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 1) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

/// Three-layer stack under test: proxy -> faulty -> raw KvSubsystem, all
/// on one shared clock (the same shape FaultDomainWorld wires up).
class SubsystemProxyTest : public ::testing::Test {
 protected:
  void Build(SubsystemProxyOptions options,
             testing::FaultProfile profile = {}) {
    raw_ = std::make_unique<KvSubsystem>(SubsystemId(1), "kv", 42);
    raw_->SetClock(&clock_);
    ASSERT_TRUE(
        raw_->RegisterService(MakeAddService(ServiceId(1), "add_x", "x"))
            .ok());
    ASSERT_TRUE(
        raw_->RegisterService(MakeAddService(ServiceId(2), "add_y", "y"))
            .ok());
    faulty_ = std::make_unique<testing::FaultySubsystem>(raw_.get(), &clock_,
                                                         profile, 7);
    proxy_ =
        std::make_unique<SubsystemProxy>(faulty_.get(), &clock_, options);
  }

  /// Breaker tuned to trip after 4 consecutive failures.
  static SubsystemProxyOptions SmallBreaker() {
    SubsystemProxyOptions o;
    o.window = 4;
    o.min_samples = 4;
    o.failure_threshold = 0.5;
    o.cooldown_ticks = 10;
    return o;
  }

  /// Every first-phase invocation aborts transiently.
  static testing::FaultProfile AlwaysAbort() {
    testing::FaultProfile p;
    p.transient_abort_probability = 1.0;
    return p;
  }

  /// Drives failing invocations until the window trips the breaker (how
  /// many are needed depends on success samples already in the window).
  void TripBreaker() {
    for (int i = 0;
         i < 16 && proxy_->breaker_state() != BreakerState::kOpen; ++i) {
      EXPECT_FALSE(proxy_->Invoke(ServiceId(1), Req()).ok());
    }
    ASSERT_EQ(proxy_->breaker_state(), BreakerState::kOpen);
  }

  VirtualClock clock_;
  std::unique_ptr<KvSubsystem> raw_;
  std::unique_ptr<testing::FaultySubsystem> faulty_;
  std::unique_ptr<SubsystemProxy> proxy_;
};

TEST_F(SubsystemProxyTest, HealthyInvocationsPassThrough) {
  Build(SmallBreaker());
  auto outcome = proxy_->Invoke(ServiceId(1), Req());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(raw_->store().Get("x"), 1);
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(proxy_->health_counters().breaker_trips, 0);
}

TEST_F(SubsystemProxyTest, BreakerOpensAtFailureThresholdAndRejects) {
  Build(SmallBreaker(), AlwaysAbort());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
    // Below min_samples the breaker never trips.
    EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed) << i;
  }
  EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(proxy_->health_counters().breaker_trips, 1);

  // While open: rejected with kUnavailable at the proxy, without reaching
  // the subsystem below.
  const int64_t attempts_before = faulty_->attempted_invocations();
  Status rejected = proxy_->Invoke(ServiceId(1), Req()).status();
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.ToString();
  EXPECT_EQ(faulty_->attempted_invocations(), attempts_before);
  EXPECT_EQ(proxy_->health_counters().rejected_while_open, 1);
}

TEST_F(SubsystemProxyTest, CooldownLeadsToHalfOpenProbeThatCloses) {
  Build(SmallBreaker(), AlwaysAbort());
  TripBreaker();
  clock_.Advance(9);
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kOpen);
  clock_.Advance(1);  // cooldown_ticks = 10 elapsed
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kHalfOpen);

  // The subsystem recovered: the single probe succeeds and closes.
  faulty_->set_profile(testing::FaultProfile{});
  ASSERT_TRUE(proxy_->Invoke(ServiceId(1), Req()).ok());
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(proxy_->health_counters().probe_invocations, 1);
  // Closed again for real: further invocations flow.
  ASSERT_TRUE(proxy_->Invoke(ServiceId(1), Req()).ok());
  EXPECT_EQ(raw_->store().Get("x"), 2);
}

TEST_F(SubsystemProxyTest, FailedProbeReopensForAnotherCooldown) {
  Build(SmallBreaker(), AlwaysAbort());
  TripBreaker();
  clock_.Advance(10);
  ASSERT_EQ(proxy_->breaker_state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(proxy_->health_counters().breaker_trips, 2);
  clock_.Advance(10);
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kHalfOpen);
}

TEST_F(SubsystemProxyTest, DeadlineExpiryBecomesRetriableAbort) {
  SubsystemProxyOptions options;
  options.deadline_ticks = 5;
  testing::FaultProfile profile;
  profile.latency_ticks = 50;  // every call is slower than the budget
  Build(options, profile);

  const int64_t before = clock_.now();
  Status status = proxy_->Invoke(ServiceId(1), Req()).status();
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  // The wait was clamped at the budget, not the full injected latency.
  EXPECT_EQ(clock_.now(), before + 5);
  // Aborted before any effect: clean retriable semantics.
  EXPECT_FALSE(raw_->store().Exists("x"));
  EXPECT_EQ(proxy_->health_counters().deadline_failures, 1);
  // The invocation bracket was closed again.
  EXPECT_FALSE(clock_.deadline_active());
}

TEST_F(SubsystemProxyTest, FastInvocationMeetsDeadline) {
  SubsystemProxyOptions options;
  options.deadline_ticks = 5;
  testing::FaultProfile profile;
  profile.latency_ticks = 3;
  Build(options, profile);
  ASSERT_TRUE(proxy_->Invoke(ServiceId(1), Req()).ok());
  EXPECT_EQ(clock_.now(), 3);
  EXPECT_EQ(proxy_->health_counters().deadline_failures, 0);
}

TEST_F(SubsystemProxyTest, OutageStallTimesOutAtDeadline) {
  SubsystemProxyOptions options;
  options.deadline_ticks = 8;
  Build(options);
  faulty_->AddOutage(0, 1000);
  Status status = proxy_->Invoke(ServiceId(1), Req()).status();
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  // The call hung against the unreachable subsystem for its full budget.
  EXPECT_EQ(clock_.now(), 8);
  EXPECT_EQ(faulty_->outage_rejections(), 1);
}

TEST_F(SubsystemProxyTest, DeadlineAlsoBoundsPreparedInvocations) {
  SubsystemProxyOptions options;
  options.deadline_ticks = 5;
  testing::FaultProfile profile;
  profile.latency_ticks = 50;
  Build(options, profile);
  EXPECT_TRUE(proxy_->InvokePrepared(ServiceId(1), Req()).status().IsAborted());
  EXPECT_EQ(proxy_->health_counters().deadline_failures, 1);
}

TEST_F(SubsystemProxyTest, LockCongestionIsNotSampledAsFailure) {
  Build(SmallBreaker());
  // Hold the write lock on "x" with a prepared transaction...
  auto prepared = proxy_->InvokePrepared(ServiceId(1), Req());
  ASSERT_TRUE(prepared.ok());
  // ...then hammer the same key: kUnavailable (benign wait), which must
  // never trip the breaker no matter how often it happens.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsUnavailable());
  }
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(proxy_->health_counters().breaker_trips, 0);
  ASSERT_TRUE(proxy_->CommitPrepared(prepared->tx).ok());
}

// Satellite of the 2PC abort-path coverage: a prepared-but-sick
// participant must still resolve. Phase two is never gated by the health
// layer — the decision is already logged, refusing it would wedge the
// coordinator (Lemma 1's deferred-commit machinery).
TEST_F(SubsystemProxyTest, PhaseTwoPassesThroughOpenBreakerAndOutage) {
  Build(SmallBreaker());
  auto commit_me = proxy_->InvokePrepared(ServiceId(1), Req());
  ASSERT_TRUE(commit_me.ok());
  auto abort_me = proxy_->InvokePrepared(ServiceId(2), Req());
  ASSERT_TRUE(abort_me.ok());

  // Now the subsystem goes dark and the breaker trips on another service.
  faulty_->set_profile(AlwaysAbort());
  TripBreaker();
  faulty_->AddOutage(clock_.now(), clock_.now() + 1000);

  // First-phase work is rejected...
  EXPECT_TRUE(proxy_->Invoke(ServiceId(2), Req()).status().IsUnavailable());
  // ...but both phase-two decisions pass through and resolve.
  EXPECT_TRUE(proxy_->CommitPrepared(commit_me->tx).ok());
  EXPECT_TRUE(proxy_->AbortPrepared(abort_me->tx).ok());
  EXPECT_EQ(raw_->store().Get("x"), 1);
  EXPECT_FALSE(raw_->store().Exists("y"));
  EXPECT_FALSE(raw_->WouldBlock(ServiceId(1)));
  EXPECT_FALSE(raw_->WouldBlock(ServiceId(2)));
}

TEST_F(SubsystemProxyTest, DisabledBreakerNeverTrips) {
  SubsystemProxyOptions options = SmallBreaker();
  options.breaker_enabled = false;
  Build(options, AlwaysAbort());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
  }
  EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(proxy_->health_counters().breaker_trips, 0);
}

TEST_F(SubsystemProxyTest, WindowSlidesOldFailuresOut) {
  Build(SmallBreaker(), AlwaysAbort());
  // One failure, then recovery: successes dilute and eventually push the
  // failure out of the 4-slot window before the threshold is reached.
  EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
  faulty_->set_profile(testing::FaultProfile{});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(proxy_->Invoke(ServiceId(1), Req()).ok());
    EXPECT_EQ(proxy_->breaker_state(), BreakerState::kClosed);
  }
}

TEST_F(SubsystemProxyTest, InjectedSiteFaultCountsTowardBreaker) {
  Build(SmallBreaker());
  testing::FaultInjector injector;
  faulty_->SetCrashPointListener(&injector);
  // Arm far beyond this test so OnCrashPoint never fires, proving the
  // sites are consulted (hit counting) without changing behavior.
  injector.ArmAt(1000);
  ASSERT_TRUE(proxy_->Invoke(ServiceId(1), Req()).ok());
  ASSERT_TRUE(proxy_->InvokePrepared(ServiceId(2), Req()).ok());
  EXPECT_EQ(injector.site_hits().at("subsystem/invoke"), 1);
  EXPECT_EQ(injector.site_hits().at("subsystem/prepare"), 1);
  // Armed at the next invoke hit: the injected fault surfaces as a
  // breaker-visible failure sample.
  injector.ArmAtSite("subsystem/invoke", 1);
  injector.ResetCounts();
  EXPECT_TRUE(proxy_->Invoke(ServiceId(1), Req()).status().IsAborted());
  EXPECT_EQ(faulty_->injected_site_faults(), 1);
}

}  // namespace
}  // namespace tpm
