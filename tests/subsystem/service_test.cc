#include "subsystem/service.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 0) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

TEST(ServiceRegistryTest, RegisterAndLookup) {
  ServiceRegistry registry;
  ASSERT_TRUE(registry.Register(MakePutService(ServiceId(1), "put", "k")).ok());
  EXPECT_TRUE(registry.Has(ServiceId(1)));
  auto def = registry.Lookup(ServiceId(1));
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->name, "put");
  EXPECT_TRUE(registry.Lookup(ServiceId(9)).status().IsNotFound());
}

TEST(ServiceRegistryTest, DuplicateAndInvalidRejected) {
  ServiceRegistry registry;
  ASSERT_TRUE(registry.Register(MakePutService(ServiceId(1), "put", "k")).ok());
  EXPECT_EQ(registry.Register(MakePutService(ServiceId(1), "put2", "k")).code(),
            StatusCode::kAlreadyExists);
  ServiceDef no_body;
  no_body.id = ServiceId(2);
  EXPECT_TRUE(registry.Register(no_body).IsInvalidArgument());
  ServiceDef bad_id = MakePutService(ServiceId(3), "x", "k");
  bad_id.id = ServiceId();
  EXPECT_TRUE(registry.Register(bad_id).IsInvalidArgument());
}

TEST(ServiceRegistryTest, DeriveConflictsFromReadWriteSets) {
  ServiceRegistry registry;
  ASSERT_TRUE(registry.Register(MakePutService(ServiceId(1), "w1", "k")).ok());
  ASSERT_TRUE(registry.Register(MakeReadService(ServiceId(2), "r1", "k")).ok());
  ASSERT_TRUE(
      registry.Register(MakeReadService(ServiceId(3), "r2", "k")).ok());
  ASSERT_TRUE(
      registry.Register(MakePutService(ServiceId(4), "w2", "other")).ok());
  ConflictSpec spec;
  registry.DeriveConflicts(&spec);
  // Writer conflicts with itself, both readers; readers do not conflict
  // with each other; the other-key writer conflicts with nobody else.
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(1)));
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(3)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(2), ServiceId(3)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(4)));
  // Effect-free marking of read services propagates.
  EXPECT_TRUE(spec.IsEffectFreeService(ServiceId(2)));
  EXPECT_FALSE(spec.IsEffectFreeService(ServiceId(1)));
}

TEST(ServiceBodiesTest, PutReturnsPreviousValue) {
  KvStore store;
  store.Put("k", 7);
  auto def = MakePutService(ServiceId(1), "put", "k");
  int64_t ret = 0;
  ASSERT_TRUE(def.body(&store, Req(9), &ret).ok());
  EXPECT_EQ(ret, 7);
  EXPECT_EQ(store.Get("k"), 9);
}

TEST(ServiceBodiesTest, AddAndSubAreInverse) {
  KvStore store;
  auto add = MakeAddService(ServiceId(1), "add", "k");
  auto sub = MakeSubService(ServiceId(2), "sub", "k");
  int64_t ret = 0;
  ASSERT_TRUE(add.body(&store, Req(5), &ret).ok());
  EXPECT_EQ(store.Get("k"), 5);
  ASSERT_TRUE(sub.body(&store, Req(5), &ret).ok());
  EXPECT_EQ(store.Get("k"), 0);
  // Default amount is 1 when param == 0.
  ASSERT_TRUE(add.body(&store, Req(0), &ret).ok());
  EXPECT_EQ(store.Get("k"), 1);
}

TEST(ServiceBodiesTest, ReadIsEffectFree) {
  KvStore store;
  store.Put("k", 3);
  auto read = MakeReadService(ServiceId(1), "read", "k");
  EXPECT_TRUE(read.effect_free);
  uint64_t version = store.version();
  int64_t ret = 0;
  ASSERT_TRUE(read.body(&store, Req(), &ret).ok());
  EXPECT_EQ(ret, 3);
  EXPECT_EQ(store.version(), version);
}

TEST(RetryPolicyTest, DefaultScheduleIsLinear) {
  RetryPolicy policy;
  policy.backoff_base_ticks = 3;
  EXPECT_EQ(policy.BackoffTicks(1), 3);
  EXPECT_EQ(policy.BackoffTicks(2), 6);
  EXPECT_EQ(policy.BackoffTicks(3), 9);
}

TEST(RetryPolicyTest, ZeroBaseOrBadAttemptYieldsNoWait) {
  RetryPolicy policy;
  EXPECT_EQ(policy.BackoffTicks(1), 0);
  policy.backoff_base_ticks = 5;
  EXPECT_EQ(policy.BackoffTicks(0), 0);
  EXPECT_EQ(policy.BackoffTicks(-1), 0);
}

TEST(RetryPolicyTest, ExponentialScheduleDoubles) {
  RetryPolicy policy;
  policy.backoff_base_ticks = 2;
  policy.exponential = true;
  EXPECT_EQ(policy.BackoffTicks(1), 2);
  EXPECT_EQ(policy.BackoffTicks(2), 4);
  EXPECT_EQ(policy.BackoffTicks(3), 8);
  EXPECT_EQ(policy.BackoffTicks(4), 16);
}

TEST(RetryPolicyTest, CapBoundsBothSchedules) {
  RetryPolicy policy;
  policy.backoff_base_ticks = 2;
  policy.exponential = true;
  policy.max_backoff_ticks = 10;
  EXPECT_EQ(policy.BackoffTicks(3), 8);
  EXPECT_EQ(policy.BackoffTicks(4), 10);
  EXPECT_EQ(policy.BackoffTicks(40), 10);
  policy.exponential = false;
  EXPECT_EQ(policy.BackoffTicks(40), 10);
}

TEST(RetryPolicyTest, HugeExponentDoesNotOverflow) {
  RetryPolicy policy;
  policy.backoff_base_ticks = 3;
  policy.exponential = true;
  const int64_t wait = policy.BackoffTicks(500);
  EXPECT_GT(wait, 0);
  EXPECT_LE(wait, std::numeric_limits<int64_t>::max());
}

TEST(RetryPolicyTest, FullJitterDrawsWithinEnvelopeDeterministically) {
  RetryPolicy policy;
  policy.backoff_base_ticks = 4;
  policy.exponential = true;
  policy.full_jitter = true;
  Rng rng_a(123), rng_b(123);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const int64_t envelope = 4 * (int64_t{1} << (attempt - 1));
    const int64_t wait = policy.BackoffTicks(attempt, &rng_a);
    EXPECT_GE(wait, 0);
    EXPECT_LE(wait, envelope);
    // Same seed, same schedule: jitter stays reproducible.
    EXPECT_EQ(policy.BackoffTicks(attempt, &rng_b), wait);
  }
  // Without an RNG the jitter flag is inert.
  EXPECT_EQ(policy.BackoffTicks(2), 8);
}

TEST(ServiceBodiesTest, EraseReturnsPrevious) {
  KvStore store;
  store.Put("k", 4);
  auto erase = MakeEraseService(ServiceId(1), "erase", "k");
  int64_t ret = 0;
  ASSERT_TRUE(erase.body(&store, Req(), &ret).ok());
  EXPECT_EQ(ret, 4);
  EXPECT_FALSE(store.Exists("k"));
}

}  // namespace
}  // namespace tpm
