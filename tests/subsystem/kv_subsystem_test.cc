#include "subsystem/kv_subsystem.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ServiceRequest Req(int64_t param = 0) {
  return ServiceRequest{ProcessId(1), ActivityId(1), param};
}

class KvSubsystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sub_.RegisterService(MakeAddService(ServiceId(1), "add", "k")).ok());
    ASSERT_TRUE(
        sub_.RegisterService(MakeSubService(ServiceId(2), "sub", "k")).ok());
  }
  KvSubsystem sub_{SubsystemId(1), "test", /*seed=*/3};
};

TEST_F(KvSubsystemTest, InvokeAppliesService) {
  auto outcome = sub_.Invoke(ServiceId(1), Req(4));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(sub_.store().Get("k"), 4);
  EXPECT_EQ(sub_.invocations(), 1);
}

TEST_F(KvSubsystemTest, UnknownServiceRejected) {
  EXPECT_TRUE(sub_.Invoke(ServiceId(9), Req()).status().IsNotFound());
}

TEST_F(KvSubsystemTest, ScriptedFailuresAbortThenSucceed) {
  sub_.ScheduleFailures(ServiceId(1), 2);
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).status().IsAborted());
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).status().IsAborted());
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).ok());
  EXPECT_EQ(sub_.injected_aborts(), 2);
  EXPECT_EQ(sub_.store().Get("k"), 1);  // only the successful one applied
}

TEST_F(KvSubsystemTest, ProbabilisticFailures) {
  sub_.SetFailureProbability(ServiceId(1), 1.0);
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).status().IsAborted());
  sub_.SetFailureProbability(ServiceId(1), 0.0);
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).ok());
}

TEST_F(KvSubsystemTest, PreparedFlowAndBlocking) {
  auto prepared = sub_.InvokePrepared(ServiceId(1), Req(2));
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(sub_.store().Exists("k"));
  EXPECT_TRUE(sub_.WouldBlock(ServiceId(2)));  // same key
  EXPECT_TRUE(sub_.Invoke(ServiceId(2), Req(1)).status().IsUnavailable());
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  EXPECT_EQ(sub_.store().Get("k"), 2);
  EXPECT_FALSE(sub_.WouldBlock(ServiceId(2)));
}

TEST_F(KvSubsystemTest, AbortAllPreparedImplementsPresumedAbort) {
  ASSERT_TRUE(sub_.InvokePrepared(ServiceId(1), Req(2)).ok());
  ASSERT_TRUE(sub_.AbortAllPrepared().ok());
  EXPECT_FALSE(sub_.WouldBlock(ServiceId(2)));
  EXPECT_FALSE(sub_.store().Exists("k"));
}

TEST_F(KvSubsystemTest, RetryPolicyMasksTransientFailures) {
  // Three scripted failures, four attempts allowed: the subsystem absorbs
  // the aborts internally and the scheduler-visible invocation commits.
  sub_.ScheduleFailures(ServiceId(1), 3);
  sub_.SetRetryPolicy(RetryPolicy{/*max_attempts=*/4,
                                  /*backoff_base_ticks=*/2});
  ASSERT_TRUE(sub_.Invoke(ServiceId(1), Req(5)).ok());
  EXPECT_EQ(sub_.store().Get("k"), 5);
  EXPECT_EQ(sub_.internal_retries(), 3);
  EXPECT_EQ(sub_.injected_aborts(), 3);
  // Linear backoff: 2*1 + 2*2 + 2*3 virtual ticks charged.
  EXPECT_EQ(sub_.backoff_ticks_waited(), 12);
}

TEST_F(KvSubsystemTest, RetryPolicyExhaustionSurfacesAbort) {
  sub_.ScheduleFailures(ServiceId(1), 7);
  sub_.SetRetryPolicy(RetryPolicy{/*max_attempts=*/3,
                                  /*backoff_base_ticks=*/0});
  // Each scheduler-visible invocation burns up to three scripted failures.
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).status().IsAborted());
  EXPECT_EQ(sub_.internal_retries(), 2);  // attempts 2 and 3 retried
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).status().IsAborted());
  // One scripted failure left; the second attempt commits.
  EXPECT_TRUE(sub_.Invoke(ServiceId(1), Req(1)).ok());
  EXPECT_EQ(sub_.internal_retries(), 5);
  EXPECT_EQ(sub_.injected_aborts(), 7);
}

TEST_F(KvSubsystemTest, RetryPolicyAppliesToPreparedInvocations) {
  sub_.ScheduleFailures(ServiceId(1), 1);
  sub_.SetRetryPolicy(RetryPolicy{/*max_attempts=*/2,
                                  /*backoff_base_ticks=*/1});
  auto prepared = sub_.InvokePrepared(ServiceId(1), Req(2));
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(sub_.CommitPrepared(prepared->tx).ok());
  EXPECT_EQ(sub_.store().Get("k"), 2);
  EXPECT_EQ(sub_.internal_retries(), 1);
  EXPECT_EQ(sub_.backoff_ticks_waited(), 1);
}

TEST_F(KvSubsystemTest, CompensationPairIsEffectFreeOnStore) {
  // <add sub> with the same parameter leaves the store unchanged (Def. 2).
  auto before = sub_.store().Snapshot();
  ASSERT_TRUE(sub_.Invoke(ServiceId(1), Req(7)).ok());
  ASSERT_TRUE(sub_.Invoke(ServiceId(2), Req(7)).ok());
  EXPECT_EQ(sub_.store().Snapshot(), before);
}

}  // namespace
}  // namespace tpm
