#include "common/ids.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(IdsTest, DefaultConstructedIsInvalid) {
  ProcessId pid;
  EXPECT_FALSE(pid.valid());
  EXPECT_EQ(pid.value(), -1);
}

TEST(IdsTest, ExplicitValueIsValid) {
  ProcessId pid(7);
  EXPECT_TRUE(pid.valid());
  EXPECT_EQ(pid.value(), 7);
  EXPECT_TRUE(ProcessId(0).valid());
  EXPECT_FALSE(ProcessId(-3).valid());
}

TEST(IdsTest, Comparisons) {
  ProcessId a(1), b(2), a2(1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a2);
  EXPECT_GE(b, a);
}

TEST(IdsTest, DistinctTagFamiliesAreDistinctTypes) {
  static_assert(!std::is_same_v<ProcessId, ActivityId>);
  static_assert(!std::is_same_v<ServiceId, TxId>);
}

TEST(IdsTest, StreamInsertion) {
  std::ostringstream os;
  os << ProcessId(42);
  EXPECT_EQ(os.str(), "42");
}

TEST(IdsTest, StdHashMatchesEquality) {
  std::hash<ProcessId> h;
  EXPECT_EQ(h(ProcessId(5)), h(ProcessId(5)));
  EXPECT_EQ(h(ProcessId(5)), std::hash<int64_t>()(5));
}

TEST(IdsTest, UsableInUnorderedContainers) {
  std::unordered_set<ServiceId> set;
  for (int i = 0; i < 100; ++i) set.insert(ServiceId(i % 10));
  EXPECT_EQ(set.size(), 10u);
  EXPECT_TRUE(set.count(ServiceId(3)) > 0);
  EXPECT_FALSE(set.count(ServiceId(10)) > 0);

  std::unordered_map<ProcessId, int> map;
  map[ProcessId(1)] = 10;
  map[ProcessId(2)] = 20;
  map[ProcessId(1)] = 11;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map[ProcessId(1)], 11);
}

TEST(IdsTest, OrderedContainersSortByValue) {
  std::set<ActivityId> set{ActivityId(3), ActivityId(1), ActivityId(2)};
  auto it = set.begin();
  EXPECT_EQ(*it++, ActivityId(1));
  EXPECT_EQ(*it++, ActivityId(2));
  EXPECT_EQ(*it++, ActivityId(3));
}

}  // namespace
}  // namespace tpm
