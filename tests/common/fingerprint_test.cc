// common/fingerprint.h: the one FNV-1a everybody shares. The properties
// the determinism suite leans on: fixed reference values (platform and
// run independent), streaming == one-shot (that is what makes the
// incremental history digest equal a from-scratch hash), and the
// little-endian fixed-width integer fold.

#include "common/fingerprint.h"

#include <gtest/gtest.h>

#include <string>

namespace tpm {
namespace {

TEST(FingerprintTest, MatchesKnownFnv1aVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(FingerprintTest, StreamingEqualsOneShot) {
  const std::string text = "P1[a1] P2[a2] C1 A2";
  uint64_t streamed = kFnv1aOffsetBasis;
  for (size_t i = 0; i < text.size(); ++i) {
    streamed = Fnv1a(streamed, text.substr(i, 1));
  }
  EXPECT_EQ(streamed, Fnv1a(text));

  // Arbitrary chunking, same answer.
  uint64_t chunked = Fnv1a(kFnv1aOffsetBasis, text.substr(0, 5));
  chunked = Fnv1a(chunked, text.substr(5));
  EXPECT_EQ(chunked, Fnv1a(text));
}

TEST(FingerprintTest, IntegerFoldIsFixedWidthAndOrderSensitive) {
  // Fnv1aInt folds exactly 8 bytes little-endian — so 1 as an int differs
  // from the one-byte string "\x01" followed by seven NULs only if the
  // widths differed. Pin the equivalence.
  const std::string one_le(
      "\x01\x00\x00\x00\x00\x00\x00\x00", 8);
  EXPECT_EQ(Fnv1aInt(kFnv1aOffsetBasis, 1), Fnv1a(one_le));

  // Order matters: (a, b) != (b, a).
  uint64_t ab = Fnv1aInt(Fnv1aInt(kFnv1aOffsetBasis, 1), 2);
  uint64_t ba = Fnv1aInt(Fnv1aInt(kFnv1aOffsetBasis, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(FingerprintTest, CombineIsOrderSensitiveAndDeterministic) {
  const uint64_t a = Fnv1a("history");
  const uint64_t b = Fnv1a("store");
  EXPECT_EQ(FingerprintCombine(a, b), FingerprintCombine(a, b));
  EXPECT_NE(FingerprintCombine(a, b), FingerprintCombine(b, a));
  EXPECT_NE(FingerprintCombine(a, b), a);
}

}  // namespace
}  // namespace tpm
