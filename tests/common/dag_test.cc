#include "common/dag.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(DagTest, EmptyGraphIsAcyclic) {
  Dag dag(3);
  EXPECT_FALSE(dag.HasCycle());
  EXPECT_TRUE(dag.FindCycle().empty());
  auto topo = dag.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->size(), 3u);
}

TEST(DagTest, DetectsSimpleCycle) {
  Dag dag(2);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 0);
  EXPECT_TRUE(dag.HasCycle());
  std::vector<int> cycle = dag.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(DagTest, DetectsSelfLoop) {
  Dag dag(1);
  dag.AddEdge(0, 0);
  EXPECT_TRUE(dag.HasCycle());
}

TEST(DagTest, DetectsLongerCycle) {
  Dag dag(5);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(2, 3);
  dag.AddEdge(3, 1);  // cycle 1 -> 2 -> 3 -> 1
  EXPECT_TRUE(dag.HasCycle());
  EXPECT_TRUE(dag.TopologicalOrder().status().IsInvalidArgument());
}

TEST(DagTest, DuplicateEdgesIgnored) {
  Dag dag(2);
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 1);
  EXPECT_EQ(dag.num_edges(), 1);
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag(4);
  dag.AddEdge(3, 1);
  dag.AddEdge(1, 0);
  dag.AddEdge(3, 2);
  dag.AddEdge(2, 0);
  auto topo = dag.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  auto pos = [&](int v) {
    return std::find(topo->begin(), topo->end(), v) - topo->begin();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(0));
  EXPECT_LT(pos(3), pos(2));
  EXPECT_LT(pos(2), pos(0));
}

TEST(DagTest, Reachability) {
  Dag dag(4);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  EXPECT_TRUE(dag.Reachable(0, 2));
  EXPECT_TRUE(dag.Reachable(0, 0));
  EXPECT_FALSE(dag.Reachable(2, 0));
  EXPECT_FALSE(dag.Reachable(0, 3));
}

TEST(DagTest, TransitiveClosure) {
  Dag dag(3);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  auto closure = dag.TransitiveClosure();
  EXPECT_TRUE(closure[0][1]);
  EXPECT_TRUE(closure[0][2]);
  EXPECT_TRUE(closure[1][2]);
  EXPECT_FALSE(closure[2][0]);
  EXPECT_FALSE(closure[0][0]);  // no self loop
}

TEST(DagTest, TransitiveReductionDropsImpliedEdge) {
  Dag dag(3);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(0, 2);  // implied by 0->1->2
  auto reduced = dag.TransitiveReduction();
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), 2u);
  for (const auto& [from, to] : *reduced) {
    EXPECT_FALSE(from == 0 && to == 2);
  }
}

TEST(DagTest, TransitiveReductionRejectsCycle) {
  Dag dag(2);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 0);
  EXPECT_FALSE(dag.TransitiveReduction().ok());
}

TEST(DagTest, CountLinearExtensions) {
  // Two independent chains of length 2: C(4,2) = 6 interleavings.
  Dag dag(4);
  dag.AddEdge(0, 1);
  dag.AddEdge(2, 3);
  EXPECT_EQ(dag.CountLinearExtensions(), 6u);
  // A total order has exactly one.
  Dag chain(3);
  chain.AddEdge(0, 1);
  chain.AddEdge(1, 2);
  EXPECT_EQ(chain.CountLinearExtensions(), 1u);
  // No edges: n!.
  Dag free3(3);
  EXPECT_EQ(free3.CountLinearExtensions(), 6u);
}

TEST(DagTest, CountLinearExtensionsHonorsCap) {
  Dag free6(6);  // 720 extensions
  EXPECT_EQ(free6.CountLinearExtensions(100), 100u);
}

}  // namespace
}  // namespace tpm
