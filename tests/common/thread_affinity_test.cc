#include "common/thread_affinity.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/scheduler.h"

namespace tpm {
namespace {

TEST(ThreadAffinityGuardTest, BindsToFirstCheckingThread) {
  ThreadAffinityGuard guard;
  EXPECT_FALSE(guard.bound());
  EXPECT_TRUE(guard.CheckCurrentThread());  // first check binds
  EXPECT_TRUE(guard.bound());
  EXPECT_TRUE(guard.CheckCurrentThread());  // same thread keeps passing
}

TEST(ThreadAffinityGuardTest, DetectsForeignThread) {
  ThreadAffinityGuard guard;
  ASSERT_TRUE(guard.CheckCurrentThread());
  bool foreign_ok = true;
  std::thread other([&] { foreign_ok = guard.CheckCurrentThread(); });
  other.join();
  EXPECT_FALSE(foreign_ok);
  // The owner is unchanged by the failed check.
  EXPECT_TRUE(guard.CheckCurrentThread());
}

TEST(ThreadAffinityGuardTest, ReleaseAllowsHandoffToAnotherThread) {
  ThreadAffinityGuard guard;
  ASSERT_TRUE(guard.CheckCurrentThread());
  guard.Release();
  EXPECT_FALSE(guard.bound());
  bool rebound = false;
  bool rebound_again = false;
  std::thread other([&] {
    rebound = guard.CheckCurrentThread();  // new first-user binds
    rebound_again = guard.CheckCurrentThread();
  });
  other.join();
  EXPECT_TRUE(rebound);
  EXPECT_TRUE(rebound_again);
  // Now this thread is the foreigner.
  EXPECT_FALSE(guard.CheckCurrentThread());
}

TEST(ThreadAffinityGuardTest, ConcurrentFirstUseBindsExactlyOneWinner) {
  // Two threads race the initial bind; exactly one may win, and the winner
  // keeps passing while the loser fails.
  for (int round = 0; round < 64; ++round) {
    ThreadAffinityGuard guard;
    int passes = 0;
    std::mutex mu;
    auto contender = [&] {
      bool ok = guard.CheckCurrentThread();
      std::lock_guard<std::mutex> lock(mu);
      if (ok) ++passes;
    };
    std::thread a(contender);
    std::thread b(contender);
    a.join();
    b.join();
    EXPECT_EQ(passes, 1) << "round " << round;
  }
}

TEST(ThreadAffinityGuardTest, SchedulerBindsOnFirstUseAndReleases) {
  // The scheduler's guard follows the same protocol the sharded runtime
  // relies on: bind on first public call, Release for a quiesced handoff.
  TransactionalProcessScheduler scheduler;
  (void)scheduler.stats();  // first use binds to this thread
  scheduler.ReleaseThreadAffinity();
  bool other_thread_ok = false;
  std::thread other([&] {
    (void)scheduler.stats();  // rebind on the worker
    other_thread_ok = true;
    scheduler.ReleaseThreadAffinity();
  });
  other.join();
  EXPECT_TRUE(other_thread_ok);
  (void)scheduler.stats();  // handed back
}

#if defined(GTEST_HAS_DEATH_TEST)
TEST(ThreadAffinityGuardDeathTest, SchedulerAbortsOnCrossThreadUse) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TransactionalProcessScheduler scheduler;
  (void)scheduler.stats();  // bind here
  EXPECT_DEATH(
      {
        std::thread other([&] { (void)scheduler.stats(); });
        other.join();
      },
      "single-threaded");
}
#endif

}  // namespace
}  // namespace tpm
