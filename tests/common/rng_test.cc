#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace tpm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::set<int> contents(v.begin(), v.end());
  EXPECT_EQ(contents, (std::set<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace tpm
