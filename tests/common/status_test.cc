#include "common/status.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Rejected("x").IsRejected());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("a"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kRejected), "Rejected");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Aborted("inner"); }
Status Propagates() {
  TPM_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

Result<int> FailsResult() { return Status::Aborted("inner"); }
Status PropagatesResult(int* out) {
  TPM_ASSIGN_OR_RETURN(*out, FailsResult());
  return Status::OK();
}
Result<int> Gives5() { return 5; }
Status AssignsResult(int* out) {
  TPM_ASSIGN_OR_RETURN(*out, Gives5());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates().IsAborted());
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  int out = 0;
  EXPECT_TRUE(PropagatesResult(&out).IsAborted());
  EXPECT_TRUE(AssignsResult(&out).ok());
  EXPECT_EQ(out, 5);
}

}  // namespace
}  // namespace tpm
