#include "common/str_util.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(v, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("|x|", '|'), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(StrSplit("", '|'), (std::vector<std::string>{""}));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  auto check = [](const std::string& s, int64_t expected) {
    auto parsed = ParseInt64(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, expected) << s;
  };
  check("0", 0);
  check("42", 42);
  check("-7", -7);
  check("007", 7);
  check("9223372036854775807", INT64_MAX);
  check("-9223372036854775808", INT64_MIN);
}

TEST(ParseInt64Test, RejectsCorruptInputWithStatus) {
  const std::string bad[] = {
      "", " ", "x", "1x", "x1", "1 ", " 1", "+1", "--1", "-", "1.5",
      "0x10", "1e3", "9223372036854775808", "-9223372036854775809",
      "99999999999999999999999999",
  };
  for (const std::string& s : bad) {
    auto parsed = ParseInt64(s);
    EXPECT_FALSE(parsed.ok()) << "accepted: \"" << s << "\"";
    EXPECT_TRUE(parsed.status().IsInvalidArgument());
  }
}

}  // namespace
}  // namespace tpm
