#include "common/str_util.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(v, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("|x|", '|'), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(StrSplit("", '|'), (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace tpm
