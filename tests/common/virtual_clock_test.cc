#include "common/virtual_clock.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(VirtualClockTest, AdvanceAccumulatesAndIgnoresNonPositive) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(3);
  clock.Advance(2);
  EXPECT_EQ(clock.now(), 5);
  clock.Advance(0);
  clock.Advance(-7);
  EXPECT_EQ(clock.now(), 5);
}

TEST(VirtualClockTest, AdvanceToIsMonotone) {
  VirtualClock clock;
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.now(), 10);
  clock.AdvanceTo(4);  // the past: no-op
  EXPECT_EQ(clock.now(), 10);
}

TEST(VirtualClockTest, DeadlineClampsAdvanceAndRaisesExpired) {
  VirtualClock clock;
  clock.BeginDeadline(10);
  EXPECT_TRUE(clock.deadline_active());
  EXPECT_FALSE(clock.deadline_expired());
  clock.Advance(4);
  EXPECT_EQ(clock.now(), 4);
  EXPECT_FALSE(clock.deadline_expired());
  // A wait that would overshoot the budget stops at the deadline.
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 10);
  EXPECT_TRUE(clock.deadline_expired());
  // Further waiting inside the bracket does not pass the deadline either.
  clock.Advance(5);
  EXPECT_EQ(clock.now(), 10);
}

TEST(VirtualClockTest, DeadlineAlreadyInThePastExpiresImmediately) {
  VirtualClock clock;
  clock.Advance(20);
  clock.BeginDeadline(10);
  EXPECT_TRUE(clock.deadline_expired());
  EXPECT_EQ(clock.now(), 20);
}

TEST(VirtualClockTest, AdvanceToDeadlineJumpsToBudget) {
  VirtualClock clock;
  clock.AdvanceToDeadline();  // no active deadline: no-op
  EXPECT_EQ(clock.now(), 0);
  clock.BeginDeadline(7);
  clock.AdvanceToDeadline();
  EXPECT_EQ(clock.now(), 7);
  EXPECT_TRUE(clock.deadline_expired());
}

TEST(VirtualClockTest, EndDeadlineRestoresUnboundedAdvance) {
  VirtualClock clock;
  clock.BeginDeadline(5);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 5);
  clock.EndDeadline();
  EXPECT_FALSE(clock.deadline_active());
  EXPECT_FALSE(clock.deadline_expired());
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 105);
}

TEST(VirtualClockTest, SequentialInvocationBracketsAreIndependent) {
  VirtualClock clock;
  clock.BeginDeadline(5);
  clock.Advance(100);
  clock.EndDeadline();
  // Second bracket: a fresh budget relative to the new now.
  clock.BeginDeadline(clock.now() + 3);
  clock.Advance(2);
  EXPECT_FALSE(clock.deadline_expired());
  clock.Advance(2);
  EXPECT_TRUE(clock.deadline_expired());
  EXPECT_EQ(clock.now(), 8);
  clock.EndDeadline();
}

TEST(VirtualClockTest, ResetRewindsAndClearsDeadline) {
  VirtualClock clock;
  clock.Advance(9);
  clock.BeginDeadline(100);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
  EXPECT_FALSE(clock.deadline_active());
  EXPECT_FALSE(clock.deadline_expired());
}

}  // namespace
}  // namespace tpm
