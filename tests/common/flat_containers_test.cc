// FlatSet / FlatMap: the sorted-vector containers on the scheduler hot
// path. The contracts that matter there: std::set/std::map-compatible
// semantics (sorted iteration, idempotent insert, exact erase) and the
// pooling property — clear() keeps the capacity so steady-state reuse
// performs no allocations.

#include "common/flat_containers.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tpm {
namespace {

TEST(FlatSetTest, InsertKeepsAscendingOrderAndDeduplicates) {
  FlatSet<int> set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(5).second);
  EXPECT_TRUE(set.insert(1).second);
  EXPECT_TRUE(set.insert(9).second);
  EXPECT_TRUE(set.insert(3).second);
  auto dup = set.insert(5);
  EXPECT_FALSE(dup.second);
  EXPECT_EQ(*dup.first, 5);
  EXPECT_EQ(set.size(), 4u);
  std::vector<int> seen(set.begin(), set.end());
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 9}));
}

TEST(FlatSetTest, CountFindAndEraseMatchStdSetSemantics) {
  FlatSet<int> set;
  for (int k : {4, 2, 8}) set.insert(k);
  EXPECT_EQ(set.count(2), 1u);
  EXPECT_EQ(set.count(3), 0u);
  EXPECT_NE(set.find(8), set.end());
  EXPECT_EQ(set.find(5), set.end());
  EXPECT_EQ(set.erase(2), 1u);
  EXPECT_EQ(set.erase(2), 0u);  // already gone
  EXPECT_EQ(set.count(2), 0u);
  EXPECT_EQ(set.size(), 2u);
  std::vector<int> seen(set.begin(), set.end());
  EXPECT_EQ(seen, (std::vector<int>{4, 8}));
}

TEST(FlatSetTest, ClearKeepsNoElementsButStaysReusable) {
  FlatSet<int> set;
  for (int k = 0; k < 64; ++k) set.insert(k);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  // The pooling property in action: refilling after clear works and keeps
  // the same semantics (capacity retention itself is not observable
  // through the API, but reuse must be).
  for (int k = 63; k >= 0; --k) set.insert(k);
  EXPECT_EQ(set.size(), 64u);
  int expected = 0;
  for (int k : set) EXPECT_EQ(k, expected++);
}

TEST(FlatMapTest, BracketInsertsDefaultAndFindsExisting) {
  FlatMap<int, std::string> map;
  map[3] = "three";
  map[1] = "one";
  map[2] = "two";
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map[1], "one");  // no duplicate insert
  EXPECT_EQ(map.size(), 3u);
  // Sorted iteration, mutable through the iterator.
  std::vector<int> keys;
  for (auto& [k, v] : map) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
  map.find(2)->second = "TWO";
  EXPECT_EQ(map[2], "TWO");
}

TEST(FlatMapTest, EmplaceIsIdempotentAndEraseIsExact) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.emplace(7, 70).second);
  auto dup = map.emplace(7, 71);
  EXPECT_FALSE(dup.second);
  EXPECT_EQ(dup.first->second, 70);  // first value wins
  EXPECT_EQ(map.count(7), 1u);
  EXPECT_EQ(map.erase(8), 0u);
  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), map.end());
}

TEST(FlatMapTest, IteratorEraseReturnsTheSuccessor) {
  FlatMap<int, int> map;
  for (int k : {1, 2, 3, 4}) map.emplace(k, k * 10);
  auto it = map.find(2);
  ASSERT_NE(it, map.end());
  it = map.erase(it);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 3);
  EXPECT_EQ(map.size(), 3u);
  // Erase-while-iterating drains cleanly.
  for (auto i = map.begin(); i != map.end();) i = map.erase(i);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, ClearThenRefillStaysSorted) {
  FlatMap<int, int> map;
  for (int k = 0; k < 32; ++k) map[k] = k;
  map.clear();
  EXPECT_TRUE(map.empty());
  for (int k = 31; k >= 0; --k) map[k] = k * 2;
  int expected = 0;
  for (const auto& [k, v] : map) {
    EXPECT_EQ(k, expected);
    EXPECT_EQ(v, expected * 2);
    ++expected;
  }
  EXPECT_EQ(expected, 32);
}

}  // namespace
}  // namespace tpm
