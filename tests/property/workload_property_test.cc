// Properties of the workload generators themselves.

#include <gtest/gtest.h>

#include <set>

#include "core/flex_structure.h"
#include "common/str_util.h"
#include "workload/process_generator.h"
#include "workload/schedule_generator.h"

namespace tpm {
namespace {

TEST(ProcessGeneratorTest, AlwaysProducesWellFormedFlexProcesses) {
  SyntheticUniverse universe(3, 5);
  ProcessShape shape;
  shape.nested_probability = 0.6;
  shape.max_nesting_depth = 3;
  ProcessGenerator generator(&universe, shape, 7);
  for (int i = 0; i < 100; ++i) {
    auto def = generator.Generate(StrCat("g", i));
    ASSERT_TRUE(def.ok()) << def.status();
    EXPECT_TRUE((*def)->validated());
    EXPECT_TRUE(ValidateWellFormedFlex(**def).ok());
    // Every generated process has at least one pivot and enumerable
    // executions.
    auto executions = EnumerateValidExecutions(**def);
    ASSERT_TRUE(executions.ok());
    EXPECT_GE(executions->size(), 1u);
  }
}

TEST(ProcessGeneratorTest, NestedProcessesHaveAlternatives) {
  SyntheticUniverse universe(2, 4);
  ProcessShape shape;
  shape.nested_probability = 1.0;  // force nesting
  shape.max_nesting_depth = 2;
  ProcessGenerator generator(&universe, shape, 11);
  auto def = generator.Generate("nested");
  ASSERT_TRUE(def.ok());
  bool has_alternative = false;
  for (const PrecedenceEdge& e : (*def)->edges()) {
    if (e.preference > 0) has_alternative = true;
  }
  EXPECT_TRUE(has_alternative);
  // More than one valid execution: alternatives create extra outcomes.
  auto executions = EnumerateValidExecutions(**def);
  ASSERT_TRUE(executions.ok());
  EXPECT_GT(executions->size(), 1u);
}

TEST(ProcessGeneratorTest, RestrictItemsLimitsFootprint) {
  SyntheticUniverse universe(1, 10);
  ProcessShape shape;
  ProcessGenerator generator(&universe, shape, 13);
  generator.RestrictItems(0, 2);
  auto def = generator.Generate("restricted");
  ASSERT_TRUE(def.ok());
  std::set<ServiceId> allowed;
  for (size_t i = 0; i < 2; ++i) {
    allowed.insert(universe.items()[i].add);
    allowed.insert(universe.items()[i].sub);
  }
  for (const ActivityDecl& decl : (*def)->activities()) {
    EXPECT_TRUE(allowed.count(decl.service) > 0);
  }
  generator.RestrictItems(5, 100);
  EXPECT_FALSE(generator.Generate("bad").ok());
}

TEST(ProcessGeneratorTest, DeterministicForSeed) {
  SyntheticUniverse universe(2, 4);
  ProcessShape shape;
  ProcessGenerator g1(&universe, shape, 99);
  ProcessGenerator g2(&universe, shape, 99);
  for (int i = 0; i < 10; ++i) {
    auto d1 = g1.Generate("a");
    auto d2 = g2.Generate("a");
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok());
    EXPECT_EQ((*d1)->ToString(), (*d2)->ToString());
  }
}

TEST(SyntheticUniverseTest, ItemsAndServicesWellFormed) {
  SyntheticUniverse universe(3, 4);
  EXPECT_EQ(universe.num_items(), 12u);
  EXPECT_EQ(universe.subsystems().size(), 3u);
  EXPECT_EQ(universe.TotalValue(), 0);
  std::set<ServiceId> all_services;
  for (const auto& item : universe.items()) {
    all_services.insert(item.add);
    all_services.insert(item.sub);
    all_services.insert(item.check);
  }
  EXPECT_EQ(all_services.size(), 36u);  // globally unique ids
}

TEST(ScheduleGeneratorTest, SchedulesAreLegalAndWellFormed) {
  Rng rng(17);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.conflict_density = 0.4;
  for (int i = 0; i < 100; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    EXPECT_EQ(generated->defs.size(), 3u);
    for (const auto& def : generated->defs) {
      EXPECT_TRUE(ValidateWellFormedFlex(*def).ok());
    }
    // The schedule replays legally (it was built with legality checks on).
    for (const auto& e : generated->schedule.events()) {
      EXPECT_TRUE(e.type == EventType::kActivity ||
                  e.type == EventType::kCommit);
    }
  }
}

TEST(ScheduleGeneratorTest, StopProbabilityLeavesProcessesActive) {
  Rng rng(19);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.stop_probability = 0.5;
  int saw_active = 0;
  for (int i = 0; i < 50; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    if (!generated->schedule.ActiveProcesses().empty()) ++saw_active;
  }
  EXPECT_GT(saw_active, 0);
}

TEST(ScheduleGeneratorTest, ZeroConflictDensityYieldsNoConflicts) {
  Rng rng(23);
  RandomScheduleConfig config;
  config.conflict_density = 0.0;
  auto generated = GenerateRandomSchedule(config, &rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->spec.num_conflict_pairs(), 0u);
}

}  // namespace
}  // namespace tpm
