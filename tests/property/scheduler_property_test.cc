// Property tests of the online scheduler: whatever the workload and
// failure pattern, the emitted history must be PRED (for safe protocols),
// all processes must terminate, and the subsystem state must balance.

#include <gtest/gtest.h>

#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "common/str_util.h"
#include "workload/process_generator.h"

namespace tpm {
namespace {

struct WorkloadParams {
  int num_processes;
  int items;           // item pool size: smaller = more conflicts
  double failure_rate; // per-invocation abort probability
  uint64_t seed;
};

class SchedulerSweep : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(SchedulerSweep, PredSchedulerEmitsPredHistories) {
  const WorkloadParams params = GetParam();
  SyntheticUniverse universe(2, params.items);
  if (params.failure_rate > 0) {
    for (const auto& item : universe.items()) {
      for (KvSubsystem* subsystem : universe.subsystems()) {
        if (subsystem->id() == item.subsystem) {
          subsystem->SetFailureProbability(item.add, params.failure_rate);
        }
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 2;
  shape.nested_probability = 0.4;
  ProcessGenerator generator(&universe, shape, params.seed);

  auto scheduler = MakePredScheduler();
  ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
  for (int i = 0; i < params.num_processes; ++i) {
    auto def = generator.Generate(StrCat("s", i));
    ASSERT_TRUE(def.ok());
    ASSERT_TRUE(scheduler->Submit(*def).ok());
  }
  ASSERT_TRUE(scheduler->Run().ok());

  // 1. Everything terminated.
  EXPECT_EQ(scheduler->stats().processes_committed +
                scheduler->stats().processes_aborted,
            params.num_processes);
  // 2. The history is PRED.
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred) << scheduler->history().ToString();
  // 3. Effects balance: every add of an aborted path was compensated.
  EXPECT_EQ(universe.TotalValue(),
            scheduler->stats().activities_committed -
                scheduler->stats().compensations);
  // 4. A safe protocol never certifies a violation.
  EXPECT_EQ(scheduler->stats().irrecoverable_cascades, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SchedulerSweep,
    ::testing::Values(WorkloadParams{4, 8, 0.0, 1},
                      WorkloadParams{6, 3, 0.0, 2},
                      WorkloadParams{6, 2, 0.0, 3},
                      WorkloadParams{5, 6, 0.3, 4},
                      WorkloadParams{6, 3, 0.2, 5},
                      WorkloadParams{8, 2, 0.15, 6},
                      WorkloadParams{10, 4, 0.1, 7}));

TEST(SchedulerPropertyTest, SerialAndLockingAlsoEmitPredHistories) {
  for (int variant = 0; variant < 2; ++variant) {
    SyntheticUniverse universe(2, 3);
    ProcessShape shape;
    shape.items_per_process = 2;
    ProcessGenerator generator(&universe, shape, 1234);
    auto scheduler =
        variant == 0 ? MakeSerialScheduler() : MakeLockingScheduler();
    ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
    for (int i = 0; i < 6; ++i) {
      auto def = generator.Generate(StrCat("x", i));
      ASSERT_TRUE(def.ok());
      ASSERT_TRUE(scheduler->Submit(*def).ok());
    }
    ASSERT_TRUE(scheduler->Run().ok());
    auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(*pred) << "variant " << variant;
  }
}

TEST(SchedulerPropertyTest, DeterministicGivenSeed) {
  auto run = []() {
    SyntheticUniverse universe(2, 4);
    ProcessShape shape;
    shape.items_per_process = 2;
    ProcessGenerator generator(&universe, shape, 42);
    auto scheduler = MakePredScheduler();
    EXPECT_TRUE(universe.RegisterAll(scheduler.get()).ok());
    for (int i = 0; i < 6; ++i) {
      auto def = generator.Generate(StrCat("d", i));
      EXPECT_TRUE(def.ok());
      EXPECT_TRUE(scheduler->Submit(*def).ok());
    }
    EXPECT_TRUE(scheduler->Run().ok());
    return scheduler->history().ToString();
  };
  EXPECT_EQ(run(), run());
}

TEST(SchedulerPropertyTest, CrashAtRandomPointsAlwaysRecovers) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticUniverse universe(2, 4);
    ProcessShape shape;
    shape.items_per_process = 2;
    ProcessGenerator generator(&universe, shape, 9000 + trial);
    RecoveryLog log;
    TransactionalProcessScheduler scheduler({}, &log);
    ASSERT_TRUE(universe.RegisterAll(&scheduler).ok());
    std::map<std::string, const ProcessDef*> defs;
    for (int i = 0; i < 5; ++i) {
      auto def = generator.Generate(StrCat("t", trial, "_", i));
      ASSERT_TRUE(def.ok());
      defs[(*def)->name()] = *def;
      ASSERT_TRUE(scheduler.Submit(*def).ok());
    }
    int64_t crash_after = static_cast<int64_t>(rng.NextInRange(1, 12));
    bool more = true;
    for (int64_t i = 0; i < crash_after && more; ++i) {
      auto result = scheduler.Step();
      ASSERT_TRUE(result.ok());
      more = *result;
    }
    scheduler.Crash();
    ASSERT_TRUE(scheduler.Recover(defs).ok()) << "trial " << trial;
    // After recovery nothing is active and the store balances against the
    // post-recovery history.
    int64_t committed_minus_compensated = 0;
    for (const auto& e : scheduler.history().events()) {
      if (e.type != EventType::kActivity || e.aborted_invocation) continue;
      committed_minus_compensated += e.act.inverse ? -1 : 1;
    }
    // Recovery's history only shows recovery actions; the durable store
    // also contains pre-crash effects. The balance invariant: total value
    // == (pre-crash commits) - (pre-crash + recovery compensations) +
    // (recovery forward commits). Equivalent check: every key >= 0 and
    // every aborted process contributes nothing — approximated by
    // verifying no key is negative.
    for (KvSubsystem* subsystem : universe.subsystems()) {
      for (const auto& [key, value] : subsystem->store().Snapshot()) {
        EXPECT_GE(value, 0) << "trial " << trial << " key " << key;
      }
    }
    (void)committed_minus_compensated;
  }
}

// Strong per-key differential invariant: after any run, the store equals
// the replay of exactly the effective committed activities (committed and
// not compensated) of every process — committed processes contribute their
// executed path, aborted ones only their quasi-committed / forward
// recovered effects.
TEST(SchedulerPropertyTest, StoreEqualsEffectiveCommittedReplay) {
  for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    SyntheticUniverse universe(2, 4);
    for (const auto& item : universe.items()) {
      for (KvSubsystem* subsystem : universe.subsystems()) {
        if (subsystem->id() == item.subsystem) {
          subsystem->SetFailureProbability(item.add, 0.15);
        }
      }
    }
    ProcessShape shape;
    shape.items_per_process = 2;
    shape.nested_probability = 0.5;
    ProcessGenerator generator(&universe, shape, seed);
    auto scheduler = MakePredScheduler();
    ASSERT_TRUE(universe.RegisterAll(scheduler.get()).ok());
    std::vector<ProcessId> pids;
    for (int i = 0; i < 8; ++i) {
      auto def = generator.Generate(StrCat("q", i));
      ASSERT_TRUE(def.ok());
      auto pid = scheduler->Submit(*def);
      ASSERT_TRUE(pid.ok());
      pids.push_back(*pid);
    }
    ASSERT_TRUE(scheduler->Run().ok());

    // Service -> key map of the universe's add services.
    std::map<ServiceId, std::string> key_of;
    std::map<ServiceId, SubsystemId> subsystem_of;
    for (const auto& item : universe.items()) {
      key_of[item.add] = item.key;
      subsystem_of[item.add] = item.subsystem;
    }
    // Expected per-(subsystem,key) value: +1 per effective committed add.
    std::map<std::pair<int64_t, std::string>, int64_t> expected;
    for (ProcessId pid : pids) {
      const ProcessExecutionState* state =
          scheduler->history().StateOf(pid);
      ASSERT_NE(state, nullptr);
      const ProcessDef& def = state->def();
      for (ActivityId act : state->EffectiveCommitted()) {
        ServiceId service = def.activity(act).service;
        ASSERT_TRUE(key_of.count(service) > 0);
        expected[{subsystem_of[service].value(), key_of[service]}] += 1;
      }
    }
    for (KvSubsystem* subsystem : universe.subsystems()) {
      for (const auto& item : universe.items()) {
        if (item.subsystem != subsystem->id()) continue;
        const int64_t want =
            expected.count({subsystem->id().value(), item.key}) > 0
                ? expected[{subsystem->id().value(), item.key}]
                : 0;
        EXPECT_EQ(subsystem->store().Get(item.key), want)
            << "seed " << seed << " subsystem " << subsystem->name()
            << " key " << item.key;
      }
    }
  }
}

}  // namespace
}  // namespace tpm
