// Cross-cutting structural invariants over random inputs.

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/completed_schedule.h"
#include "core/dot_export.h"
#include "core/pred.h"
#include "workload/process_generator.h"
#include "workload/schedule_generator.h"

namespace tpm {
namespace {

// PRED is prefix closed by definition; the checker must agree on every
// prefix of every PRED schedule.
TEST(InvariantsPropertyTest, PredIsPrefixClosed) {
  Rng rng(808);
  RandomScheduleConfig config;
  config.num_processes = 2;
  config.conflict_density = 0.25;
  int checked = 0;
  for (int i = 0; i < 150 && checked < 30; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (!*pred) continue;
    ++checked;
    for (size_t n = 0; n < generated->schedule.size(); ++n) {
      auto prefix_pred = IsPRED(generated->schedule.Prefix(n),
                                generated->spec);
      ASSERT_TRUE(prefix_pred.ok());
      EXPECT_TRUE(*prefix_pred)
          << "prefix " << n << " of " << generated->schedule.ToString();
    }
  }
  EXPECT_GT(checked, 0);
}

// Completing a completed schedule is a fixpoint (all processes already
// committed, nothing to expand).
TEST(InvariantsPropertyTest, CompletionIsIdempotent) {
  Rng rng(909);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.conflict_density = 0.2;
  for (int i = 0; i < 100; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto once = CompleteSchedule(generated->schedule);
    ASSERT_TRUE(once.ok());
    auto twice = CompleteSchedule(*once);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(once->ToString(), twice->ToString());
  }
}

// DOT exports mention every activity / process of the input.
TEST(InvariantsPropertyTest, DotExportsAreComplete) {
  SyntheticUniverse universe(2, 5);
  ProcessShape shape;
  shape.nested_probability = 0.5;
  ProcessGenerator generator(&universe, shape, 1010);
  for (int i = 0; i < 25; ++i) {
    auto def = generator.Generate(StrCat("d", i));
    ASSERT_TRUE(def.ok());
    std::string dot = ProcessToDot(**def);
    for (const ActivityDecl& decl : (*def)->activities()) {
      EXPECT_NE(dot.find(StrCat("a", decl.id, " [label=")),
                std::string::npos);
    }
    for (const PrecedenceEdge& e : (*def)->edges()) {
      EXPECT_NE(dot.find(StrCat("a", e.from, " -> a", e.to)),
                std::string::npos);
    }
  }
}

// The reduction verdict is stable across repeated analysis (purity).
TEST(InvariantsPropertyTest, AnalysisIsDeterministic) {
  Rng rng(111);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.conflict_density = 0.3;
  for (int i = 0; i < 50; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto first = AnalyzeRED(generated->schedule, generated->spec);
    auto second = AnalyzeRED(generated->schedule, generated->spec);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->reducible, second->reducible);
    EXPECT_EQ(first->residual.size(), second->residual.size());
  }
}

}  // namespace
}  // namespace tpm
