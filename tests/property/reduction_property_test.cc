// Cross-validation of the polynomial reduction decision procedure against
// the exhaustive rewrite-system oracle on random schedules, plus reduction
// invariants.

#include <gtest/gtest.h>

#include "core/reduction.h"
#include "workload/schedule_generator.h"

namespace tpm {
namespace {

struct OracleParams {
  int num_processes;
  double conflict_density;
  int iterations;
};

class ReductionOracleSweep : public ::testing::TestWithParam<OracleParams> {};

TEST_P(ReductionOracleSweep, PolynomialCheckerMatchesExhaustiveOracle) {
  const OracleParams params = GetParam();
  Rng rng(500 + params.num_processes * 10 +
          static_cast<uint64_t>(params.conflict_density * 100));
  RandomScheduleConfig config;
  config.num_processes = params.num_processes;
  config.conflict_density = params.conflict_density;
  // Keep processes small so completed schedules stay within oracle reach.
  config.max_compensatable = 2;
  config.max_retriable = 1;

  int compared = 0;
  for (int i = 0; i < params.iterations; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto completed = CompleteSchedule(generated->schedule);
    ASSERT_TRUE(completed.ok());
    std::set<ProcessId> committed;
    for (const auto& [pid, def] : generated->schedule.processes()) {
      if (generated->schedule.IsProcessCommitted(pid)) committed.insert(pid);
    }
    auto oracle = IsReducibleExhaustive(*completed, generated->spec,
                                        committed, /*max_tokens=*/11,
                                        /*max_states=*/500'000);
    if (!oracle.ok()) continue;  // too large for the oracle; skip
    ++compared;
    ReductionOutcome poly =
        ReduceCompletedSchedule(*completed, generated->spec, committed);
    EXPECT_EQ(poly.reducible, *oracle)
        << "disagreement on completed schedule: " << completed->ToString();
  }
  EXPECT_GT(compared, params.iterations / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, ReductionOracleSweep,
    ::testing::Values(OracleParams{2, 0.1, 150}, OracleParams{2, 0.3, 150},
                      OracleParams{2, 0.6, 150}, OracleParams{2, 0.9, 100},
                      OracleParams{3, 0.2, 100}, OracleParams{3, 0.5, 100}));

TEST(ReductionInvariants, ResidualContainsNoCancellablePairs) {
  Rng rng(321);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.conflict_density = 0.3;
  for (int i = 0; i < 200; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto outcome = AnalyzeRED(generated->schedule, generated->spec);
    ASSERT_TRUE(outcome.ok());
    // Maximal pruning: no original/inverse pair without a conflicting
    // activity between them may survive.
    const auto& residual = outcome->residual;
    for (size_t a = 0; a < residual.size(); ++a) {
      if (residual[a].inverse) continue;
      for (size_t b = a + 1; b < residual.size(); ++b) {
        if (residual[b].process != residual[a].process ||
            residual[b].activity != residual[a].activity ||
            !residual[b].inverse) {
          continue;
        }
        bool blocked = false;
        ServiceId service_a =
            generated->schedule.ServiceOf(residual[a]);
        for (size_t k = a + 1; k < b; ++k) {
          if (residual[k].process == residual[a].process) continue;
          if (generated->spec.ServicesConflict(
                  service_a, generated->schedule.ServiceOf(residual[k]))) {
            blocked = true;
            break;
          }
        }
        EXPECT_TRUE(blocked)
            << "cancellable pair survived reduction in "
            << generated->schedule.ToString();
      }
    }
  }
}

TEST(ReductionInvariants, ReducibleYieldsSerializationOrder) {
  Rng rng(654);
  RandomScheduleConfig config;
  config.num_processes = 3;
  config.conflict_density = 0.2;
  for (int i = 0; i < 200; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto outcome = AnalyzeRED(generated->schedule, generated->spec);
    ASSERT_TRUE(outcome.ok());
    if (outcome->reducible) {
      EXPECT_EQ(outcome->serialization_order.size(),
                generated->schedule.processes().size());
      EXPECT_TRUE(outcome->cycle.empty());
    } else {
      EXPECT_GE(outcome->cycle.size(), 3u);
      EXPECT_EQ(outcome->cycle.front(), outcome->cycle.back());
    }
  }
}

TEST(ReductionInvariants, ConflictFreeSchedulesAlwaysReduce) {
  Rng rng(987);
  RandomScheduleConfig config;
  config.num_processes = 4;
  config.conflict_density = 0.0;
  for (int i = 0; i < 100; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto red = IsRED(generated->schedule, generated->spec);
    ASSERT_TRUE(red.ok());
    EXPECT_TRUE(*red);
  }
}

}  // namespace
}  // namespace tpm
