// Differential property: executing a random batch of conflicting service
// invocations under the commit-ordered (weak-order) transaction manager —
// with arbitrary interleavings and §3.6 restarts — always produces exactly
// the store state of the strong-order (serial) execution.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "subsystem/commit_order.h"

namespace tpm {
namespace {

struct Op {
  ServiceDef service;
  int64_t param;
};

TEST(CommitOrderPropertyTest, WeakOrderAlwaysEqualsStrongOrder) {
  Rng rng(20260706);
  for (int trial = 0; trial < 200; ++trial) {
    const int num_txs = static_cast<int>(rng.NextInRange(2, 6));
    const int num_keys = static_cast<int>(rng.NextInRange(1, 3));

    // One add-service per key.
    std::vector<ServiceDef> services;
    for (int k = 0; k < num_keys; ++k) {
      services.push_back(
          MakeAddService(ServiceId(k + 1), StrCat("add", k), StrCat("k", k)));
    }
    // Each transaction = 1..3 operations on random keys.
    std::vector<std::vector<Op>> txs(num_txs);
    for (auto& ops : txs) {
      const int n = static_cast<int>(rng.NextInRange(1, 3));
      for (int i = 0; i < n; ++i) {
        ops.push_back(Op{services[rng.NextIndex(services.size())],
                         rng.NextInRange(1, 9)});
      }
    }

    // Strong order: serial execution in index order.
    KvStore strong;
    for (const auto& ops : txs) {
      for (const Op& op : ops) {
        int64_t ret = 0;
        KvStore sandbox;
        for (const auto& key : op.service.read_set) {
          sandbox.Put(key, strong.Get(key));
        }
        ASSERT_TRUE(op.service
                        .body(&sandbox,
                              ServiceRequest{ProcessId(1), ActivityId(1),
                                             op.param},
                              &ret)
                        .ok());
        for (const auto& key : op.service.write_set) {
          strong.Put(key, sandbox.Get(key));
        }
      }
    }

    // Weak order: all transactions begin concurrently, operations execute
    // in a random interleaving, commits in order with restart-on-stale.
    KvStore weak;
    CommitOrderedTxManager mgr(&weak);
    std::vector<TxId> ids(num_txs);
    auto start_tx = [&](int index) {
      // A restart re-enters at the transaction's own weak-order position
      // (§3.6: the restarted transaction keeps its place in the order).
      auto tx = mgr.Begin(index);
      ASSERT_TRUE(tx.ok());
      ids[index] = *tx;
      for (const Op& op : txs[index]) {
        ASSERT_TRUE(mgr.Execute(*tx, op.service,
                                ServiceRequest{ProcessId(index + 1),
                                               ActivityId(1), op.param},
                                nullptr)
                        .ok());
      }
    };
    // Interleave the initial attempts (execution order is irrelevant since
    // operations buffer; the randomness is in the restart pattern below).
    for (int i = 0; i < num_txs; ++i) start_tx(i);
    // Commit in order, restarting on stale reads (possibly repeatedly).
    for (int i = 0; i < num_txs; ++i) {
      for (int attempt = 0; attempt < num_txs + 2; ++attempt) {
        Status s = mgr.Commit(ids[i]);
        if (s.ok()) break;
        ASSERT_TRUE(s.IsAborted()) << s;
        start_tx(i);
      }
    }
    ASSERT_EQ(mgr.live(), 0u);
    EXPECT_TRUE(weak.SameContents(strong))
        << "trial " << trial << " diverged";
  }
}

}  // namespace
}  // namespace tpm
