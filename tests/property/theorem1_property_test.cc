// Property sweep for Theorem 1 over thousands of random schedules at
// varying conflict densities.
//
// What is asserted (see EXPERIMENTS.md E9 for discussion):
//  * PRED => serializable (committed projection) — strict, part 1 of the
//    theorem.
//  * PRED => the *enforceable core* of process-recoverability: no
//    conflicting pair a_ik <<_S a_jl where P_j commits while a_ik is
//    compensatable and P_i does not commit (the compensation a_ik^-1 then
//    appears in every completion and is permanently blocked by P_j's
//    frozen conflicting activity — the cycle of Example 8).
//  * Full syntactic Def. 11 is *stricter* than PRED: the sweep must find
//    PRED schedules violating it (the paper's proof of Theorem 1 argues
//    modally — completions "may" conflict; when they happen not to, PRED
//    holds although Def. 11's clause ordering is violated).
//  * Serializable does not imply PRED, and RED is not prefix closed
//    (§3.4) — both witnessed by found schedules.

#include <gtest/gtest.h>

#include "core/pred.h"
#include "core/recoverability.h"
#include "core/serializability.h"
#include "workload/schedule_generator.h"

namespace tpm {
namespace {

struct SweepParams {
  int num_processes;
  double conflict_density;
  int iterations;
};

// The enforceable core of Def. 11: a clause-1 violation whose earlier
// activity *will actually be compensated* by the completion of its
// (non-committing) process contradicts PRED — the compensation appears in
// every completed prefix and is permanently blocked by the committed
// dependent's frozen conflicting activity. Quasi-committed activities
// (before the last state-determining element of an F-REC process, Example
// 10) are never compensated and are excluded.
bool ViolatesEnforceableProcRec(const ProcessSchedule& s,
                                const ConflictSpec& spec) {
  const auto& events = s.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity ||
        events[i].aborted_invocation || events[i].act.inverse) {
      continue;
    }
    const ProcessId pi = events[i].act.process;
    const ProcessDef* def_i = s.DefOf(pi);
    const ActivityId act = events[i].act.activity;
    if (def_i->KindOf(act) != ActivityKind::kCompensatable) continue;
    if (s.IsProcessCommitted(pi)) continue;  // compensation never runs

    // Will the completion of P_i compensate this activity? Only if it is
    // still effective and not quasi-committed.
    const ProcessExecutionState* state = s.StateOf(pi);
    if (!state->IsCommitted(act) || state->IsCompensated(act)) continue;
    const std::vector<ActivityId> effective = state->EffectiveCommitted();
    size_t last_noncomp = SIZE_MAX;
    size_t act_pos = SIZE_MAX;
    for (size_t k = 0; k < effective.size(); ++k) {
      if (IsNonCompensatable(def_i->KindOf(effective[k]))) last_noncomp = k;
      if (effective[k] == act) act_pos = k;
    }
    const bool will_be_compensated =
        last_noncomp == SIZE_MAX ||
        (act_pos != SIZE_MAX && act_pos > last_noncomp);
    if (!will_be_compensated) continue;

    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity ||
          events[j].aborted_invocation) {
        continue;
      }
      if (!s.InstancesConflict(events[i].act, events[j].act, spec)) continue;
      if (s.IsProcessCommitted(events[j].act.process)) return true;
    }
  }
  return false;
}

class Theorem1Sweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(Theorem1Sweep, PredImpliesSerializabilityAndEnforceableProcRec) {
  const SweepParams params = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(params.conflict_density * 100) +
          params.num_processes);
  RandomScheduleConfig config;
  config.num_processes = params.num_processes;
  config.conflict_density = params.conflict_density;

  int pred_count = 0;
  for (int i = 0; i < params.iterations; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok()) << generated.status();
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (!*pred) continue;
    ++pred_count;
    ConflictGraphOptions committed_only;
    committed_only.committed_projection = true;
    EXPECT_TRUE(
        IsSerializable(generated->schedule, generated->spec, committed_only))
        << generated->schedule.ToString();
    EXPECT_FALSE(
        ViolatesEnforceableProcRec(generated->schedule, generated->spec))
        << generated->schedule.ToString();
  }
  if (params.conflict_density < 0.5) {
    EXPECT_GT(pred_count, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, Theorem1Sweep,
    ::testing::Values(SweepParams{2, 0.0, 200}, SweepParams{2, 0.1, 400},
                      SweepParams{2, 0.3, 400}, SweepParams{2, 0.6, 300},
                      SweepParams{3, 0.1, 300}, SweepParams{3, 0.3, 300},
                      SweepParams{4, 0.2, 200}));

TEST(Theorem1Converse, SerializableDoesNotImplyPred) {
  Rng rng(77);
  RandomScheduleConfig config;
  config.num_processes = 2;
  config.conflict_density = 0.3;
  int serializable_not_pred = 0;
  for (int i = 0; i < 500; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    if (!IsSerializable(generated->schedule, generated->spec)) continue;
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (!*pred) ++serializable_not_pred;
  }
  EXPECT_GT(serializable_not_pred, 0);
}

TEST(Theorem1Converse, RedIsNotPrefixClosed) {
  Rng rng(99);
  RandomScheduleConfig config;
  config.num_processes = 2;
  config.conflict_density = 0.3;
  int red_not_pred = 0;
  for (int i = 0; i < 600; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto red = IsRED(generated->schedule, generated->spec);
    ASSERT_TRUE(red.ok());
    if (!*red) continue;
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (!*pred) ++red_not_pred;
  }
  EXPECT_GT(red_not_pred, 0);
}

// Def. 11 is strictly stronger than PRED on fixed schedules: the sweep
// finds PRED schedules whose completions happen not to conflict although
// the syntactic clause ordering is violated.
TEST(Theorem1Converse, SyntacticProcRecIsStricterThanPred) {
  Rng rng(111);
  RandomScheduleConfig config;
  config.num_processes = 2;
  config.conflict_density = 0.25;
  int pred_but_not_syntactic = 0;
  for (int i = 0; i < 800; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (!*pred) continue;
    if (!IsProcessRecoverable(generated->schedule, generated->spec)) {
      ++pred_but_not_syntactic;
    }
  }
  EXPECT_GT(pred_but_not_syntactic, 0);
}

}  // namespace
}  // namespace tpm
