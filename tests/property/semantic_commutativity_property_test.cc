// Property tests for the operation-level commutativity layer (§3.2) and
// the semantic ADT subsystems built on it:
//
//   1. Randomly constructed op tables are symmetric and closed under
//      compensation pairing (a, b commute => a^-1, b commute), and
//      VerifyOpTableClosure agrees.
//   2. Pairs the escrow/queue tables declare commuting really commute
//      observationally (§3.2): running a;b and b;a from the same state
//      yields identical return values and identical final states.
//   3. <a, a^-1> compensation pairs are effect-free on the ADT state
//      (Def. 2), and services the derived spec marks effect-free leave
//      the state untouched on generated sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/conflict.h"
#include "subsystem/escrow_subsystem.h"
#include "subsystem/queue_subsystem.h"

namespace tpm {
namespace {

// ---------------------------------------------------------------------------
// 1. Random op tables: symmetry + closure by construction.

TEST(SemanticCommutativityProperty, RandomTablesAreSymmetricAndClosed) {
  Rng rng(4242);
  for (int round = 0; round < 60; ++round) {
    ConflictSpec spec;
    const int n = static_cast<int>(rng.NextInRange(2, 10));
    std::vector<int> ops;
    for (int i = 0; i < n; ++i) {
      ops.push_back(spec.RegisterOpKind(StrCat("op", i)));
    }
    // Random inverse matching: pair up a shuffled prefix of the ops.
    std::vector<int> shuffled = ops;
    rng.Shuffle(&shuffled);
    const int pairs = static_cast<int>(rng.NextInRange(0, n / 2));
    for (int i = 0; i < pairs; ++i) {
      spec.SetInverseOp(shuffled[2 * i], shuffled[2 * i + 1]);
    }
    // Random commuting declarations, interleaved with more pairings so the
    // fixpoint runs in both orders (declare-then-pair and pair-then-declare).
    const int declarations = static_cast<int>(rng.NextInRange(1, 3 * n));
    for (int i = 0; i < declarations; ++i) {
      spec.AddCommutingOps(ops[rng.NextBounded(n)], ops[rng.NextBounded(n)]);
    }

    ASSERT_TRUE(spec.VerifyOpTableClosure().ok()) << "round " << round;
    for (int a : ops) {
      for (int b : ops) {
        // Symmetry.
        EXPECT_EQ(spec.OpsCommute(a, b), spec.OpsCommute(b, a))
            << "round " << round << " ops " << a << "," << b;
        // Closure under the inverse pairing, both sides.
        if (!spec.OpsCommute(a, b)) continue;
        const int ia = spec.InverseOf(a);
        const int ib = spec.InverseOf(b);
        if (ia >= 0) {
          EXPECT_TRUE(spec.OpsCommute(ia, b)) << "round " << round;
        }
        if (ib >= 0) {
          EXPECT_TRUE(spec.OpsCommute(a, ib)) << "round " << round;
        }
        if (ia >= 0 && ib >= 0) {
          EXPECT_TRUE(spec.OpsCommute(ia, ib)) << "round " << round;
        }
      }
    }
  }
}

// The effective service relation never grows when the op layer turns on:
// the table only downgrades conflicts (the read/write relation stays the
// conservative upper bound).
TEST(SemanticCommutativityProperty, OpLayerOnlyRemovesConflicts) {
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    ConflictSpec spec;
    const int num_services = static_cast<int>(rng.NextInRange(2, 8));
    const int num_ops = static_cast<int>(rng.NextInRange(1, 4));
    std::vector<int> ops;
    for (int i = 0; i < num_ops; ++i) {
      ops.push_back(spec.RegisterOpKind(StrCat("op", i)));
    }
    for (int i = 1; i <= num_services; ++i) {
      for (int j = i; j <= num_services; ++j) {
        if (rng.NextBool(0.4)) spec.AddConflict(ServiceId(i), ServiceId(j));
      }
      if (rng.NextBool(0.7)) {
        spec.BindOp(ServiceId(i), ops[rng.NextBounded(num_ops)]);
      }
    }
    for (int i = 0; i < 2 * num_ops; ++i) {
      spec.AddCommutingOps(ops[rng.NextBounded(num_ops)],
                           ops[rng.NextBounded(num_ops)]);
    }
    for (int i = 1; i <= num_services; ++i) {
      for (int j = 1; j <= num_services; ++j) {
        spec.set_op_commutativity_enabled(true);
        const bool effective = spec.ServicesConflict(ServiceId(i), ServiceId(j));
        spec.set_op_commutativity_enabled(false);
        const bool raw = spec.ServicesConflict(ServiceId(i), ServiceId(j));
        EXPECT_TRUE(!effective || raw)
            << "op layer added a conflict " << i << "," << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Observational commutativity of the real ADTs.

/// One escrow/queue "operation instance" that can run against a fresh
/// replica of the ADT state.
struct AdtOp {
  ServiceId service;
  ServiceRequest request;
};

/// Runs ops in the given order against a freshly built escrow subsystem;
/// returns (statuses, return values, final snapshot as string).
struct RunResult {
  std::vector<std::string> statuses;
  std::vector<int64_t> returns;
  std::string state;
};

RunResult RunEscrow(const std::vector<AdtOp>& ops, int64_t initial) {
  EscrowSubsystem sub(SubsystemId(1), "escrow");
  EXPECT_TRUE(sub.CreateCounter("c", initial).ok());
  EXPECT_TRUE(sub.RegisterIncService(ServiceId(1), "c").ok());
  EXPECT_TRUE(sub.RegisterDecService(ServiceId(2), "c").ok());
  EXPECT_TRUE(sub.RegisterWithdrawService(ServiceId(3), "c").ok());
  RunResult r;
  for (const AdtOp& op : ops) {
    auto outcome = sub.Invoke(op.service, op.request);
    r.statuses.push_back(outcome.status().ToString());
    r.returns.push_back(outcome.ok() ? outcome->return_value : -1);
  }
  r.state = StrCat(sub.BalanceOf("c"), "/", sub.AvailableOf("c"));
  EXPECT_TRUE(sub.CheckInvariants().ok());
  return r;
}

// Sequences of random commuting-table pairs, adjacent-swapped: identical
// returns and identical final state (the §3.2 definition, on the ADT
// itself rather than the declared table). The generator respects the
// discipline the table's soundness rests on: decs are compensations, so
// each follows an inc of its own process with enough credit left, and we
// only swap ops of *different* processes (the scheduler never reorders a
// single process's invocations).
TEST(SemanticCommutativityProperty, EscrowTablePairsCommuteObservationally) {
  Rng rng(1311);
  ConflictSpec spec;
  {
    EscrowSubsystem sub(SubsystemId(1), "escrow");
    ASSERT_TRUE(sub.CreateCounter("c", 1).ok());
    ASSERT_TRUE(sub.RegisterIncService(ServiceId(1), "c").ok());
    ASSERT_TRUE(sub.RegisterDecService(ServiceId(2), "c").ok());
    ASSERT_TRUE(sub.RegisterWithdrawService(ServiceId(3), "c").ok());
    sub.services().DeriveConflicts(&spec);
  }
  int swaps_tested = 0;
  for (int round = 0; round < 150; ++round) {
    const int64_t initial = rng.NextInRange(0, 10);
    const int len = static_cast<int>(rng.NextInRange(3, 7));
    // P1 deposits first; its later decs compensate against that credit.
    int64_t credit_left = rng.NextInRange(5, 15);
    std::vector<AdtOp> ops;
    ops.push_back(AdtOp{ServiceId(1), ServiceRequest{ProcessId(1),
                                                     ActivityId(1),
                                                     credit_left}});
    for (int i = 1; i < len; ++i) {
      if (credit_left > 0 && rng.NextBool(0.35)) {
        const int64_t amount = rng.NextInRange(1, credit_left);
        credit_left -= amount;
        ops.push_back(AdtOp{ServiceId(2), ServiceRequest{ProcessId(1),
                                                         ActivityId(i + 1),
                                                         amount}});
      } else {
        ops.push_back(AdtOp{ServiceId(rng.NextBool(0.5) ? 1 : 3),
                            ServiceRequest{ProcessId(i + 1), ActivityId(1),
                                           rng.NextInRange(1, 9)}});
      }
    }
    const int at = static_cast<int>(rng.NextBounded(len - 1));
    // Only swap cross-process pairs the derived spec declares
    // non-conflicting.
    if (ops[at].request.process == ops[at + 1].request.process) continue;
    if (spec.ServicesConflict(ops[at].service, ops[at + 1].service)) continue;
    std::vector<AdtOp> swapped = ops;
    std::swap(swapped[at], swapped[at + 1]);

    RunResult base = RunEscrow(ops, initial);
    RunResult other = RunEscrow(swapped, initial);
    EXPECT_EQ(base.state, other.state) << "round " << round;
    // Return values follow the op, not the position.
    std::swap(other.statuses[at], other.statuses[at + 1]);
    std::swap(other.returns[at], other.returns[at + 1]);
    EXPECT_EQ(base.statuses, other.statuses) << "round " << round;
    EXPECT_EQ(base.returns, other.returns) << "round " << round;
    ++swaps_tested;
  }
  EXPECT_GT(swaps_tested, 30);
}

RunResult RunQueue(const std::vector<AdtOp>& ops, int initial_tokens) {
  QueueSubsystem sub(SubsystemId(1), "queue");
  EXPECT_TRUE(sub.CreateQueue("q", initial_tokens).ok());
  EXPECT_TRUE(sub.RegisterEnqueueService(ServiceId(1), "q").ok());
  EXPECT_TRUE(sub.RegisterDequeueService(ServiceId(2), "q").ok());
  EXPECT_TRUE(sub.RegisterRemoveService(ServiceId(3), "q").ok());
  EXPECT_TRUE(sub.RegisterRequeueService(ServiceId(4), "q").ok());
  RunResult r;
  for (const AdtOp& op : ops) {
    auto outcome = sub.Invoke(op.service, op.request);
    r.statuses.push_back(outcome.status().ToString());
    r.returns.push_back(outcome.ok() ? outcome->return_value : -1);
  }
  // Queue commutativity is about the token *multiset*, not issue order:
  // concurrent enqueues may interleave their freshly issued ids. Compare
  // lengths plus the sorted token set.
  auto snapshot = sub.Snapshot();
  std::vector<int64_t> tokens;
  for (const auto& [name, q] : snapshot) {
    tokens.insert(tokens.end(), q.begin(), q.end());
  }
  std::sort(tokens.begin(), tokens.end());
  r.state = StrCat(sub.LengthOf("q"), ":");
  for (int64_t t : tokens) r.state += StrCat(t, ",");
  EXPECT_TRUE(sub.CheckInvariants().ok());
  return r;
}

TEST(SemanticCommutativityProperty, QueueEnqueuesCommuteOnTokenSets) {
  Rng rng(2711);
  for (int round = 0; round < 60; ++round) {
    const int initial = static_cast<int>(rng.NextInRange(0, 4));
    const int len = static_cast<int>(rng.NextInRange(2, 5));
    std::vector<AdtOp> ops;
    for (int i = 0; i < len; ++i) {
      ops.push_back(AdtOp{ServiceId(1),  // enq only: the commuting kind
                          ServiceRequest{ProcessId(i + 1), ActivityId(1), 0}});
    }
    const int at = static_cast<int>(rng.NextBounded(len - 1));
    std::vector<AdtOp> swapped = ops;
    std::swap(swapped[at], swapped[at + 1]);
    RunResult base = RunQueue(ops, initial);
    RunResult other = RunQueue(swapped, initial);
    EXPECT_EQ(base.state, other.state) << "round " << round;
    for (const std::string& status : base.statuses) {
      EXPECT_NE(status.find("OK"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Def. 2: compensation pairs are effect-free; effect-free services
// leave the state untouched.

TEST(SemanticCommutativityProperty, EscrowCompensationPairsAreEffectFree) {
  Rng rng(999);
  for (int round = 0; round < 80; ++round) {
    EscrowSubsystem sub(SubsystemId(1), "escrow");
    ASSERT_TRUE(sub.CreateCounter("c", rng.NextInRange(0, 20)).ok());
    ASSERT_TRUE(sub.RegisterIncService(ServiceId(1), "c").ok());
    ASSERT_TRUE(sub.RegisterDecService(ServiceId(2), "c").ok());
    // A little unrelated history first.
    for (int i = 0; i < 3; ++i) {
      (void)sub.Invoke(ServiceId(1),
                       ServiceRequest{ProcessId(50 + i), ActivityId(1),
                                      rng.NextInRange(1, 5)});
    }
    auto before = sub.Snapshot();
    const int64_t available_before = sub.AvailableOf("c");
    const int64_t amount = rng.NextInRange(1, 9);
    ServiceRequest req{ProcessId(1), ActivityId(1), amount};
    ASSERT_TRUE(sub.Invoke(ServiceId(1), req).ok());
    ASSERT_TRUE(sub.Invoke(ServiceId(2), req).ok());  // <inc dec>
    EXPECT_EQ(sub.Snapshot(), before) << "round " << round;
    EXPECT_EQ(sub.AvailableOf("c"), available_before);
    EXPECT_TRUE(sub.CheckInvariants().ok());
  }
}

TEST(SemanticCommutativityProperty, QueueCompensationPairsAreEffectFree) {
  Rng rng(31337);
  for (int round = 0; round < 60; ++round) {
    QueueSubsystem sub(SubsystemId(1), "queue");
    const int initial = static_cast<int>(rng.NextInRange(1, 5));
    ASSERT_TRUE(sub.CreateQueue("q", initial).ok());
    ASSERT_TRUE(sub.RegisterEnqueueService(ServiceId(1), "q").ok());
    ASSERT_TRUE(sub.RegisterDequeueService(ServiceId(2), "q").ok());
    ASSERT_TRUE(sub.RegisterRemoveService(ServiceId(3), "q").ok());
    ASSERT_TRUE(sub.RegisterRequeueService(ServiceId(4), "q").ok());

    auto before = sub.Snapshot();
    if (rng.NextBool(0.5)) {
      // <enq rm>: the fresh token is withdrawn again — queue contents
      // exactly restored.
      ServiceRequest req{ProcessId(1), ActivityId(7), 0};
      ASSERT_TRUE(sub.Invoke(ServiceId(1), req).ok());
      ASSERT_TRUE(sub.Invoke(ServiceId(3), req).ok());
    } else {
      // <deq req>: the head token goes back to the head.
      ServiceRequest req{ProcessId(1), ActivityId(7), 0};
      ASSERT_TRUE(sub.Invoke(ServiceId(2), req).ok());
      ASSERT_TRUE(sub.Invoke(ServiceId(4), req).ok());
    }
    EXPECT_EQ(sub.Snapshot(), before) << "round " << round;
    EXPECT_TRUE(sub.CheckInvariants().ok());
  }
}

TEST(SemanticCommutativityProperty, EffectFreeServicesNeverChangeState) {
  // The services the derived spec marks effect-free (escrow read, queue
  // len) must not change ADT state on generated sequences — consistency
  // between the IsEffectFree declaration and the implementation.
  Rng rng(555);
  EscrowSubsystem escrow(SubsystemId(1), "escrow");
  ASSERT_TRUE(escrow.CreateCounter("c", 10).ok());
  ASSERT_TRUE(escrow.RegisterIncService(ServiceId(1), "c").ok());
  ASSERT_TRUE(escrow.RegisterReadService(ServiceId(2), "c").ok());
  QueueSubsystem queue(SubsystemId(2), "queue");
  ASSERT_TRUE(queue.CreateQueue("q", 3).ok());
  ASSERT_TRUE(queue.RegisterEnqueueService(ServiceId(1), "q").ok());
  ASSERT_TRUE(queue.RegisterLenService(ServiceId(2), "q").ok());

  ConflictSpec escrow_spec, queue_spec;
  escrow.services().DeriveConflicts(&escrow_spec);
  queue.services().DeriveConflicts(&queue_spec);
  ASSERT_TRUE(escrow_spec.IsEffectFreeService(ServiceId(2)));
  ASSERT_TRUE(queue_spec.IsEffectFreeService(ServiceId(2)));

  for (int i = 0; i < 40; ++i) {
    ServiceRequest update{ProcessId(i + 1), ActivityId(1),
                          rng.NextInRange(1, 5)};
    if (rng.NextBool(0.5)) (void)escrow.Invoke(ServiceId(1), update);
    if (rng.NextBool(0.5)) {
      (void)queue.Invoke(ServiceId(1),
                         ServiceRequest{ProcessId(i + 1), ActivityId(2), 0});
    }
    auto escrow_before = escrow.Snapshot();
    auto queue_before = queue.Snapshot();
    ServiceRequest query{ProcessId(99), ActivityId(9), 0};
    ASSERT_TRUE(escrow.Invoke(ServiceId(2), query).ok());
    ASSERT_TRUE(queue.Invoke(ServiceId(2), query).ok());
    EXPECT_EQ(escrow.Snapshot(), escrow_before);
    EXPECT_EQ(queue.Snapshot(), queue_before);
  }
}

}  // namespace
}  // namespace tpm
