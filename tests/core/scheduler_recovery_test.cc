#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

TEST(SchedulerRecoveryTest, RecoverWithoutLogFails) {
  TransactionalProcessScheduler scheduler;
  EXPECT_TRUE(scheduler.Recover({}).IsFailedPrecondition());
}

TEST(SchedulerRecoveryTest, CrashBeforeAnythingIsHarmless) {
  MiniWorld world;
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  EXPECT_TRUE(scheduler.history().events().empty());
}

TEST(SchedulerRecoveryTest, BackwardRecoveryAfterCrash) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a c:b c:d p:x r:y");
  ASSERT_NE(def, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  // Execute two activities, then crash before the pivot.
  ASSERT_TRUE(scheduler.Step().ok());
  ASSERT_TRUE(scheduler.Step().ok());
  EXPECT_EQ(world.Value("a"), 1);
  EXPECT_EQ(world.Value("b"), 1);
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // The in-flight process was group-aborted: all effects compensated.
  EXPECT_EQ(world.Value("a"), 0);
  EXPECT_EQ(world.Value("b"), 0);
  EXPECT_EQ(world.Value("x"), 0);
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(1)), ProcessOutcome::kAborted);
}

TEST(SchedulerRecoveryTest, ForwardRecoveryAfterCrash) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:x r:y r:z");
  ASSERT_NE(def, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  // Run until the pivot committed (a, x), then crash.
  ASSERT_TRUE(scheduler.Step().ok());
  ASSERT_TRUE(scheduler.Step().ok());
  EXPECT_EQ(world.Value("x"), 1);
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // F-REC: the forward recovery path (y, z) was executed; effects stay.
  EXPECT_EQ(world.Value("a"), 1);
  EXPECT_EQ(world.Value("x"), 1);
  EXPECT_EQ(world.Value("y"), 1);
  EXPECT_EQ(world.Value("z"), 1);
}

TEST(SchedulerRecoveryTest, CommittedProcessesUntouchedByRecovery) {
  MiniWorld world;
  const ProcessDef* done = world.MakeChain("done", "c:a p:b");
  const ProcessDef* inflight = world.MakeChain("inflight", "c:d c:e p:f");
  ASSERT_NE(done, nullptr);
  ASSERT_NE(inflight, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(done).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  ASSERT_TRUE(scheduler.Submit(inflight).ok());
  ASSERT_TRUE(scheduler.Step().ok());  // executes d only
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // The committed process's effects persist...
  EXPECT_EQ(world.Value("a"), 1);
  EXPECT_EQ(world.Value("b"), 1);
  // ...the in-flight one was rolled back.
  EXPECT_EQ(world.Value("d"), 0);
  EXPECT_EQ(world.Value("e"), 0);
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(1)), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(2)), ProcessOutcome::kAborted);
}

TEST(SchedulerRecoveryTest, GroupAbortOrdersCompensationsReverse) {
  MiniWorld world;
  const ProcessDef* p1 = world.MakeChain("p1", "c:a c:b p:x");
  const ProcessDef* p2 = world.MakeChain("p2", "c:d c:e p:y");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(p1).ok());
  ASSERT_TRUE(scheduler.Submit(p2).ok());
  ASSERT_TRUE(scheduler.Step().ok());  // a, d
  ASSERT_TRUE(scheduler.Step().ok());  // b, e
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // All four compensations executed; Lemma 2: reverse order of originals.
  const auto& events = scheduler.history().events();
  std::vector<std::string> inverses;
  for (const auto& e : events) {
    if (e.type == EventType::kActivity && e.act.inverse) {
      inverses.push_back(e.ToString());
    }
  }
  ASSERT_EQ(inverses.size(), 4u);
  // Log order of originals: a(P1), d(P2), b(P1), e(P2) -> reverse:
  // e(P2), b(P1), d(P2), a(P1) = activities 2,2,1,1 of processes 2,1,2,1.
  EXPECT_EQ(inverses[0], "a2_2^-1");
  EXPECT_EQ(inverses[1], "a1_2^-1");
  EXPECT_EQ(inverses[2], "a2_1^-1");
  EXPECT_EQ(inverses[3], "a1_1^-1");
  EXPECT_EQ(world.Value("a") + world.Value("b") + world.Value("d") +
                world.Value("e"),
            0);
}

TEST(SchedulerRecoveryTest, PreparedBranchesPresumedAborted) {
  MiniWorld world;
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:q1 c:q2 p:t r:u");
  const ProcessDef* p2 = world.MakeChain("p2", "c:w p:s r:v");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  RecoveryLog log;
  SchedulerOptions options;
  options.defer_mode = DeferMode::kPrepared2PC;
  TransactionalProcessScheduler scheduler(options, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(p1).ok());
  ASSERT_TRUE(scheduler.Submit(p2).ok());
  // Run a few steps so P2's pivot on "s" is prepared but not released
  // (blocked on active P1).
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(scheduler.Step().ok());
  EXPECT_GT(scheduler.stats().prepared_branches, 0);
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // The prepared pivot never committed: presumed abort wiped it, and the
  // compensations of both processes went through (locks were released).
  EXPECT_EQ(world.Value("s"), 0);
  EXPECT_EQ(world.Value("w"), 0);
}

TEST(SchedulerRecoveryTest, SchedulerContinuesAfterRecovery) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a c:b p:x");
  ASSERT_NE(def, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Step().ok());
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // New work after recovery proceeds normally with a fresh pid.
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  EXPECT_GT(pid->value(), 1);
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kCommitted);
  EXPECT_EQ(world.Value("a"), 1);
  EXPECT_EQ(world.Value("b"), 1);
  EXPECT_EQ(world.Value("x"), 1);
}

TEST(SchedulerRecoveryTest, CheckpointCompactsLog) {
  MiniWorld world;
  const ProcessDef* quick = world.MakeChain("quick", "c:a p:b");
  const ProcessDef* slow = world.MakeChain("slow", "c:d c:e c:f p:g");
  ASSERT_NE(quick, nullptr);
  ASSERT_NE(slow, nullptr);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  // Run several quick processes to completion, then leave one in flight.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Submit(quick).ok());
    ASSERT_TRUE(scheduler.Run().ok());
  }
  ASSERT_TRUE(scheduler.Submit(slow).ok());
  ASSERT_TRUE(scheduler.Step().ok());  // d
  ASSERT_TRUE(scheduler.Step().ok());  // e
  size_t before = log.size();
  ASSERT_TRUE(scheduler.Checkpoint().ok());
  // Compacted: 1 BEGIN + 2 ACT records instead of the full run history.
  EXPECT_EQ(log.size(), 3u);
  EXPECT_LT(log.size(), before);
  // Recovery from the compact log still rolls the in-flight process back.
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  EXPECT_EQ(world.Value("d"), 0);
  EXPECT_EQ(world.Value("e"), 0);
  // The committed quick processes' effects are untouched.
  EXPECT_EQ(world.Value("a"), 5);
  EXPECT_EQ(world.Value("b"), 5);
}

TEST(SchedulerRecoveryTest, CheckpointPreservesCompensatedState) {
  // A process that compensated some work (branch switch) checkpoints to an
  // equivalent compact state: recovery must not re-compensate.
  MiniWorld world;
  const ProcessDef* def =
      world.MakeBranching("p", "pre", "piv", "mid", "deep", "alt");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("deep"), 1);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  // Run until the branch switch compensated "mid" (pre, piv, mid, deep
  // fails, mid^-1): 5 passes is plenty.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(scheduler.Step().ok());
  ASSERT_EQ(world.Value("mid"), 0);
  ASSERT_TRUE(scheduler.Checkpoint().ok());
  scheduler.Crash();
  ASSERT_TRUE(scheduler.Recover(world.DefsByName()).ok());
  // F-REC group abort: pre/piv stay, mid stays compensated (not negative!).
  EXPECT_EQ(world.Value("pre"), 1);
  EXPECT_EQ(world.Value("piv"), 1);
  EXPECT_EQ(world.Value("mid"), 0);
  EXPECT_EQ(world.Value("alt"), 1);  // forward recovery ran the alternative
}

TEST(SchedulerRecoveryTest, CheckpointWithoutLogFails) {
  TransactionalProcessScheduler scheduler;
  EXPECT_TRUE(scheduler.Checkpoint().IsFailedPrecondition());
}

}  // namespace
}  // namespace tpm
