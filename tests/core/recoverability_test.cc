#include "core/recoverability.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

using figures::kP1;
using figures::kP2;

class RecoverabilityTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

// The PRED execution of Figure 7 is process-recoverable (Theorem 1).
TEST_F(RecoverabilityTest, DoublePrimeIsProcessRecoverable) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  auto outcome = AnalyzeProcessRecoverability(s, world_.spec);
  EXPECT_TRUE(outcome.process_recoverable) << s.ToString();
  EXPECT_TRUE(outcome.violations.empty());
}

// Clause 1: C_j before C_i with a_ik <<_S a_jl violates Proc-REC.
TEST_F(RecoverabilityTest, CommitOrderViolationDetected) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  // a11 << a21 conflict, but P2 commits first.
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(kP2)).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(kP1)).ok());
  auto outcome = AnalyzeProcessRecoverability(s, world_.spec);
  EXPECT_FALSE(outcome.process_recoverable);
  ASSERT_FALSE(outcome.violations.empty());
  EXPECT_EQ(outcome.violations[0].clause, 1);
  EXPECT_NE(outcome.violations[0].ToString().find("clause 1"),
            std::string::npos);
}

// Clause 1: C_j present while C_i absent also violates.
TEST_F(RecoverabilityTest, MissingEarlierCommitViolates) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(kP2)).ok());
  auto outcome = AnalyzeProcessRecoverability(s, world_.spec);
  EXPECT_FALSE(outcome.process_recoverable);
}

// Clause 2: the next non-compensatable of P_j (after its conflicting
// activity) must succeed the next non-compensatable of P_i. This is the
// S_t1 situation of Example 8: a11 << a21, then P2's pivot a23 commits
// while P1's pivot a12 comes later.
TEST_F(RecoverabilityTest, Example8ViolatesClause2) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto outcome = AnalyzeProcessRecoverability(s, world_.spec);
  EXPECT_FALSE(outcome.process_recoverable);
  bool clause2 = false;
  for (const auto& v : outcome.violations) {
    if (v.clause == 2) clause2 = true;
  }
  EXPECT_TRUE(clause2);
}

// Without conflicting activities there is nothing to violate.
TEST_F(RecoverabilityTest, NoConflictsIsVacuouslyRecoverable) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(2), false}))
                  .ok());
  EXPECT_TRUE(IsProcessRecoverable(s, world_.spec));
}

// Aborted invocations are effect-free and never create conflicts.
TEST_F(RecoverabilityTest, AbortedInvocationsIgnored) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false},
                           /*aborted_invocation=*/true))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(kP2)).ok());
  EXPECT_TRUE(IsProcessRecoverable(s, world_.spec));
}

}  // namespace
}  // namespace tpm
