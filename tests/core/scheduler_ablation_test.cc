// Guard ablations on the deterministic CIM scenario: disabling Lemma 1
// deferral must reproduce the Figure 1 anomaly even under the kPred
// protocol, and the full guard set must prevent it.

#include <gtest/gtest.h>

#include "core/pred.h"
#include "core/scheduler.h"
#include "workload/cim_workload.h"

namespace tpm {
namespace {

struct CimResult {
  bool consistent = false;
  bool pred = false;
  int64_t irrecoverable = 0;
  int64_t parts = 0;
};

CimResult RunCimWith(const PredAblation& ablation) {
  CimWorld world;
  world.ScheduleTestFailure();
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  options.ablation = ablation;
  TransactionalProcessScheduler scheduler(options);
  CimResult result;
  if (!world.RegisterAll(&scheduler).ok()) return result;
  auto c = scheduler.Submit(world.construction());
  if (!c.ok()) return result;
  for (int i = 0; i < 3; ++i) {
    auto step = scheduler.Step();
    if (!step.ok()) return result;
  }
  auto p = scheduler.Submit(world.production());
  if (!p.ok()) return result;
  if (!scheduler.Run().ok()) return result;
  result.consistent = world.Consistent();
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  result.pred = pred.ok() && *pred;
  result.irrecoverable = scheduler.stats().irrecoverable_cascades;
  result.parts = world.parts_produced();
  return result;
}

TEST(SchedulerAblationTest, FullGuardSetIsSafe) {
  CimResult r = RunCimWith(PredAblation{});
  EXPECT_TRUE(r.consistent);
  EXPECT_TRUE(r.pred);
  EXPECT_EQ(r.irrecoverable, 0);
  EXPECT_EQ(r.parts, 0);
}

TEST(SchedulerAblationTest, DisablingLemma1ReproducesFigure1Anomaly) {
  PredAblation ablation;
  ablation.lemma1_deferral = false;
  CimResult r = RunCimWith(ablation);
  EXPECT_FALSE(r.consistent);
  EXPECT_FALSE(r.pred);
  EXPECT_GE(r.irrecoverable, 1);
  EXPECT_GT(r.parts, 0);
}

TEST(SchedulerAblationTest, CompletionPreorderDoesNotSubsumeLemma1) {
  // The §3.5 pre-order guards only the committed activity's OWN service
  // against potential completion conflicts; the Figure 1 hazard lives on a
  // different service (the earlier BOM read), which is exactly what the
  // Lemma 1 deferral covers — the guards are complementary.
  PredAblation ablation;
  ablation.lemma1_deferral = false;
  ablation.completion_preorder = true;
  CimResult r = RunCimWith(ablation);
  EXPECT_FALSE(r.consistent);
  EXPECT_GT(r.parts, 0);
}

TEST(SchedulerAblationTest, DisablingCompensationGateBreaksLemma2Order) {
  PredAblation ablation;
  ablation.compensation_gate = false;
  CimResult r = RunCimWith(ablation);
  // The production process's conflicting read is no longer forced to be
  // undone before the PDM compensation: the emitted history violates the
  // reverse-compensation order (not PRED), even though the deferred pivot
  // still keeps the store consistent.
  EXPECT_FALSE(r.pred);
  EXPECT_EQ(r.parts, 0);
}

TEST(SchedulerAblationTest, AblationOffByDefault) {
  SchedulerOptions options;
  EXPECT_TRUE(options.ablation.lemma1_deferral);
  EXPECT_TRUE(options.ablation.crossing_prevention);
  EXPECT_TRUE(options.ablation.compensation_gate);
  EXPECT_TRUE(options.ablation.completion_preorder);
}

}  // namespace
}  // namespace tpm
