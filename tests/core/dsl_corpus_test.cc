// A corpus of hand-designed worlds (via the DSL) with expected verdicts
// for every criterion — adversarial corner cases of the schedule theory
// beyond the paper's own figures.

#include <gtest/gtest.h>

#include "core/expansion.h"
#include "core/pred.h"
#include "core/process_dsl.h"
#include "core/reduction.h"
#include "core/serializability.h"
#include "core/sot.h"

namespace tpm {
namespace {

struct Verdicts {
  bool serializable;
  bool red;
  bool pred;
  bool sot;
};

struct Case {
  const char* name;
  const char* world;
  Verdicts expected;
};

// Two single-compensatable processes on one conflicting service each.
constexpr char kTwoComp[] = R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=2 comp=102
end
conflict 1 2
)";

const Case kCases[] = {
    {
        "interleaved compensatables, both active: reducible",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=2 comp=102
end
conflict 1 2
schedule A.x B.y
)",
        {true, true, true, true},
    },
    {
        "conflicting pair frozen by commit of the later process",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y p service=2
end
conflict 1 2
schedule A.x B.y CB
)",
        // B's pivot froze after consuming A's x; A's completion must
        // compensate x behind it: irreducible.
        {true, false, false, true},
    },
    {
        "same shape but the earlier process commits first",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y p service=2
end
conflict 1 2
schedule A.x CA B.y CB
)",
        {true, true, true, true},
    },
    {
        "compensation emitted in the wrong order (violates Lemma 2)",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=1 comp=102
end
conflict 1 1
schedule! A.x B.y A.x^-1 B.y^-1
)",
        {false, false, false, false},
    },
    {
        "compensation emitted in reverse order (Lemma 2 satisfied)",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=1 comp=102
end
conflict 1 1
schedule B.y A.x A.x^-1 B.y^-1
)",
        // Pairs cancel bottom-up, so the schedule is (prefix-)reducible —
        // although the raw conflict graph over ALL events is cyclic
        // (y < x < y^-1): Theorem 1's serializability claim is about the
        // committed projection, which is empty here.
        {false, true, true, false},
    },
    {
        "aborted invocations never block reduction",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y p service=2
end
conflict 1 2
schedule B.y! A.x B.y! A.x^-1 AA B.y CB
)",
        // The failed invocations of y between x and x^-1 are effect-free.
        {true, true, true, true},
    },
    {
        "re-execution after compensation (alternative retry shape)",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=2 comp=102
end
conflict 1 2
schedule A.x A.x^-1 A.x B.y CA CB
)",
        // The cancelled first attempt does not conflict-order A after B.
        {true, true, true, true},
    },
    {
        "group abort mid-schedule frees both processes",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=2 comp=102
end
process C
  activity z r service=3
end
conflict 1 2
schedule A.x B.y GA(A,B) C.z
)",
        {true, true, true, true},
    },
    {
        "retriable tail conflict across active processes",
        R"(
process A
  activity p p service=1
  activity r r service=2
  edge p r
end
process B
  activity p p service=3
  activity r r service=2
  edge p r
end
conflict 2 2
schedule A.p B.p A.r B.r
)",
        // Frozen retriables conflict one way only: still reducible.
        {true, true, true, true},
    },
    {
        "cyclic frozen retriables",
        R"(
process A
  activity p p service=1
  activity r r service=2
  edge p r
end
process B
  activity p p service=2
  activity r r service=1
  edge p r
end
conflict 1 2
schedule A.p B.p B.r A.r
)",
        // Edges: A.p(svc1) < B.p(svc2) gives A->B; B.r(svc1) < A.r(svc2)
        // gives B->A — a cycle of frozen non-compensatables that no
        // reduction rule can touch.
        {false, false, false, false},
    },
    {
        "individual abort mid-schedule expands in place",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y p service=1
end
conflict 1 1
schedule A.x A.x^-1 AA B.y CB
)",
        // A undid itself and aborted before B used the service: clean.
        {true, true, true, true},
    },
    {
        "compensatable-retriable consumed by a frozen pivot",
        R"(
process A
  activity x cr service=1 comp=101
end
process B
  activity y p service=1
end
conflict 1 1
schedule A.x B.y CB
)",
        // Same trap as with a plain compensatable: A's completion must
        // compensate x behind B's frozen y (footnote 2 kinds compensate
        // too).
        {true, false, false, true},
    },
    {
        "three-process chain stays reducible",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=1 comp=102
end
process C
  activity z c service=1 comp=103
end
conflict 1 1
schedule A.x B.y C.z CA CB CC
)",
        // Same-service chain, commits in conflict order.
        {true, true, true, true},
    },
    {
        "three-process chain with inverted middle commit",
        R"(
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=1 comp=102
end
process C
  activity z c service=1 comp=103
end
conflict 1 1
schedule A.x B.y C.z CB CC
)",
        // A stays active: its completion compensates x behind the frozen
        // committed y and z. SOT accepts it (A has no terminal event, so
        // its clauses are vacuous) — another SOT/PRED gap witness.
        {true, false, false, true},
    },
    {
        "op-commuting services dissolve the frozen-pivot trap",
        R"(
op t.inc
op t.dec
inverse t.inc t.dec
commute t.inc t.inc
bind 1 t.inc
bind 101 t.dec
bind 2 t.inc
process A
  activity x c service=1 comp=101
end
process B
  activity y p service=2
end
conflict 1 2
schedule A.x B.y CB
)",
        // Identical shape to the earlier frozen-pivot case, but both
        // services are escrow-style commuting increments: the service-level
        // conflict is downgraded, so A's eventual compensation no longer
        // has to cross a frozen conflicting event.
        {true, true, true, true},
    },
    {
        "perfect-closure lets wrong-order compensations cancel",
        R"(
op t.inc
op t.dec
inverse t.inc t.dec
commute t.inc t.inc
bind 1 t.inc
bind 101 t.dec
bind 102 t.dec
process A
  activity x c service=1 comp=101
end
process B
  activity y c service=1 comp=102
end
conflict 1 1
schedule! A.x B.y A.x^-1 B.y^-1
)",
        // The same event order violates Lemma 2 under read/write
        // modeling (see the earlier case); with inc self-commuting and the
        // table closed over <inc dec>, nothing conflicts and both pairs
        // cancel in either order (SOT holds vacuously: no conflicts means
        // no serialization-order constraints to violate).
        {true, true, true, true},
    },
};

class DslCorpusTest : public ::testing::TestWithParam<Case> {};

TEST_P(DslCorpusTest, VerdictsMatch) {
  const Case& c = GetParam();
  auto world = ParseWorld(c.world);
  ASSERT_TRUE(world.ok()) << c.name << ": " << world.status();
  const ProcessSchedule& s = (*world)->schedule;
  const ConflictSpec& spec = (*world)->spec;

  EXPECT_EQ(IsSerializable(s, spec), c.expected.serializable) << c.name;
  auto red = IsRED(s, spec);
  ASSERT_TRUE(red.ok()) << c.name;
  EXPECT_EQ(*red, c.expected.red) << c.name;
  auto pred = IsPRED(s, spec);
  ASSERT_TRUE(pred.ok()) << c.name;
  EXPECT_EQ(*pred, c.expected.pred) << c.name;
  EXPECT_EQ(IsSOT(s, spec), c.expected.sot) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, DslCorpusTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "case" + std::to_string(info.index);
                         });

TEST(DslCorpusTest, BaselineWorldParses) {
  auto world = ParseWorld(kTwoComp);
  ASSERT_TRUE(world.ok());
  EXPECT_FALSE((*world)->has_schedule);
}

}  // namespace
}  // namespace tpm
