#include "core/process.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

ProcessDef MakeChain() {
  ProcessDef def("chain");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(2));
  ActivityId c = def.AddActivity("c", ActivityKind::kRetriable, ServiceId(3));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.AddEdge(b, c).ok());
  EXPECT_TRUE(def.Validate().ok());
  return def;
}

TEST(ProcessDefTest, ActivityIdsAreOneBased) {
  ProcessDef def("p");
  EXPECT_EQ(def.AddActivity("x", ActivityKind::kPivot, ServiceId(1)),
            ActivityId(1));
  EXPECT_EQ(def.AddActivity("y", ActivityKind::kPivot, ServiceId(2)),
            ActivityId(2));
}

TEST(ProcessDefTest, ValidateRejectsEmptyProcess) {
  ProcessDef def("empty");
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(ProcessDefTest, ValidateRequiresCompensationServiceOnCompensatable) {
  ProcessDef def("p");
  def.AddActivity("a", ActivityKind::kCompensatable, ServiceId(1));
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(ProcessDefTest, ValidateRejectsCompensationOnPivot) {
  ProcessDef def("p");
  def.AddActivity("a", ActivityKind::kPivot, ServiceId(1), ServiceId(2));
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(ProcessDefTest, EdgesRejectUnknownAndSelf) {
  ProcessDef def("p");
  ActivityId a = def.AddActivity("a", ActivityKind::kPivot, ServiceId(1));
  EXPECT_TRUE(def.AddEdge(a, ActivityId(9)).IsInvalidArgument());
  EXPECT_TRUE(def.AddEdge(a, a).IsInvalidArgument());
}

TEST(ProcessDefTest, DuplicateEdgeRejected) {
  ProcessDef def("p");
  ActivityId a = def.AddActivity("a", ActivityKind::kPivot, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_EQ(def.AddEdge(a, b).code(), StatusCode::kAlreadyExists);
}

TEST(ProcessDefTest, ValidateRejectsCyclicPrecedence) {
  ProcessDef def("p");
  ActivityId a = def.AddActivity("a", ActivityKind::kPivot, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.AddEdge(b, a).ok());
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(ProcessDefTest, ValidateRejectsNonContiguousPreferences) {
  ProcessDef def("p");
  ActivityId a = def.AddActivity("a", ActivityKind::kPivot, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(a, b, /*preference=*/2).ok());
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(ProcessDefTest, SuccessorGroupsOrderedByPreference) {
  ProcessDef def("p");
  ActivityId a = def.AddActivity("a", ActivityKind::kPivot, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(2));
  ActivityId c = def.AddActivity("c", ActivityKind::kRetriable, ServiceId(3));
  EXPECT_TRUE(def.AddEdge(a, b, 0).ok());
  EXPECT_TRUE(def.AddEdge(a, c, 1).ok());
  EXPECT_TRUE(def.Validate().ok());
  auto groups = def.SuccessorGroups(a);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], std::vector<ActivityId>{b});
  EXPECT_EQ(groups[1], std::vector<ActivityId>{c});
  EXPECT_EQ(*def.EdgePreference(a, c), 1);
  EXPECT_TRUE(def.EdgePreference(b, c).status().IsNotFound());
}

TEST(ProcessDefTest, RootsPredecessorsSubtree) {
  ProcessDef def = MakeChain();
  EXPECT_EQ(def.Roots(), std::vector<ActivityId>{ActivityId(1)});
  EXPECT_EQ(def.Predecessors(ActivityId(2)),
            std::vector<ActivityId>{ActivityId(1)});
  auto subtree = def.Subtree(ActivityId(2));
  EXPECT_EQ(subtree,
            (std::vector<ActivityId>{ActivityId(2), ActivityId(3)}));
}

TEST(ProcessDefTest, Precedes) {
  ProcessDef def = MakeChain();
  EXPECT_TRUE(def.Precedes(ActivityId(1), ActivityId(3)));
  EXPECT_FALSE(def.Precedes(ActivityId(3), ActivityId(1)));
  EXPECT_FALSE(def.Precedes(ActivityId(1), ActivityId(1)));
}

TEST(ProcessDefTest, SubtreeAllRetriable) {
  ProcessDef def = MakeChain();
  EXPECT_TRUE(def.SubtreeAllRetriable({ActivityId(3)}));
  EXPECT_FALSE(def.SubtreeAllRetriable({ActivityId(2)}));
}

TEST(ProcessDefTest, ToStringMentionsActivitiesAndEdges) {
  ProcessDef def = MakeChain();
  std::string s = def.ToString();
  EXPECT_NE(s.find("chain"), std::string::npos);
  EXPECT_NE(s.find("pivot"), std::string::npos);
  EXPECT_NE(s.find("<<"), std::string::npos);
}

}  // namespace
}  // namespace tpm
