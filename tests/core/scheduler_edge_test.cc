// Edge cases of the online scheduler: prepared-branch rollback when the
// blocker aborts, manual conflict declarations, step budgets, and misc
// accessors.

#include <gtest/gtest.h>

#include "core/pred.h"
#include "core/scheduler.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

TEST(SchedulerEdgeTest, PreparedBranchRolledBackWhenBlockerAborts) {
  MiniWorld world;
  // P1 touches "s" then fails its pivot -> aborts and must compensate "s".
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:x1 c:x2 p:boom");
  // P2's pivot on "s" gets prepared behind active P1.
  const ProcessDef* p2 = world.MakeChain("p2", "c:w p:s r:z");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("boom"), 1);
  SchedulerOptions options;
  options.defer_mode = DeferMode::kPrepared2PC;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // P1 aborted; its compensation of "s" required P2's prepared branch to be
  // rolled back (locks released). Everything balances.
  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kAborted);
  EXPECT_EQ(world.Value("s") + world.Value("x1") + world.Value("x2"), 0);
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(SchedulerEdgeTest, ManualConflictsExtendDerivedOnes) {
  MiniWorld world;
  const ProcessDef* p1 = world.MakeChain("p1", "c:a c:a2 p:b");
  const ProcessDef* p2 = world.MakeChain("p2", "c:c p:d");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  // Declare a cross-key conflict (e.g., an application-level constraint).
  scheduler.AddConflict(world.AddServiceFor("a"), world.AddServiceFor("d"));
  EXPECT_TRUE(scheduler.conflict_spec().ServicesConflict(
      world.AddServiceFor("a"), world.AddServiceFor("d")));
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // P2's pivot d conflicts with P1's earlier a: it must commit after C1.
  const auto& events = scheduler.history().events();
  size_t c1 = SIZE_MAX, d_pos = SIZE_MAX;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCommit && events[i].process == *pid1) {
      c1 = i;
    }
    if (events[i].type == EventType::kActivity &&
        events[i].act.process == *pid2 &&
        events[i].act.activity == ActivityId(2) &&
        !events[i].aborted_invocation) {
      d_pos = i;
    }
  }
  ASSERT_NE(c1, SIZE_MAX);
  ASSERT_NE(d_pos, SIZE_MAX);
  EXPECT_LT(c1, d_pos);
}

TEST(SchedulerEdgeTest, RunHonorsStepBudget) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a c:b c:c p:d r:e");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  EXPECT_TRUE(scheduler.Run(/*max_steps=*/1).code() ==
              StatusCode::kInternal);
  // Finishing afterwards works.
  EXPECT_TRUE(scheduler.Run().ok());
}

TEST(SchedulerEdgeTest, OutcomeOfUnknownProcessIsActive) {
  TransactionalProcessScheduler scheduler;
  EXPECT_EQ(scheduler.OutcomeOf(ProcessId(99)), ProcessOutcome::kActive);
}

TEST(SchedulerEdgeTest, RegisterSubsystemRejectsNullAndDuplicates) {
  MiniWorld world;
  (void)world.MakeChain("p", "c:a p:b");  // materialize services
  TransactionalProcessScheduler scheduler;
  EXPECT_TRUE(scheduler.RegisterSubsystem(nullptr).IsInvalidArgument());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  EXPECT_EQ(scheduler.RegisterSubsystem(world.subsystem()).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchedulerEdgeTest, StatsAccumulateAcrossProcesses) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b r:c");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(scheduler.Submit(def).ok());
    ASSERT_TRUE(scheduler.Run().ok());
  }
  EXPECT_EQ(scheduler.stats().processes_committed, 3);
  EXPECT_EQ(scheduler.stats().activities_committed, 9);
  EXPECT_EQ(world.Value("a"), 3);
}

TEST(SchedulerEdgeTest, SubmittedParamReachesServices) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def, /*param=*/5).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(world.Value("a"), 5);
  EXPECT_EQ(world.Value("b"), 5);
}

TEST(SchedulerEdgeTest, FailedCompensatableWithoutAlternativesAborts) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a c:b p:c");
  ASSERT_NE(def, nullptr);
  // The second compensatable fails: backward recovery of the first.
  world.subsystem()->ScheduleFailures(world.AddServiceFor("b"), 1);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kAborted);
  EXPECT_EQ(world.Value("a"), 0);
  EXPECT_EQ(world.Value("c"), 0);
}

TEST(SchedulerEdgeTest, CostModelOverlapsLongActivities) {
  // Two independent processes whose pivots take 10 ticks each: the
  // scheduler overlaps them, so the makespan is far below the serial sum.
  auto run = [](AdmissionProtocol protocol) {
    MiniWorld world;
    const ProcessDef* p1 = world.MakeChain("p1", "c:a1 p:b1 r:c1");
    const ProcessDef* p2 = world.MakeChain("p2", "c:a2 p:b2 r:c2");
    EXPECT_NE(p1, nullptr);
    EXPECT_NE(p2, nullptr);
    SchedulerOptions options;
    options.protocol = protocol;
    options.service_durations[world.AddServiceFor("b1")] = 10;
    options.service_durations[world.AddServiceFor("b2")] = 10;
    TransactionalProcessScheduler scheduler(options);
    EXPECT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
    EXPECT_TRUE(scheduler.Submit(p1).ok());
    EXPECT_TRUE(scheduler.Submit(p2).ok());
    EXPECT_TRUE(scheduler.Run().ok());
    EXPECT_EQ(scheduler.stats().processes_committed, 2);
    return scheduler.stats().virtual_time;
  };
  int64_t pred_makespan = run(AdmissionProtocol::kPred);
  int64_t serial_makespan = run(AdmissionProtocol::kSerial);
  // PRED overlaps the two 10-tick pivots; serial cannot.
  EXPECT_LT(pred_makespan, serial_makespan);
  EXPECT_GE(serial_makespan, 20);
}

TEST(SchedulerEdgeTest, CostModelOccupiesSingleProcess) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  SchedulerOptions options;
  options.service_durations[world.AddServiceFor("a")] = 7;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // a occupies 7 ticks, then b and the commit.
  EXPECT_GE(scheduler.stats().virtual_time, 8);
}

TEST(SchedulerEdgeTest, ConcurrencyThrottleQueuesSubmissions) {
  MiniWorld world;
  std::vector<const ProcessDef*> defs;
  for (int i = 0; i < 4; ++i) {
    defs.push_back(world.MakeChain(StrCat("t", i),
                                   StrCat("c:k", i, " p:m", i)));
    ASSERT_NE(defs.back(), nullptr);
  }
  SchedulerOptions options;
  options.max_concurrent_processes = 2;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  std::vector<ProcessId> pids;
  for (const ProcessDef* def : defs) {
    auto pid = scheduler.Submit(def);
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  // After one pass only two processes have started.
  ASSERT_TRUE(scheduler.Step().ok());
  int started = 0;
  for (const auto& e : scheduler.history().events()) {
    if (e.type == EventType::kActivity) ++started;
  }
  EXPECT_EQ(started, 2);
  // Everyone still finishes.
  ASSERT_TRUE(scheduler.Run().ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(scheduler.OutcomeOf(pid), ProcessOutcome::kCommitted);
  }
}

TEST(SchedulerEdgeTest, LatenciesRecorded) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b r:c");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  ASSERT_EQ(scheduler.latencies().size(), 1u);
  const auto& latency = scheduler.latencies()[0];
  EXPECT_EQ(latency.pid, *pid);
  EXPECT_EQ(latency.outcome, ProcessOutcome::kCommitted);
  EXPECT_EQ(latency.submitted, 0);
  EXPECT_GE(latency.started, 1);
  EXPECT_GT(latency.terminated, latency.started);
}

}  // namespace
}  // namespace tpm
