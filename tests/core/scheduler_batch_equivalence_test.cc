// Batched-admission equivalence: Scheduler::SubmitBatch must produce
// bit-identical histories, stats and per-entry outcomes to the
// one-at-a-time Submit path. The fingerprint harness reuses the refactor
// equivalence workloads (all admission protocols x both defer modes) and
// compares a batched run against a per-process run directly — the
// per-process side is in turn pinned to the seed goldens by
// scheduler_refactor_equivalence_test.cc, so transitively the batched path
// matches the seed too.

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "testing/mini_world.h"
#include "workload/process_generator.h"

namespace tpm {
namespace {

using testing::MiniWorld;
using BatchSubmission = TransactionalProcessScheduler::BatchSubmission;

struct Combo {
  const char* label;
  AdmissionProtocol protocol;
  DeferMode defer;
  bool quasi;
};

struct WorkloadSpec {
  const char* label;
  int pool;
  double failure;
  uint64_t seed;
  int64_t duration;    // 0 = no cost model
  int max_concurrent;  // 0 = unlimited
};

constexpr Combo kCombos[] = {
    {"pred/delay", AdmissionProtocol::kPred, DeferMode::kDelayExecution,
     false},
    {"pred/2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC, false},
    {"pred+qc/delay", AdmissionProtocol::kPred, DeferMode::kDelayExecution,
     true},
    {"pred+qc/2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC, true},
    {"serial/delay", AdmissionProtocol::kSerial, DeferMode::kDelayExecution,
     false},
    {"serial/2pc", AdmissionProtocol::kSerial, DeferMode::kPrepared2PC,
     false},
    {"2pl/delay", AdmissionProtocol::kTwoPhaseLocking,
     DeferMode::kDelayExecution, false},
    {"2pl/2pc", AdmissionProtocol::kTwoPhaseLocking, DeferMode::kPrepared2PC,
     false},
    {"unsafe/delay", AdmissionProtocol::kUnsafe, DeferMode::kDelayExecution,
     false},
    {"unsafe/2pc", AdmissionProtocol::kUnsafe, DeferMode::kPrepared2PC,
     false},
};

constexpr WorkloadSpec kWorkloads[] = {
    {"w0-low", 18, 0.0, 7, 0, 0},
    {"w1-mid-fail", 5, 0.05, 21, 0, 0},
    {"w2-extreme-fail", 3, 0.10, 99, 0, 0},
    {"w3-durations-throttled", 9, 0.0, 5, 3, 4},
};

std::string HexOf(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

// Runs the workload under the combo, submitting either per-process or in
// per-round batches, and fingerprints the emitted history plus every
// SchedulerStats field.
std::string RunFingerprint(const WorkloadSpec& w, const Combo& c,
                           bool batched) {
  SyntheticUniverse universe(3, 6);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, w.failure);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 3;
  shape.nested_probability = 0.3;
  ProcessGenerator generator(&universe, shape, w.seed);
  generator.RestrictItems(0, static_cast<size_t>(w.pool));
  SchedulerOptions options;
  options.protocol = c.protocol;
  options.defer_mode = c.defer;
  options.quasi_commit_optimization = c.quasi;
  options.max_concurrent_processes = w.max_concurrent;
  if (w.duration > 0) {
    for (const auto& item : universe.items()) {
      options.service_durations[item.add] = w.duration;
      options.service_durations[item.sub] = w.duration;
    }
  }
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);

  // Submits `defs` and records the successful pids in `in_flight`.
  auto submit_all = [&](const std::vector<const ProcessDef*>& defs,
                        std::map<ProcessId, const ProcessDef*>* in_flight) {
    if (batched) {
      std::vector<BatchSubmission> batch;
      batch.reserve(defs.size());
      for (const ProcessDef* def : defs) batch.push_back({def, 0});
      std::vector<Result<ProcessId>> pids = scheduler.SubmitBatch(batch);
      for (size_t i = 0; i < defs.size(); ++i) {
        if (pids[i].ok()) (*in_flight)[*pids[i]] = defs[i];
      }
    } else {
      for (const ProcessDef* def : defs) {
        auto pid = scheduler.Submit(def);
        if (pid.ok()) (*in_flight)[*pid] = def;
      }
    }
  };

  std::vector<const ProcessDef*> initial;
  for (int i = 0; i < 16; ++i) {
    auto def = generator.Generate(StrCat("e", i));
    if (def.ok()) initial.push_back(*def);
  }
  std::map<ProcessId, const ProcessDef*> in_flight;
  submit_all(initial, &in_flight);

  std::string status = "OK";
  for (int round = 0; round < 4 && !in_flight.empty(); ++round) {
    Status run = scheduler.Run();
    if (!run.ok()) {
      std::ostringstream os;
      os << run;
      status = os.str();
      break;
    }
    std::vector<const ProcessDef*> retries;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 3) continue;
      retries.push_back(def);
    }
    in_flight.clear();
    submit_all(retries, &in_flight);
  }
  const SchedulerStats& s = scheduler.stats();
  std::ostringstream os;
  os << "h=" << HexOf(Fnv1a(scheduler.history().ToString()))
     << " steps=" << s.steps << " vt=" << s.virtual_time
     << " ac=" << s.activities_committed << " fi=" << s.failed_invocations
     << " comp=" << s.compensations << " def=" << s.deferrals
     << " bll=" << s.blocked_by_locks << " alt=" << s.alternatives_taken
     << " pc=" << s.processes_committed << " pa=" << s.processes_aborted
     << " dv=" << s.deadlock_victims << " pb=" << s.prepared_branches
     << " qca=" << s.quasi_commit_admissions << " ca=" << s.cascading_aborts
     << " ic=" << s.irrecoverable_cascades << " cw=" << s.commit_waits
     << " fe=" << s.forced_executions << " cv=" << s.certified_violations
     << " status=" << status;
  return os.str();
}

TEST(SchedulerBatchEquivalence, BatchedMatchesOneAtATimeFingerprints) {
  for (const WorkloadSpec& w : kWorkloads) {
    for (const Combo& c : kCombos) {
      EXPECT_EQ(RunFingerprint(w, c, /*batched=*/true),
                RunFingerprint(w, c, /*batched=*/false))
          << "batched admission diverged from per-process admission for "
          << "workload " << w.label << ", combo " << c.label;
    }
  }
}

// --- Per-entry semantics -------------------------------------------------

SchedulerOptions PredOptions() {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  return options;
}

TEST(SchedulerBatch, MixedValidityKeepsPerEntryOutcomesAndPidOrder) {
  MiniWorld world;
  const ProcessDef* first = world.MakeChain("first", "c:a p:b");
  const ProcessDef* second = world.MakeChain("second", "c:x p:y");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  ProcessDef foreign("foreign");
  foreign.AddActivity("x", ActivityKind::kPivot, ServiceId(424242));
  ASSERT_TRUE(foreign.Validate().ok());
  TransactionalProcessScheduler scheduler(PredOptions());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  std::vector<BatchSubmission> batch = {
      {first, 1}, {nullptr, 2}, {&foreign, 3}, {second, 4}};
  std::vector<Result<ProcessId>> results = scheduler.SubmitBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  // Invalid entries get the same per-entry errors Submit would return,
  // and the valid entries take exactly the pids the one-at-a-time path
  // would have assigned them (rejections consume no pid).
  ASSERT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].status().IsInvalidArgument());
  EXPECT_TRUE(results[2].status().IsNotFound());
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ(*results[0], ProcessId(1));
  EXPECT_EQ(*results[3], ProcessId(2));
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*results[0]), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*results[3]), ProcessOutcome::kCommitted);
}

TEST(SchedulerBatch, RepeatedDefinitionMatchesPerProcessOutcomes) {
  // Eight copies of one conflicting definition in a single batch: the
  // memoized validation must not change a single outcome relative to
  // eight individual Submits on an identical scheduler + world.
  MiniWorld batched_world;
  MiniWorld reference_world;
  const ProcessDef* batched_def =
      batched_world.MakeChain("rep", "c:a p:b r:c");
  const ProcessDef* reference_def =
      reference_world.MakeChain("rep", "c:a p:b r:c");
  ASSERT_NE(batched_def, nullptr);
  ASSERT_NE(reference_def, nullptr);
  TransactionalProcessScheduler batched(PredOptions());
  TransactionalProcessScheduler reference(PredOptions());
  ASSERT_TRUE(batched.RegisterSubsystem(batched_world.subsystem()).ok());
  ASSERT_TRUE(reference.RegisterSubsystem(reference_world.subsystem()).ok());

  std::vector<BatchSubmission> batch(8, BatchSubmission{batched_def, 0});
  std::vector<Result<ProcessId>> results = batched.SubmitBatch(batch);
  ASSERT_EQ(results.size(), 8u);
  std::vector<ProcessId> reference_pids;
  for (int i = 0; i < 8; ++i) {
    auto pid = reference.Submit(reference_def);
    ASSERT_TRUE(pid.ok());
    reference_pids.push_back(*pid);
  }
  ASSERT_TRUE(batched.Run().ok());
  ASSERT_TRUE(reference.Run().ok());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "entry " << i;
    EXPECT_EQ(*results[i], reference_pids[i]);
    EXPECT_EQ(batched.OutcomeOf(*results[i]),
              reference.OutcomeOf(reference_pids[i]))
        << "entry " << i;
  }
  EXPECT_EQ(batched.stats().processes_committed,
            reference.stats().processes_committed);
  EXPECT_EQ(batched.stats().processes_aborted,
            reference.stats().processes_aborted);
  EXPECT_EQ(batched.history().ToString(), reference.history().ToString());
}

TEST(SchedulerBatch, EmptyBatchIsANoOp) {
  MiniWorld world;
  TransactionalProcessScheduler scheduler(PredOptions());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  EXPECT_TRUE(scheduler.SubmitBatch({}).empty());
  EXPECT_EQ(scheduler.stats().processes_committed, 0);
}

TEST(SchedulerBatch, BatchesInterleaveWithPerProcessSubmits) {
  MiniWorld world;
  const ProcessDef* d1 = world.MakeChain("m1", "c:a p:b");
  const ProcessDef* d2 = world.MakeChain("m2", "c:x p:y");
  const ProcessDef* d3 = world.MakeChain("m3", "c:u p:v");
  const ProcessDef* d4 = world.MakeChain("m4", "c:q p:w");
  ASSERT_NE(d4, nullptr);
  TransactionalProcessScheduler scheduler(PredOptions());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto solo = scheduler.Submit(d1);
  ASSERT_TRUE(solo.ok());
  std::vector<Result<ProcessId>> results =
      scheduler.SubmitBatch({{d2, 0}, {d3, 0}});
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(*results[0], ProcessId(2));
  EXPECT_EQ(*results[1], ProcessId(3));
  auto after = scheduler.Submit(d4);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, ProcessId(4));
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.stats().processes_committed, 4);
}

}  // namespace
}  // namespace tpm
