#include "core/serialization_graph.h"

#include <vector>

#include <gtest/gtest.h>

namespace tpm {
namespace {

ProcessId P(int64_t v) { return ProcessId(v); }

TEST(SerializationGraphTest, EmptyGraph) {
  SerializationGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.Contains(P(1)));
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.FindCycle().empty());
}

TEST(SerializationGraphTest, AddNodeIsIdempotent) {
  SerializationGraph g;
  g.AddNode(P(1));
  g.AddNode(P(1));
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_TRUE(g.Contains(P(1)));
}

TEST(SerializationGraphTest, AddEdgeInternsEndpointsAndDedups) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(1), P(1));  // self-edge ignored
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(P(1), P(2)));
  EXPECT_FALSE(g.HasEdge(P(2), P(1)));
  EXPECT_FALSE(g.HasEdge(P(1), P(1)));
}

TEST(SerializationGraphTest, HasPredecessors) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  EXPECT_FALSE(g.HasPredecessors(P(1)));
  EXPECT_TRUE(g.HasPredecessors(P(2)));
  EXPECT_FALSE(g.HasPredecessors(P(99)));
}

TEST(SerializationGraphTest, ReachesIsTransitiveAndReflexive) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(2), P(3));
  EXPECT_TRUE(g.Reaches(P(1), P(3)));
  EXPECT_TRUE(g.Reaches(P(2), P(2)));  // reflexive
  EXPECT_FALSE(g.Reaches(P(3), P(1)));
  EXPECT_FALSE(g.Reaches(P(1), P(99)));
}

TEST(SerializationGraphTest, WouldCycleDetectsBackEdge) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(2), P(3));
  // Adding 3 -> 1 would close the cycle: 1 already reaches 3.
  EXPECT_TRUE(g.WouldCycle(P(1), {P(3)}));
  // Adding 1 -> 3 (3 as the target, preds {1}) closes nothing new... it is
  // already an implied order. 3 does not reach 1.
  EXPECT_FALSE(g.WouldCycle(P(3), {P(1)}));
  // A pred equal to the node itself never cycles (self-edges are ignored).
  EXPECT_FALSE(g.WouldCycle(P(2), {P(2)}));
}

TEST(SerializationGraphTest, ForEachSuccessorAndPredecessor) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(1), P(3));
  g.AddEdge(P(4), P(3));
  std::vector<ProcessId> succ;
  g.ForEachSuccessor(P(1), [&](ProcessId p) { succ.push_back(p); });
  EXPECT_EQ(succ, (std::vector<ProcessId>{P(2), P(3)}));
  std::vector<ProcessId> pred;
  g.ForEachPredecessor(P(3), [&](ProcessId p) { pred.push_back(p); });
  EXPECT_EQ(pred, (std::vector<ProcessId>{P(1), P(4)}));
}

TEST(SerializationGraphTest, AnyReachableSkipsOrigin) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(2), P(1));  // cycle back to the origin
  EXPECT_TRUE(g.AnyReachable(P(1), [](ProcessId p) { return p == P(2); }));
  // The origin itself is never offered to the predicate, even via a cycle.
  EXPECT_FALSE(g.AnyReachable(P(1), [](ProcessId p) { return p == P(1); }));
}

TEST(SerializationGraphTest, RemoveNodeDetachesEdgesAndRecyclesSlot) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(2), P(3));
  g.RemoveNode(P(2));
  EXPECT_FALSE(g.Contains(P(2)));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.Reaches(P(1), P(3)));
  EXPECT_FALSE(g.HasPredecessors(P(3)));
  // The freed slot is reused without disturbing the survivors.
  g.AddEdge(P(5), P(3));
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.Reaches(P(5), P(3)));
  EXPECT_TRUE(g.Reaches(P(1), P(1)));
}

TEST(SerializationGraphTest, CycleDetectionAndFindCycle) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.AddEdge(P(2), P(3));
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(P(3), P(1));
  EXPECT_TRUE(g.HasCycle());
  std::vector<ProcessId> cycle = g.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(SerializationGraphTest, TopologicalOrderRespectsEdges) {
  SerializationGraph g;
  g.AddEdge(P(3), P(1));
  g.AddEdge(P(1), P(2));
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  const std::vector<ProcessId>& o = *order;
  ASSERT_EQ(o.size(), 3u);
  auto index = [&](ProcessId p) {
    for (size_t i = 0; i < o.size(); ++i) {
      if (o[i] == p) return i;
    }
    return o.size();
  };
  EXPECT_LT(index(P(3)), index(P(1)));
  EXPECT_LT(index(P(1)), index(P(2)));
  g.AddEdge(P(2), P(3));
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(SerializationGraphTest, ClearResetsEverything) {
  SerializationGraph g;
  g.AddEdge(P(1), P(2));
  g.Clear();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.Contains(P(1)));
}

TEST(SerializationGraphTest, ManyQueriesReuseScratchAcrossGenerations) {
  // Exercises the generation-stamped marks: a long chain queried many times
  // must stay consistent as generations advance.
  SerializationGraph g;
  const int kN = 200;
  for (int i = 1; i < kN; ++i) g.AddEdge(P(i), P(i + 1));
  for (int q = 0; q < 1000; ++q) {
    EXPECT_TRUE(g.Reaches(P(1), P(kN)));
    EXPECT_FALSE(g.Reaches(P(kN), P(1)));
  }
}

}  // namespace
}  // namespace tpm
