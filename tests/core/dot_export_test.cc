#include "core/dot_export.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

TEST_F(DotExportTest, ProcessDotContainsAllActivitiesAndAlternatives) {
  std::string dot = ProcessToDot(world_.p1);
  EXPECT_NE(dot.find("digraph \"P1\""), std::string::npos);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_NE(dot.find("a" + std::to_string(i) + " [label="),
              std::string::npos);
  }
  EXPECT_NE(dot.find("alt 1"), std::string::npos);      // a12 -> a15
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // pivots
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // compensatables
}

TEST_F(DotExportTest, ScheduleDotHasRowsAndConflictArcs) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  std::string dot = ScheduleToDot(s, world_.spec);
  EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p2"), std::string::npos);
  // Three conflicting pairs are present in S_t2: (a11,a21) and (a12,a24).
  size_t arcs = 0;
  for (size_t pos = dot.find("color=red"); pos != std::string::npos;
       pos = dot.find("color=red", pos + 1)) {
    ++arcs;
  }
  EXPECT_EQ(arcs, 2u);
}

TEST_F(DotExportTest, ConflictGraphDotMarksCycles) {
  std::string acyclic =
      ConflictGraphToDot(figures::MakeScheduleSt2(world_), world_.spec);
  EXPECT_EQ(acyclic.find("NOT serializable"), std::string::npos);
  std::string cyclic =
      ConflictGraphToDot(figures::MakeSchedulePrimeT2(world_), world_.spec);
  EXPECT_NE(cyclic.find("NOT serializable"), std::string::npos);
  EXPECT_NE(cyclic.find("p1 -> p2"), std::string::npos);
  EXPECT_NE(cyclic.find("p2 -> p1"), std::string::npos);
}

}  // namespace
}  // namespace tpm
