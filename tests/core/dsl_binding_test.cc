#include "workload/dsl_binding.h"

#include <gtest/gtest.h>

#include "core/pred.h"

namespace tpm {
namespace {

constexpr char kWorld[] = R"(
process A
  activity x c service=1 comp=101
  activity p p service=2
  activity r r service=3
  edge x p
  edge p r
end
process B
  activity y c service=4 comp=104
  activity q p service=5
  edge y q
end
conflict 1 4
)";

TEST(DslBindingTest, RunsWorldEndToEnd) {
  auto world = ParseWorld(kWorld);
  ASSERT_TRUE(world.ok());
  auto bound = BoundWorld::Bind(world->get());
  ASSERT_TRUE(bound.ok()) << bound.status();
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE((*bound)->Attach(&scheduler).ok());
  auto pids = (*bound)->SubmitAll(&scheduler);
  ASSERT_TRUE(pids.ok());
  ASSERT_EQ(pids->size(), 2u);
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(pids->at("A")), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(pids->at("B")), ProcessOutcome::kCommitted);
  // Every service executed exactly once.
  for (int svc : {1, 2, 3, 4, 5}) {
    EXPECT_EQ((*bound)->ValueOf(ServiceId(svc)), 1) << "service " << svc;
  }
  // Declared conflicts were installed.
  EXPECT_TRUE(scheduler.conflict_spec().ServicesConflict(ServiceId(1),
                                                         ServiceId(4)));
}

TEST(DslBindingTest, InjectedFailureTriggersBackwardRecovery) {
  auto world = ParseWorld(kWorld);
  ASSERT_TRUE(world.ok());
  auto bound = BoundWorld::Bind(world->get());
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE((*bound)->InjectFailure("A", "p").ok());
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE((*bound)->Attach(&scheduler).ok());
  auto pids = (*bound)->SubmitAll(&scheduler);
  ASSERT_TRUE(pids.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(pids->at("A")), ProcessOutcome::kAborted);
  // A's x was compensated: its synthetic counter returned to zero.
  EXPECT_EQ((*bound)->ValueOf(ServiceId(1)), 0);
  EXPECT_EQ((*bound)->ValueOf(ServiceId(2)), 0);
  // B consumed conflicting data (y conflicts with x) after A's x, so A's
  // compensation cascade-aborted it first (§2.2) — its work is undone too.
  EXPECT_EQ(scheduler.OutcomeOf(pids->at("B")), ProcessOutcome::kAborted);
  EXPECT_EQ((*bound)->ValueOf(ServiceId(4)), 0);
  EXPECT_GE(scheduler.stats().cascading_aborts, 1);
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(DslBindingTest, FailureInjectionValidatesNames) {
  auto world = ParseWorld(kWorld);
  ASSERT_TRUE(world.ok());
  auto bound = BoundWorld::Bind(world->get());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE((*bound)->InjectFailure("Nope", "x").IsNotFound());
  EXPECT_TRUE((*bound)->InjectFailure("A", "nope").IsNotFound());
}

TEST(DslBindingTest, SharedCompensationServiceBindsOnce) {
  // Two activities sharing a compensation service id: binding must not
  // register it twice.
  auto world = ParseWorld(R"(
process P
  activity a c service=1 comp=100
  activity b c service=2 comp=100
  edge a b
end
)");
  ASSERT_TRUE(world.ok());
  auto bound = BoundWorld::Bind(world->get());
  ASSERT_TRUE(bound.ok()) << bound.status();
}

}  // namespace
}  // namespace tpm
