// Equivalence harness for the scheduler-core layering refactor: the golden
// fingerprints below were captured from the pre-refactor (seed) monolithic
// scheduler over a matrix of workloads x all admission protocols x both
// defer modes. The refactored scheduler (serialization_graph.cc /
// admission.cc / conflict interning) must emit bit-identical histories and
// SchedulerStats for every combination.
//
// Regenerating goldens (only when an INTENTIONAL behaviour change lands):
//   g++ -DTPM_GOLDEN_GENERATE -std=c++20 -O2 -Isrc \
//     tests/core/scheduler_refactor_equivalence_test.cc \
//     build/src/libtpm_workload.a build/src/libtpm_core.a \
//     build/src/libtpm_agent.a build/src/libtpm_subsystem.a \
//     build/src/libtpm_log.a build/src/libtpm_common.a -o /tmp/golden_gen
//   /tmp/golden_gen   # prints the kGolden table

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "common/fingerprint.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "workload/process_generator.h"

#ifndef TPM_GOLDEN_GENERATE
#include <gtest/gtest.h>
#endif

namespace tpm {
namespace {

struct Combo {
  const char* label;
  AdmissionProtocol protocol;
  DeferMode defer;
  bool quasi;
};

struct WorkloadSpec {
  const char* label;
  int pool;
  double failure;
  uint64_t seed;
  int64_t duration;        // 0 = no cost model
  int max_concurrent;      // 0 = unlimited
};

constexpr Combo kCombos[] = {
    {"pred/delay", AdmissionProtocol::kPred, DeferMode::kDelayExecution,
     false},
    {"pred/2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC, false},
    {"pred+qc/delay", AdmissionProtocol::kPred, DeferMode::kDelayExecution,
     true},
    {"pred+qc/2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC, true},
    {"serial/delay", AdmissionProtocol::kSerial, DeferMode::kDelayExecution,
     false},
    {"serial/2pc", AdmissionProtocol::kSerial, DeferMode::kPrepared2PC,
     false},
    {"2pl/delay", AdmissionProtocol::kTwoPhaseLocking,
     DeferMode::kDelayExecution, false},
    {"2pl/2pc", AdmissionProtocol::kTwoPhaseLocking, DeferMode::kPrepared2PC,
     false},
    {"unsafe/delay", AdmissionProtocol::kUnsafe, DeferMode::kDelayExecution,
     false},
    {"unsafe/2pc", AdmissionProtocol::kUnsafe, DeferMode::kPrepared2PC,
     false},
};

constexpr WorkloadSpec kWorkloads[] = {
    {"w0-low", 18, 0.0, 7, 0, 0},
    {"w1-mid-fail", 5, 0.05, 21, 0, 0},
    {"w2-extreme-fail", 3, 0.10, 99, 0, 0},
    {"w3-durations-throttled", 9, 0.0, 5, 3, 4},
};

std::string HexOf(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

// Runs the workload under the combo and fingerprints the emitted history
// (hashed) plus every SchedulerStats field (verbatim, for diagnosability).
std::string RunFingerprint(const WorkloadSpec& w, const Combo& c) {
  SyntheticUniverse universe(3, 6);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, w.failure);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 3;
  shape.nested_probability = 0.3;
  ProcessGenerator generator(&universe, shape, w.seed);
  generator.RestrictItems(0, static_cast<size_t>(w.pool));
  SchedulerOptions options;
  options.protocol = c.protocol;
  options.defer_mode = c.defer;
  options.quasi_commit_optimization = c.quasi;
  options.max_concurrent_processes = w.max_concurrent;
  if (w.duration > 0) {
    for (const auto& item : universe.items()) {
      options.service_durations[item.add] = w.duration;
      options.service_durations[item.sub] = w.duration;
    }
  }
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (int i = 0; i < 16; ++i) {
    auto def = generator.Generate(StrCat("e", i));
    if (!def.ok()) continue;
    auto pid = scheduler.Submit(*def);
    if (pid.ok()) in_flight[*pid] = *def;
  }
  std::string status = "OK";
  for (int round = 0; round < 4 && !in_flight.empty(); ++round) {
    Status run = scheduler.Run();
    if (!run.ok()) {
      std::ostringstream os;
      os << run;
      status = os.str();
      break;
    }
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 3) continue;
      auto retry = scheduler.Submit(def);
      if (retry.ok()) next[*retry] = def;
    }
    in_flight = std::move(next);
  }
  const SchedulerStats& s = scheduler.stats();
  std::ostringstream os;
  os << "h=" << HexOf(Fnv1a(scheduler.history().ToString()))
     << " steps=" << s.steps << " vt=" << s.virtual_time
     << " ac=" << s.activities_committed << " fi=" << s.failed_invocations
     << " comp=" << s.compensations << " def=" << s.deferrals
     << " bll=" << s.blocked_by_locks << " alt=" << s.alternatives_taken
     << " pc=" << s.processes_committed << " pa=" << s.processes_aborted
     << " dv=" << s.deadlock_victims << " pb=" << s.prepared_branches
     << " qca=" << s.quasi_commit_admissions << " ca=" << s.cascading_aborts
     << " ic=" << s.irrecoverable_cascades << " cw=" << s.commit_waits
     << " fe=" << s.forced_executions << " cv=" << s.certified_violations
     << " status=" << status;
  return os.str();
}

// --- Golden table (generated from the seed implementation; see header). ---
struct GoldenRow {
  const char* workload;
  const char* combo;
  const char* fingerprint;
};

constexpr GoldenRow kGolden[] = {
// clang-format off
#include "core/scheduler_refactor_golden.inc"
// clang-format on
};

}  // namespace
}  // namespace tpm

#ifdef TPM_GOLDEN_GENERATE
#include <iostream>
int main() {
  using namespace tpm;
  for (const WorkloadSpec& w : kWorkloads) {
    for (const Combo& c : kCombos) {
      std::cout << "{\"" << w.label << "\", \"" << c.label << "\",\n \""
                << RunFingerprint(w, c) << "\"},\n";
    }
  }
  return 0;
}
#else

namespace tpm {
namespace {

TEST(SchedulerRefactorEquivalence, MatchesSeedGoldens) {
  size_t i = 0;
  for (const WorkloadSpec& w : kWorkloads) {
    for (const Combo& c : kCombos) {
      ASSERT_LT(i, std::size(kGolden));
      const GoldenRow& row = kGolden[i++];
      ASSERT_STREQ(row.workload, w.label);
      ASSERT_STREQ(row.combo, c.label);
      EXPECT_EQ(RunFingerprint(w, c), row.fingerprint)
          << "history/stats diverged from the seed scheduler for workload "
          << w.label << ", combo " << c.label;
    }
  }
  EXPECT_EQ(i, std::size(kGolden));
}

}  // namespace
}  // namespace tpm

#endif  // TPM_GOLDEN_GENERATE
