#include "core/subprocess.h"

#include <gtest/gtest.h>

#include "core/flex_structure.h"

namespace tpm {
namespace {

ProcessDef AllCompensatable() {
  ProcessDef def("book");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId b = def.AddActivity("b", ActivityKind::kCompensatable,
                                 ServiceId(2), ServiceId(102));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.Validate().ok());
  return def;
}

ProcessDef AllRetriable() {
  ProcessDef def("notify");
  ActivityId a = def.AddActivity("a", ActivityKind::kRetriable, ServiceId(3));
  ActivityId b = def.AddActivity("b", ActivityKind::kRetriable, ServiceId(4));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.Validate().ok());
  return def;
}

ProcessDef WithPivot() {
  ProcessDef def("pay");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(5), ServiceId(105));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(6));
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(7));
  EXPECT_TRUE(def.AddEdge(a, p).ok());
  EXPECT_TRUE(def.AddEdge(p, r).ok());
  EXPECT_TRUE(def.Validate().ok());
  return def;
}

TEST(SubprocessGuaranteeTest, Classification) {
  ProcessDef comp = AllCompensatable();
  ProcessDef ret = AllRetriable();
  ProcessDef piv = WithPivot();
  EXPECT_EQ(*ClassifySubprocessGuarantee(comp),
            ActivityKind::kCompensatable);
  EXPECT_EQ(*ClassifySubprocessGuarantee(ret), ActivityKind::kRetriable);
  EXPECT_EQ(*ClassifySubprocessGuarantee(piv), ActivityKind::kPivot);

  ProcessDef cr("cr");
  ActivityId a = cr.AddActivity("a", ActivityKind::kCompensatableRetriable,
                                ServiceId(8), ServiceId(108));
  (void)a;
  ASSERT_TRUE(cr.Validate().ok());
  EXPECT_EQ(*ClassifySubprocessGuarantee(cr),
            ActivityKind::kCompensatableRetriable);
}

TEST(SubprocessGuaranteeTest, RejectsMalformedChild) {
  ProcessDef bad("bad");
  ActivityId r = bad.AddActivity("r", ActivityKind::kRetriable, ServiceId(1));
  ActivityId p = bad.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ASSERT_TRUE(bad.AddEdge(r, p).ok());
  ASSERT_TRUE(bad.Validate().ok());
  EXPECT_FALSE(ClassifySubprocessGuarantee(bad).ok());
}

class InlineTest : public ::testing::Test {
 protected:
  // Parent: c0 << slot(p) << r9, with an all-retriable alternative from
  // the slot... kept simple: c0 << slot << r9.
  ProcessDef MakeParent(ActivityKind slot_kind) {
    ProcessDef parent("parent");
    c0_ = parent.AddActivity("c0", ActivityKind::kCompensatable,
                             ServiceId(10), ServiceId(110));
    slot_ = parent.AddActivity(
        "sub", slot_kind, ServiceId(11),
        IsCompensatableKind(slot_kind) ? ServiceId(111) : ServiceId());
    r9_ = parent.AddActivity("r9", ActivityKind::kRetriable, ServiceId(12));
    EXPECT_TRUE(parent.AddEdge(c0_, slot_).ok());
    EXPECT_TRUE(parent.AddEdge(slot_, r9_).ok());
    EXPECT_TRUE(parent.Validate().ok());
    return parent;
  }
  ActivityId c0_, slot_, r9_;
};

TEST_F(InlineTest, InlinesPivotGuaranteeChild) {
  ProcessDef parent = MakeParent(ActivityKind::kPivot);
  ProcessDef child = WithPivot();
  auto inlined = InlineSubprocess(parent, slot_, child);
  ASSERT_TRUE(inlined.ok()) << inlined.status();
  // 2 parent activities + 3 child activities.
  EXPECT_EQ(inlined->num_activities(), 5u);
  EXPECT_TRUE(ValidateWellFormedFlex(*inlined).ok());
  // Child names are prefixed.
  bool found = false;
  for (const ActivityDecl& decl : inlined->activities()) {
    if (decl.name == "pay/p") found = true;
  }
  EXPECT_TRUE(found);
  // The state-determining activity of the flattened process is the child's
  // pivot (the parent prefix is compensatable).
  auto s = StateDeterminingActivity(*inlined);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(inlined->activity(*s).name, "pay/p");
}

TEST_F(InlineTest, InlinesCompensatableChildIntoPrefix) {
  // Parent where the slot sits in the compensatable prefix:
  // slot(c) << p << r.
  ProcessDef parent("parent");
  ActivityId slot = parent.AddActivity("sub", ActivityKind::kCompensatable,
                                       ServiceId(20), ServiceId(120));
  ActivityId p = parent.AddActivity("p", ActivityKind::kPivot, ServiceId(21));
  ActivityId r = parent.AddActivity("r", ActivityKind::kRetriable,
                                    ServiceId(22));
  ASSERT_TRUE(parent.AddEdge(slot, p).ok());
  ASSERT_TRUE(parent.AddEdge(p, r).ok());
  ASSERT_TRUE(parent.Validate().ok());

  ProcessDef child = AllCompensatable();
  auto inlined = InlineSubprocess(parent, slot, child);
  ASSERT_TRUE(inlined.ok()) << inlined.status();
  EXPECT_EQ(inlined->num_activities(), 4u);
  EXPECT_TRUE(ValidateWellFormedFlex(*inlined).ok());
}

TEST_F(InlineTest, InlinesRetriableChildIntoTail) {
  ProcessDef parent("parent");
  ActivityId c = parent.AddActivity("c", ActivityKind::kCompensatable,
                                    ServiceId(30), ServiceId(130));
  ActivityId p = parent.AddActivity("p", ActivityKind::kPivot, ServiceId(31));
  ActivityId slot = parent.AddActivity("sub", ActivityKind::kRetriable,
                                       ServiceId(32));
  ASSERT_TRUE(parent.AddEdge(c, p).ok());
  ASSERT_TRUE(parent.AddEdge(p, slot).ok());
  ASSERT_TRUE(parent.Validate().ok());

  ProcessDef child = AllRetriable();
  auto inlined = InlineSubprocess(parent, slot, child);
  ASSERT_TRUE(inlined.ok()) << inlined.status();
  EXPECT_TRUE(ValidateWellFormedFlex(*inlined).ok());
}

TEST_F(InlineTest, RejectsGuaranteeMismatch) {
  // Slot declared retriable, child only guarantees pivot.
  ProcessDef parent("parent");
  ActivityId c = parent.AddActivity("c", ActivityKind::kCompensatable,
                                    ServiceId(40), ServiceId(140));
  ActivityId slot = parent.AddActivity("sub", ActivityKind::kRetriable,
                                       ServiceId(41));
  ASSERT_TRUE(parent.AddEdge(c, slot).ok());
  ASSERT_TRUE(parent.Validate().ok());
  ProcessDef child = WithPivot();
  auto inlined = InlineSubprocess(parent, slot, child);
  EXPECT_TRUE(inlined.status().IsInvalidArgument());
}

TEST_F(InlineTest, RejectsUnknownSlot) {
  ProcessDef parent = MakeParent(ActivityKind::kPivot);
  ProcessDef child = WithPivot();
  EXPECT_TRUE(
      InlineSubprocess(parent, ActivityId(99), child).status().IsNotFound());
}

TEST_F(InlineTest, InlinedProcessExecutesLikeTheHierarchy) {
  // Enumerate executions: the flattened process has the composite failure
  // surface (parent's c0 + the child's compensatable and pivot).
  ProcessDef parent = MakeParent(ActivityKind::kPivot);
  ProcessDef child = WithPivot();
  auto inlined = InlineSubprocess(parent, slot_, child);
  ASSERT_TRUE(inlined.ok());
  auto executions = EnumerateValidExecutions(*inlined);
  ASSERT_TRUE(executions.ok());
  // Branch points: c0, pay/a, pay/p -> success + 2 backward recoveries
  // (c0 ok then pay/a fails; ... then pay/p fails).
  EXPECT_EQ(executions->size(), 3u);
}

}  // namespace
}  // namespace tpm
