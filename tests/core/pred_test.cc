#include "core/pred.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

class PredTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

// Example 8: S_t2 is RED but not PRED — its prefix S_t1 is not reducible.
TEST_F(PredTest, Example8St2IsRedButNotPred) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);

  auto pred = AnalyzePRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(pred->prefix_reducible);
  // The violation appears exactly when P2's pivot a23 commits while the
  // conflicting P1 is still backward-recoverable (event 4 = a23).
  EXPECT_EQ(pred->violating_prefix, 4u);
  EXPECT_FALSE(pred->cycle.empty());
  EXPECT_NE(pred->ToString().find("not PRED"), std::string::npos);
}

// Examples 7 and 9: the Figure 7 execution is PRED.
TEST_F(PredTest, Example9DoublePrimeIsPred) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  auto pred = AnalyzePRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred->prefix_reducible);
  EXPECT_EQ(pred->ToString(), "PRED");
}

// Example 10: the quasi-commit interleaving is PRED.
TEST_F(PredTest, Example10StarIsPred) {
  ProcessSchedule s = figures::MakeScheduleStar(world_);
  auto pred = IsPRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST_F(PredTest, StarReversedIsNotPred) {
  ProcessSchedule s = figures::MakeScheduleStarReversed(world_);
  auto pred = AnalyzePRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(pred->prefix_reducible);
  // The cycle appears once P1's pivot commits (event 3 = a12).
  EXPECT_EQ(pred->violating_prefix, 3u);
}

// The non-serializable Figure 4(b) schedule is also not PRED.
TEST_F(PredTest, NonSerializableIsNotPred) {
  ProcessSchedule s = figures::MakeSchedulePrimeT2(world_);
  auto pred = IsPRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(*pred);
}

// PRED is prefix closed by construction: every prefix of a PRED schedule
// is PRED.
TEST_F(PredTest, PredIsPrefixClosed) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  for (size_t n = 0; n <= s.size(); ++n) {
    auto pred = IsPRED(s.Prefix(n), world_.spec);
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(*pred) << "prefix " << n << " not PRED";
  }
}

// Empty schedules are trivially PRED.
TEST_F(PredTest, EmptyScheduleIsPred) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(figures::kP1, &world_.p1).ok());
  auto pred = IsPRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

}  // namespace
}  // namespace tpm
