#include "core/completed_schedule.h"

#include <gtest/gtest.h>

#include "core/figures.h"
#include "core/serializability.h"

namespace tpm {
namespace {

using figures::kP1;
using figures::kP2;
using figures::kP3;

class CompletedScheduleTest : public ::testing::Test {
 protected:
  static std::vector<std::string> Render(const ProcessSchedule& s) {
    std::vector<std::string> out;
    for (const auto& e : s.events()) out.push_back(e.ToString());
    return out;
  }
  figures::PaperWorld world_;
};

// Example 5: completing S_t2 adds {a13^-1, a15, a16} for P1 and {a25} for
// P2, compensations before forward steps (Figure 6a).
TEST_F(CompletedScheduleTest, Example5CompletesSt2) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(Render(*completed),
            (std::vector<std::string>{
                "a1_1", "a2_1", "a2_2", "a2_3", "a1_2", "a1_3", "a2_4",
                // group abort expansion:
                "a1_3^-1", "a1_5", "a1_6", "a2_5", "C1", "C2"}));
  // Figure 6(a): the completed schedule is serializable.
  EXPECT_TRUE(IsSerializable(*completed, world_.spec));
}

// Example 8: completing the prefix S_t1 produces the conflict cycle
// a11 << a21 << a11^-1 (Figure 8).
TEST_F(CompletedScheduleTest, Example8CompletesSt1WithCycle) {
  ProcessSchedule s = figures::MakeScheduleSt1(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(Render(*completed),
            (std::vector<std::string>{
                "a1_1", "a2_1", "a2_2", "a2_3",
                "a1_1^-1", "a2_4", "a2_5", "C1", "C2"}));
  // The completion makes the schedule non-serializable: a11 < a21 < a11^-1.
  EXPECT_FALSE(IsSerializable(*completed, world_.spec));
}

// All processes committed: completion changes nothing.
TEST_F(CompletedScheduleTest, CommittedScheduleUnchanged) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(Render(*completed), Render(s));
}

// An individual abort event is replaced by the completion followed by C_i
// (Def. 8 2c).
TEST_F(CompletedScheduleTest, IndividualAbortExpandsInPlace) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Abort(kP1)).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  // a11^-1 and C1 appear *before* a21 (Def. 8 3e), then P2's group abort.
  EXPECT_EQ(Render(*completed),
            (std::vector<std::string>{"a1_1", "a1_1^-1", "C1", "a2_1",
                                      "a2_1^-1", "C2"}));
}

// Lemma 2: compensations of several processes appear in reverse order of
// their originals.
TEST_F(CompletedScheduleTest, GroupAbortCompensatesInReverseGlobalOrder) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(Render(*completed),
            (std::vector<std::string>{"a1_1", "a2_1", "a2_1^-1", "a1_1^-1",
                                      "C1", "C2"}));
}

// Lemma 3: compensations precede forward recovery steps of other
// completions.
TEST_F(CompletedScheduleTest, BackwardStepsPrecedeForwardSteps) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  size_t last_backward = 0, first_forward = SIZE_MAX;
  const auto& events = completed->events();
  for (size_t i = 7; i < events.size(); ++i) {  // completion region
    if (events[i].type != EventType::kActivity) continue;
    if (events[i].act.inverse) {
      last_backward = i;
    } else {
      first_forward = std::min(first_forward, i);
    }
  }
  EXPECT_LT(last_backward, first_forward);
}

// Figure 9: completing S* cancels P3 cleanly (quasi-commit of P1).
TEST_F(CompletedScheduleTest, Example10StarCompletes) {
  ProcessSchedule s = figures::MakeScheduleStar(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(Render(*completed),
            (std::vector<std::string>{"a1_1", "a1_2", "a3_1", "a3_1^-1",
                                      "a1_5", "a1_6", "C1", "C3"}));
}

TEST_F(CompletedScheduleTest, CompletionIsIdempotentOnCompleted) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto once = CompleteSchedule(s);
  ASSERT_TRUE(once.ok());
  auto twice = CompleteSchedule(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Render(*once), Render(*twice));
}

}  // namespace
}  // namespace tpm
