#include "core/process_dsl.h"

#include <gtest/gtest.h>

#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/serializability.h"

namespace tpm {
namespace {

constexpr char kPaperWorld[] = R"(
# P1 of Figure 2 and P2 of Figure 4.
process P1
  activity a1 c service=11 comp=111
  activity a2 p service=12
  activity a3 c service=13 comp=113
  activity a4 p service=14
  activity a5 r service=15
  activity a6 r service=16
  edge a1 a2
  edge a2 a3
  edge a2 a5 alt=1
  edge a3 a4
  edge a5 a6
end

process P2
  activity a1 c service=21 comp=121
  activity a2 c service=22 comp=122
  activity a3 p service=23
  activity a4 r service=24
  activity a5 r service=25
  edge a1 a2
  edge a2 a3
  edge a3 a4
  edge a4 a5
end

conflict 11 21
conflict 12 24
conflict 15 25

schedule P1.a1 P2.a1 P2.a2 P2.a3 P1.a2 P1.a3 P2.a4
)";

TEST(ProcessDslTest, ParsesThePaperWorld) {
  auto world = ParseWorld(kPaperWorld);
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ((*world)->defs.size(), 2u);
  const ProcessDef* p1 = (*world)->def_by_name.at("P1");
  EXPECT_EQ(p1->num_activities(), 6u);
  EXPECT_TRUE(ValidateWellFormedFlex(*p1).ok());
  EXPECT_EQ((*world)->spec.num_conflict_pairs(), 3u);
  ASSERT_TRUE((*world)->has_schedule);
  EXPECT_EQ((*world)->schedule.size(), 7u);

  // The parsed schedule is S_t2: serializable, RED, not PRED (Example 8).
  EXPECT_TRUE(IsSerializable((*world)->schedule, (*world)->spec));
  auto pred = IsPRED((*world)->schedule, (*world)->spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(*pred);
}

TEST(ProcessDslTest, ScheduleTokensWithModifiers) {
  auto world = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule P.x P.y! P.x^-1 AP
)");
  ASSERT_TRUE(world.ok()) << world.status();
  const auto& events = (*world)->schedule.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_FALSE(events[0].act.inverse);
  EXPECT_TRUE(events[1].aborted_invocation);
  EXPECT_TRUE(events[2].act.inverse);
  EXPECT_EQ(events[3].type, EventType::kAbort);
}

TEST(ProcessDslTest, GroupAbortToken) {
  auto world = ParseWorld(R"(
process A
  activity x r service=1
end
process B
  activity y r service=2
end
schedule A.x B.y GA(A,B)
)");
  ASSERT_TRUE(world.ok()) << world.status();
  const auto& events = (*world)->schedule.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].type, EventType::kGroupAbort);
  EXPECT_EQ(events[2].group.size(), 2u);
}

TEST(ProcessDslTest, LegalityEnforcedUnlessBang) {
  // y before its predecessor x: rejected...
  auto strict = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule P.y
)");
  EXPECT_FALSE(strict.ok());
  // ...unless the schedule line opts out.
  auto lenient = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule! P.y
)");
  EXPECT_TRUE(lenient.ok()) << lenient.status();
}

TEST(ProcessDslTest, Errors) {
  EXPECT_FALSE(ParseWorld("bogus line").ok());
  EXPECT_FALSE(ParseWorld("process P\nactivity a q service=1\nend").ok());
  EXPECT_FALSE(ParseWorld("process P\nactivity a c service=x comp=2\nend").ok());
  EXPECT_FALSE(ParseWorld("process P").ok());           // unterminated
  EXPECT_FALSE(ParseWorld("end").ok());                 // stray end
  EXPECT_FALSE(ParseWorld("edge a b").ok());            // outside process
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\nschedule Q.a").ok());
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\nschedule P.zz").ok());
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nactivity a r service=2\nend").ok());
  EXPECT_FALSE(ParseWorld("conflict 1").ok());
  // Duplicate process name.
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\n"
      "process P\nactivity a r service=2\nend").ok());
}

TEST(ProcessDslTest, OpTableKeywordsBuildTheSpec) {
  auto world = ParseWorld(R"(
op esc.inc
op esc.dec
op esc.withdraw
inverse esc.inc esc.dec
commute esc.inc esc.inc
commute esc.inc esc.withdraw
bind 1 esc.inc
bind 101 esc.dec
bind 2 esc.withdraw

process A
  activity x c service=1 comp=101
end
process B
  activity y p service=2
end
conflict 1 2
conflict 1 1
conflict 101 2
)");
  ASSERT_TRUE(world.ok()) << world.status();
  ConflictSpec& spec = (*world)->spec;

  const int inc = spec.OpKindIndexOf("esc.inc");
  const int dec = spec.OpKindIndexOf("esc.dec");
  const int wd = spec.OpKindIndexOf("esc.withdraw");
  ASSERT_GE(inc, 0);
  ASSERT_GE(dec, 0);
  ASSERT_GE(wd, 0);
  EXPECT_EQ(spec.InverseOf(inc), dec);
  EXPECT_EQ(spec.OpOf(ServiceId(1)), inc);
  EXPECT_EQ(spec.OpOf(ServiceId(101)), dec);
  // Perfect-closure: dec inherited inc's commuting pairs.
  EXPECT_TRUE(spec.OpsCommute(dec, wd));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());

  // The declared service conflicts are downgraded by the bound ops...
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(1)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(101), ServiceId(2)));
  // ...but only while the layer is enabled.
  spec.set_op_commutativity_enabled(false);
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
}

TEST(ProcessDslTest, OpKeywordErrorsCarryLineNumbers) {
  // Duplicate op name (the duplicate is on line 3 — line 1 is the leading
  // newline of the raw string).
  auto dup = ParseWorld("\nop a\nop a\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().ToString().find("line 3"), std::string::npos)
      << dup.status().ToString();
  EXPECT_NE(dup.status().ToString().find("duplicate op a"), std::string::npos);

  // commute/inverse/bind referencing an undeclared op.
  auto unknown_commute = ParseWorld("op a\ncommute a b\n");
  ASSERT_FALSE(unknown_commute.ok());
  EXPECT_NE(unknown_commute.status().ToString().find("line 2"),
            std::string::npos);
  EXPECT_NE(unknown_commute.status().ToString().find("unknown op b"),
            std::string::npos);
  EXPECT_FALSE(ParseWorld("op a\ninverse b a\n").ok());
  EXPECT_FALSE(ParseWorld("bind 1 a\n").ok());

  // Rebinding an inverse pairing is rejected, not silently overwritten.
  auto rebind = ParseWorld("op a\nop b\nop c\ninverse a b\ninverse a c\n");
  ASSERT_FALSE(rebind.ok());
  EXPECT_NE(rebind.status().ToString().find("line 5"), std::string::npos);
  EXPECT_NE(rebind.status().ToString().find("already has inverse b"),
            std::string::npos) << rebind.status().ToString();

  // Usage errors.
  EXPECT_FALSE(ParseWorld("op\n").ok());
  EXPECT_FALSE(ParseWorld("op a b\n").ok());
  EXPECT_FALSE(ParseWorld("op a\ncommute a\n").ok());
  EXPECT_FALSE(ParseWorld("op a\nbind 1\n").ok());
  EXPECT_FALSE(ParseWorld("op a\nbind x a\n").ok());
}

TEST(ProcessDslTest, BindToUnusedServiceIsRejectedWithItsLine) {
  // The bind on line 2 names service 7, which no activity references.
  auto world = ParseWorld(R"(op a
bind 7 a
process P
  activity x r service=1
end
)");
  ASSERT_FALSE(world.ok());
  EXPECT_NE(world.status().ToString().find("line 2"), std::string::npos)
      << world.status().ToString();
  EXPECT_NE(world.status().ToString().find("service no activity uses"),
            std::string::npos);
}

TEST(ProcessDslTest, BindMayPrecedeTheActivityUsingTheService) {
  // Comp services count as used, and binds resolve even when declared
  // before the process body.
  auto world = ParseWorld(R"(op a
commute a a
bind 101 a
process P
  activity x c service=1 comp=101
end
)");
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_GE((*world)->spec.OpOf(ServiceId(101)), 0);
}

TEST(ProcessDslTest, CommentsAndBlankLinesIgnored) {
  auto world = ParseWorld(R"(
# a comment line
process P   # trailing comment
  activity a r service=1

end
)");
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ((*world)->defs.size(), 1u);
}

}  // namespace
}  // namespace tpm
