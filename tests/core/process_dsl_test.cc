#include "core/process_dsl.h"

#include <gtest/gtest.h>

#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/serializability.h"

namespace tpm {
namespace {

constexpr char kPaperWorld[] = R"(
# P1 of Figure 2 and P2 of Figure 4.
process P1
  activity a1 c service=11 comp=111
  activity a2 p service=12
  activity a3 c service=13 comp=113
  activity a4 p service=14
  activity a5 r service=15
  activity a6 r service=16
  edge a1 a2
  edge a2 a3
  edge a2 a5 alt=1
  edge a3 a4
  edge a5 a6
end

process P2
  activity a1 c service=21 comp=121
  activity a2 c service=22 comp=122
  activity a3 p service=23
  activity a4 r service=24
  activity a5 r service=25
  edge a1 a2
  edge a2 a3
  edge a3 a4
  edge a4 a5
end

conflict 11 21
conflict 12 24
conflict 15 25

schedule P1.a1 P2.a1 P2.a2 P2.a3 P1.a2 P1.a3 P2.a4
)";

TEST(ProcessDslTest, ParsesThePaperWorld) {
  auto world = ParseWorld(kPaperWorld);
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ((*world)->defs.size(), 2u);
  const ProcessDef* p1 = (*world)->def_by_name.at("P1");
  EXPECT_EQ(p1->num_activities(), 6u);
  EXPECT_TRUE(ValidateWellFormedFlex(*p1).ok());
  EXPECT_EQ((*world)->spec.num_conflict_pairs(), 3u);
  ASSERT_TRUE((*world)->has_schedule);
  EXPECT_EQ((*world)->schedule.size(), 7u);

  // The parsed schedule is S_t2: serializable, RED, not PRED (Example 8).
  EXPECT_TRUE(IsSerializable((*world)->schedule, (*world)->spec));
  auto pred = IsPRED((*world)->schedule, (*world)->spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(*pred);
}

TEST(ProcessDslTest, ScheduleTokensWithModifiers) {
  auto world = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule P.x P.y! P.x^-1 AP
)");
  ASSERT_TRUE(world.ok()) << world.status();
  const auto& events = (*world)->schedule.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_FALSE(events[0].act.inverse);
  EXPECT_TRUE(events[1].aborted_invocation);
  EXPECT_TRUE(events[2].act.inverse);
  EXPECT_EQ(events[3].type, EventType::kAbort);
}

TEST(ProcessDslTest, GroupAbortToken) {
  auto world = ParseWorld(R"(
process A
  activity x r service=1
end
process B
  activity y r service=2
end
schedule A.x B.y GA(A,B)
)");
  ASSERT_TRUE(world.ok()) << world.status();
  const auto& events = (*world)->schedule.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].type, EventType::kGroupAbort);
  EXPECT_EQ(events[2].group.size(), 2u);
}

TEST(ProcessDslTest, LegalityEnforcedUnlessBang) {
  // y before its predecessor x: rejected...
  auto strict = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule P.y
)");
  EXPECT_FALSE(strict.ok());
  // ...unless the schedule line opts out.
  auto lenient = ParseWorld(R"(
process P
  activity x c service=1 comp=2
  activity y p service=3
  edge x y
end
schedule! P.y
)");
  EXPECT_TRUE(lenient.ok()) << lenient.status();
}

TEST(ProcessDslTest, Errors) {
  EXPECT_FALSE(ParseWorld("bogus line").ok());
  EXPECT_FALSE(ParseWorld("process P\nactivity a q service=1\nend").ok());
  EXPECT_FALSE(ParseWorld("process P\nactivity a c service=x comp=2\nend").ok());
  EXPECT_FALSE(ParseWorld("process P").ok());           // unterminated
  EXPECT_FALSE(ParseWorld("end").ok());                 // stray end
  EXPECT_FALSE(ParseWorld("edge a b").ok());            // outside process
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\nschedule Q.a").ok());
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\nschedule P.zz").ok());
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nactivity a r service=2\nend").ok());
  EXPECT_FALSE(ParseWorld("conflict 1").ok());
  // Duplicate process name.
  EXPECT_FALSE(ParseWorld(
      "process P\nactivity a r service=1\nend\n"
      "process P\nactivity a r service=2\nend").ok());
}

TEST(ProcessDslTest, CommentsAndBlankLinesIgnored) {
  auto world = ParseWorld(R"(
# a comment line
process P   # trailing comment
  activity a r service=1

end
)");
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ((*world)->defs.size(), 1u);
}

}  // namespace
}  // namespace tpm
