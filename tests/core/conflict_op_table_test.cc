// The operation-level commutativity layer of ConflictSpec (§3.2 semantic
// conflicts): interned op kinds, the symmetric commuting table closed under
// compensation pairing (perfect commutativity, Def. 2), service bindings
// that downgrade service-level conflicts, and the ablation toggle.

#include <gtest/gtest.h>

#include "core/conflict.h"

namespace tpm {
namespace {

TEST(ConflictOpTable, RegisterOpKindInternsIdempotently) {
  ConflictSpec spec;
  const int inc = spec.RegisterOpKind("escrow.inc");
  const int dec = spec.RegisterOpKind("escrow.dec");
  EXPECT_NE(inc, dec);
  EXPECT_EQ(spec.RegisterOpKind("escrow.inc"), inc);
  EXPECT_EQ(spec.NumOpKinds(), 2u);
  EXPECT_EQ(spec.OpKindIndexOf("escrow.dec"), dec);
  EXPECT_EQ(spec.OpKindIndexOf("never.registered"), -1);
  EXPECT_EQ(spec.OpKindName(inc), "escrow.inc");
}

TEST(ConflictOpTable, BindOpAssociatesServiceWithKind) {
  ConflictSpec spec;
  const int inc = spec.RegisterOpKind("escrow.inc");
  EXPECT_EQ(spec.OpOf(ServiceId(1)), -1);  // unbound (and uninterned)
  spec.BindOp(ServiceId(1), inc);
  EXPECT_EQ(spec.OpOf(ServiceId(1)), inc);
  // Rebinding overwrites.
  const int deq = spec.RegisterOpKind("queue.deq");
  spec.BindOp(ServiceId(1), deq);
  EXPECT_EQ(spec.OpOf(ServiceId(1)), deq);
}

TEST(ConflictOpTable, AddCommutingOpsIsSymmetric) {
  ConflictSpec spec;
  const int a = spec.RegisterOpKind("a");
  const int b = spec.RegisterOpKind("b");
  EXPECT_FALSE(spec.OpsCommute(a, b));
  spec.AddCommutingOps(a, b);
  EXPECT_TRUE(spec.OpsCommute(a, b));
  EXPECT_TRUE(spec.OpsCommute(b, a));
  EXPECT_FALSE(spec.OpsCommute(a, a));  // self-commuting must be declared
  spec.AddCommutingOps(a, a);
  EXPECT_TRUE(spec.OpsCommute(a, a));
}

TEST(ConflictOpTable, SetInverseOpIsMutual) {
  ConflictSpec spec;
  const int inc = spec.RegisterOpKind("inc");
  const int dec = spec.RegisterOpKind("dec");
  EXPECT_EQ(spec.InverseOf(inc), -1);
  spec.SetInverseOp(inc, dec);
  EXPECT_EQ(spec.InverseOf(inc), dec);
  EXPECT_EQ(spec.InverseOf(dec), inc);
}

// Declaring (inc, inc) commuting with inc^-1 = dec must close the table
// over the pairing: (inc, dec) and (dec, dec) commute too (Def. 2 requires
// the compensation to commute wherever its forward op does).
TEST(ConflictOpTable, CommutingTableClosesUnderInversePairing) {
  ConflictSpec spec;
  const int inc = spec.RegisterOpKind("inc");
  const int dec = spec.RegisterOpKind("dec");
  spec.SetInverseOp(inc, dec);
  spec.AddCommutingOps(inc, inc);
  EXPECT_TRUE(spec.OpsCommute(inc, dec));
  EXPECT_TRUE(spec.OpsCommute(dec, inc));
  EXPECT_TRUE(spec.OpsCommute(dec, dec));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());
}

// The closure also re-runs when the inverse arrives AFTER the commuting
// declaration — declaration order must not matter.
TEST(ConflictOpTable, ClosureAppliesToInversesRegisteredLater) {
  ConflictSpec spec;
  const int enq = spec.RegisterOpKind("enq");
  const int rm = spec.RegisterOpKind("rm");
  spec.AddCommutingOps(enq, enq);
  EXPECT_FALSE(spec.OpsCommute(enq, rm));
  spec.SetInverseOp(enq, rm);
  EXPECT_TRUE(spec.OpsCommute(enq, rm));
  EXPECT_TRUE(spec.OpsCommute(rm, rm));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());
}

TEST(ConflictOpTable, ClosureChainsAcrossPairings) {
  // a commutes with b; a^-1 = c; b^-1 = d. The fixpoint must reach all
  // four combinations.
  ConflictSpec spec;
  const int a = spec.RegisterOpKind("a");
  const int b = spec.RegisterOpKind("b");
  const int c = spec.RegisterOpKind("c");
  const int d = spec.RegisterOpKind("d");
  spec.SetInverseOp(a, c);
  spec.SetInverseOp(b, d);
  spec.AddCommutingOps(a, b);
  EXPECT_TRUE(spec.OpsCommute(c, b));
  EXPECT_TRUE(spec.OpsCommute(a, d));
  EXPECT_TRUE(spec.OpsCommute(c, d));
  EXPECT_TRUE(spec.VerifyOpTableClosure().ok());
  const auto pairs = spec.CommutingOpPairs();
  EXPECT_EQ(pairs.size(), 4u);  // (a,b) (a,d) (b,c) (c,d), normalized
}

TEST(ConflictOpTable, CommutingPairDowngradesServiceConflict) {
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  spec.AddConflict(ServiceId(1), ServiceId(1));
  ASSERT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  const int inc = spec.RegisterOpKind("inc");
  spec.AddCommutingOps(inc, inc);
  spec.BindOp(ServiceId(1), inc);
  spec.BindOp(ServiceId(2), inc);
  // Both the cross-service pair and the self-conflict downgrade.
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(1)));
  // The raw service-level relation is untouched.
  EXPECT_EQ(spec.num_conflict_pairs(), 2u);
  EXPECT_EQ(spec.ConflictPairs().size(), 2u);
}

TEST(ConflictOpTable, UnboundServiceKeepsItsConflicts) {
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  const int inc = spec.RegisterOpKind("inc");
  spec.AddCommutingOps(inc, inc);
  spec.BindOp(ServiceId(1), inc);
  // ServiceId(2) has no op kind: the pair stays conservative.
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
}

TEST(ConflictOpTable, OpLayerOnlyRemovesConflicts) {
  // Commuting ops on services that never conflicted at service level must
  // not create a conflict.
  ConflictSpec spec;
  spec.RegisterService(ServiceId(1));
  spec.RegisterService(ServiceId(2));
  const int a = spec.RegisterOpKind("a");
  const int b = spec.RegisterOpKind("b");
  spec.AddCommutingOps(a, b);
  spec.BindOp(ServiceId(1), a);
  spec.BindOp(ServiceId(2), b);
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
}

TEST(ConflictOpTable, DisablingTheLayerRestoresReadWriteRelation) {
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  const int inc = spec.RegisterOpKind("inc");
  spec.AddCommutingOps(inc, inc);
  spec.BindOp(ServiceId(1), inc);
  spec.BindOp(ServiceId(2), inc);
  ASSERT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  spec.set_op_commutativity_enabled(false);
  EXPECT_FALSE(spec.op_commutativity_enabled());
  EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
  spec.set_op_commutativity_enabled(true);
  EXPECT_FALSE(spec.ServicesConflict(ServiceId(1), ServiceId(2)));
}

TEST(ConflictOpTable, PartnersOfTracksTheEffectiveRelation) {
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  spec.AddConflict(ServiceId(1), ServiceId(3));
  const int inc = spec.RegisterOpKind("inc");
  spec.AddCommutingOps(inc, inc);
  spec.BindOp(ServiceId(1), inc);
  spec.BindOp(ServiceId(2), inc);

  // The (1,2) pair is downgraded; (1,3) survives.
  const std::vector<ServiceId>& partners = spec.PartnersOf(ServiceId(1));
  ASSERT_EQ(partners.size(), 1u);
  EXPECT_EQ(partners[0], ServiceId(3));

  // PartnersOf must agree with ServicesConflict after a toggle, too.
  spec.set_op_commutativity_enabled(false);
  EXPECT_EQ(spec.PartnersOf(ServiceId(1)).size(), 2u);
  for (ServiceId partner : spec.PartnersOf(ServiceId(1))) {
    EXPECT_TRUE(spec.ServicesConflict(ServiceId(1), partner));
  }
}

TEST(ConflictOpTable, InverseFlagOfInstancesStaysIgnored) {
  // Perfect commutativity at the instance level: a^-1 conflicts exactly
  // where a does, independent of the op table.
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  const int inc = spec.RegisterOpKind("inc");
  spec.AddCommutingOps(inc, inc);
  spec.BindOp(ServiceId(1), inc);
  spec.BindOp(ServiceId(2), inc);
  // The spec exposes service-granular tests only; the instance inverse
  // flag never reaches ServicesConflict. Equality of the two directions
  // is the observable contract here.
  EXPECT_EQ(spec.ServicesConflict(ServiceId(1), ServiceId(2)),
            spec.ServicesConflict(ServiceId(2), ServiceId(1)));
}

}  // namespace
}  // namespace tpm
