#include "core/execution_state.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

class ExecutionStateTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

TEST_F(ExecutionStateTest, FreshStateIsActiveAndBRec) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  EXPECT_TRUE(state.IsActive());
  EXPECT_EQ(state.recovery_state(), RecoveryState::kBackwardRecoverable);
  EXPECT_TRUE(state.EffectiveCommitted().empty());
  EXPECT_TRUE(state.LastStateDetermining().status().IsNotFound());
}

TEST_F(ExecutionStateTest, CommitTracksOrder) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  EXPECT_EQ(state.EffectiveCommitted(),
            (std::vector<ActivityId>{ActivityId(1), ActivityId(2)}));
  EXPECT_TRUE(state.IsCommitted(ActivityId(1)));
  EXPECT_FALSE(state.IsCommitted(ActivityId(3)));
}

TEST_F(ExecutionStateTest, PivotCommitMovesToFRec) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  EXPECT_EQ(state.recovery_state(), RecoveryState::kBackwardRecoverable);
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());  // a12^p
  EXPECT_EQ(state.recovery_state(), RecoveryState::kForwardRecoverable);
  auto last = state.LastStateDetermining();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, ActivityId(2));
}

TEST_F(ExecutionStateTest, DuplicateCommitRejected) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  EXPECT_EQ(state.RecordCommit(ActivityId(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ExecutionStateTest, UnknownActivityRejected) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  EXPECT_TRUE(state.RecordCommit(ActivityId(99)).IsNotFound());
}

TEST_F(ExecutionStateTest, CompensationRemovesEffect) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(3)).ok());
  ASSERT_TRUE(state.RecordCompensation(ActivityId(3)).ok());
  EXPECT_TRUE(state.IsCompensated(ActivityId(3)));
  EXPECT_EQ(state.EffectiveCommitted(),
            (std::vector<ActivityId>{ActivityId(1), ActivityId(2)}));
}

TEST_F(ExecutionStateTest, CompensationRequiresCommit) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  EXPECT_TRUE(state.RecordCompensation(ActivityId(1)).IsFailedPrecondition());
}

TEST_F(ExecutionStateTest, CompensationRejectsNonCompensatable) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());  // pivot
  EXPECT_TRUE(state.RecordCompensation(ActivityId(2)).IsInvalidArgument());
}

TEST_F(ExecutionStateTest, ReExecutionAfterCompensation) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCompensation(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  EXPECT_FALSE(state.IsCompensated(ActivityId(1)));
  EXPECT_EQ(state.EffectiveCommitted(),
            (std::vector<ActivityId>{ActivityId(1)}));
}

TEST_F(ExecutionStateTest, TerminalEvents) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  state.RecordCommitProcess();
  EXPECT_EQ(state.outcome(), ProcessOutcome::kCommitted);
  ProcessExecutionState state2(ProcessId(2), &world_.p2);
  state2.RecordAbortProcess();
  EXPECT_EQ(state2.outcome(), ProcessOutcome::kAborted);
}

}  // namespace
}  // namespace tpm
