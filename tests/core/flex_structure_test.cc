#include "core/flex_structure.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

// c1 -> p -> r1 -> r2: the basic well-formed flex structure.
ProcessDef BasicFlex() {
  ProcessDef def("basic");
  ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ActivityId r1 = def.AddActivity("r1", ActivityKind::kRetriable,
                                  ServiceId(3));
  ActivityId r2 = def.AddActivity("r2", ActivityKind::kRetriable,
                                  ServiceId(4));
  EXPECT_TRUE(def.AddEdge(c, p).ok());
  EXPECT_TRUE(def.AddEdge(p, r1).ok());
  EXPECT_TRUE(def.AddEdge(r1, r2).ok());
  EXPECT_TRUE(def.Validate().ok());
  return def;
}

TEST(FlexValidatorTest, BasicStructureIsWellFormed) {
  ProcessDef def = BasicFlex();
  EXPECT_TRUE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, PaperProcessesAreWellFormed) {
  figures::PaperWorld world;
  EXPECT_TRUE(ValidateWellFormedFlex(world.p1).ok());
  EXPECT_TRUE(ValidateWellFormedFlex(world.p2).ok());
  EXPECT_TRUE(ValidateWellFormedFlex(world.p3).ok());
}

TEST(FlexValidatorTest, PureCompensatableIsWellFormed) {
  ProcessDef def("pure");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId b = def.AddActivity("b", ActivityKind::kCompensatable,
                                 ServiceId(2), ServiceId(102));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_TRUE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, PureRetriableIsWellFormed) {
  ProcessDef def("retries");
  ActivityId a = def.AddActivity("a", ActivityKind::kRetriable, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kRetriable, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_TRUE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, RejectsPivotAfterRetriable) {
  ProcessDef def("bad");
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(1));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(r, p).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, RejectsCompensatableAfterPivotWithoutAlternative) {
  // p followed by c: if c's continuation fails there is no way to terminate.
  ProcessDef def("bad");
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(1));
  ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                 ServiceId(2), ServiceId(102));
  EXPECT_TRUE(def.AddEdge(p, c).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, RejectsTwoParallelPivots) {
  ProcessDef def("bad");
  ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId p1 = def.AddActivity("p1", ActivityKind::kPivot, ServiceId(2));
  ActivityId p2 = def.AddActivity("p2", ActivityKind::kPivot, ServiceId(3));
  EXPECT_TRUE(def.AddEdge(c, p1).ok());
  EXPECT_TRUE(def.AddEdge(c, p2).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, RejectsAlternativeLeavingCompensatable) {
  ProcessDef def("bad");
  ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(3));
  EXPECT_TRUE(def.AddEdge(c, p, 0).ok());
  EXPECT_TRUE(def.AddEdge(c, r, 1).ok());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(ValidateWellFormedFlex(def).ok());
}

TEST(FlexValidatorTest, RejectsNonRetriableLastAlternative) {
  ProcessDef def("bad");
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(1));
  ActivityId c1 = def.AddActivity("c1", ActivityKind::kCompensatable,
                                  ServiceId(2), ServiceId(102));
  ActivityId p1 = def.AddActivity("p1", ActivityKind::kPivot, ServiceId(3));
  ActivityId c2 = def.AddActivity("c2", ActivityKind::kCompensatable,
                                  ServiceId(4), ServiceId(104));
  EXPECT_TRUE(def.AddEdge(p, c1, 0).ok());
  EXPECT_TRUE(def.AddEdge(c1, p1, 0).ok());
  EXPECT_TRUE(def.AddEdge(p, c2, 1).ok());  // last alternative not retriable
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_FALSE(ValidateWellFormedFlex(def).ok());
}

TEST(StateDeterminingTest, FindsFirstNonCompensatable) {
  figures::PaperWorld world;
  auto s = StateDeterminingActivity(world.p1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, ActivityId(2));  // a12^p (Example 2)
  auto s2 = StateDeterminingActivity(world.p2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, ActivityId(3));  // a23^p
}

TEST(StateDeterminingTest, PureCompensatableHasNone) {
  ProcessDef def("pure");
  def.AddActivity("a", ActivityKind::kCompensatable, ServiceId(1),
                  ServiceId(101));
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_TRUE(StateDeterminingActivity(def).status().IsNotFound());
}

// --- Example 1 / Figure 3: the four valid executions of P1. ---

TEST(EnumerateExecutionsTest, P1HasExactlyFourValidExecutions) {
  figures::PaperWorld world;
  auto executions = EnumerateValidExecutions(world.p1);
  ASSERT_TRUE(executions.ok());
  EXPECT_EQ(executions->size(), 4u);

  int committing = 0, backward = 0;
  for (const auto& exec : *executions) {
    if (exec.committed) {
      ++committing;
    } else {
      ++backward;
    }
  }
  // Three committing variants (success; a13 fails -> alternative; a14 fails
  // -> compensate a13, alternative) and one backward recovery (the pivot
  // a12 fails after a11 committed).
  EXPECT_EQ(committing, 3);
  EXPECT_EQ(backward, 1);
}

TEST(EnumerateExecutionsTest, P1ExecutionShapes) {
  figures::PaperWorld world;
  auto executions = EnumerateValidExecutions(world.p1);
  ASSERT_TRUE(executions.ok());
  std::set<std::string> rendered;
  for (const auto& exec : *executions) rendered.insert(exec.ToString());
  // The all-success path.
  EXPECT_TRUE(rendered.count("<a1 a2 a3 a4> [commit]") == 1)
      << "have: " << *rendered.begin();
  // a13 fails -> alternative a15 a16.
  EXPECT_EQ(rendered.count("<a1 a2 a3(abort) a5 a6> [commit]"), 1u);
  // a14 fails -> compensate a13 -> alternative.
  EXPECT_EQ(rendered.count("<a1 a2 a3 a4(abort) a3^-1 a5 a6> [commit]"), 1u);
  // pivot a12 fails -> backward recovery of a11.
  EXPECT_EQ(rendered.count("<a1 a2(abort) a1^-1> [backward recovery]"), 1u);
}

TEST(EnumerateExecutionsTest, LinearProcessHasSuccessAndFailures) {
  ProcessDef def = BasicFlex();
  auto executions = EnumerateValidExecutions(def);
  ASSERT_TRUE(executions.ok());
  // c fails -> nothing executed (not counted); p fails -> backward; all ok.
  EXPECT_EQ(executions->size(), 2u);
}

TEST(EnumerateExecutionsTest, RetriablesNeverBranch) {
  ProcessDef def("r");
  ActivityId a = def.AddActivity("a", ActivityKind::kRetriable, ServiceId(1));
  ActivityId b = def.AddActivity("b", ActivityKind::kRetriable, ServiceId(2));
  EXPECT_TRUE(def.AddEdge(a, b).ok());
  EXPECT_TRUE(def.Validate().ok());
  auto executions = EnumerateValidExecutions(def);
  ASSERT_TRUE(executions.ok());
  EXPECT_EQ(executions->size(), 1u);
  EXPECT_TRUE((*executions)[0].committed);
}

}  // namespace
}  // namespace tpm
