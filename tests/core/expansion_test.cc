#include "core/expansion.h"

#include <gtest/gtest.h>

#include "core/figures.h"
#include "core/pred.h"

namespace tpm {
namespace {

class ExpansionTest : public ::testing::Test {
 protected:
  static std::vector<std::string> Render(const ProcessSchedule& s) {
    std::vector<std::string> out;
    for (const auto& e : s.events()) out.push_back(e.ToString());
    return out;
  }
  figures::PaperWorld world_;
};

// §3.4, remark after Example 8: "If all inverses were available and the
// classical undo procedure of recovery could be applied, the prefix S_t1
// of S_t2 would be reducible" — the expanded schedule compensates
// a23, a22, a21 and a11 and everything cancels.
TEST_F(ExpansionTest, St1IsClassicallyReducible) {
  ProcessSchedule s = figures::MakeScheduleSt1(world_);
  auto expanded = ExpandClassically(s);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(Render(*expanded),
            (std::vector<std::string>{
                "a1_1", "a2_1", "a2_2", "a2_3",
                "a2_3^-1", "a2_2^-1", "a2_1^-1", "a1_1^-1", "C1", "C2"}));
  auto red = IsClassicallyReducible(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
  // Whereas under the process model the same prefix is NOT reducible:
  auto process_red = IsRED(s, world_.spec);
  ASSERT_TRUE(process_red.ok());
  EXPECT_FALSE(*process_red);
}

// "As reduction would be possible for all prefixes of S_t2 in this
// classical sense, S_t2 would be in PRED."
TEST_F(ExpansionTest, St2IsClassicallyPrefixReducible) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto classical = IsClassicallyPrefixReducible(s, world_.spec);
  ASSERT_TRUE(classical.ok());
  EXPECT_TRUE(*classical);
  auto process = IsPRED(s, world_.spec);
  ASSERT_TRUE(process.ok());
  EXPECT_FALSE(*process);
}

// A genuinely non-serializable schedule of COMMITTED processes is
// irreducible under both models (nothing can be undone). When the same
// schedule is left active, the classical theory happily reduces it — every
// activity is undone — while the process model still rejects it.
TEST_F(ExpansionTest, NonSerializableIrreducibleInBothModelsOnceCommitted) {
  ProcessSchedule s = figures::MakeSchedulePrimeT2(world_);
  // Still active: classical expansion undoes everything and reduces.
  auto classical_active = IsClassicallyReducible(s, world_.spec);
  ASSERT_TRUE(classical_active.ok());
  EXPECT_TRUE(*classical_active);
  auto process_active = IsRED(s, world_.spec);
  ASSERT_TRUE(process_active.ok());
  EXPECT_FALSE(*process_active);
  // Committed: irreducible in both models.
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(figures::kP1)).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(figures::kP2)).ok());
  auto classical = IsClassicallyReducible(s, world_.spec);
  ASSERT_TRUE(classical.ok());
  EXPECT_FALSE(*classical);
  auto process = IsRED(s, world_.spec);
  ASSERT_TRUE(process.ok());
  EXPECT_FALSE(*process);
}

// Committed processes keep their effects under classical expansion.
TEST_F(ExpansionTest, CommittedProcessesNotUndone) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  auto expanded = ExpandClassically(s);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(Render(*expanded), Render(s));  // nothing to undo
}

// Individual aborts expand in place, like Def. 8 but undo-only.
TEST_F(ExpansionTest, IndividualAbortExpandsInPlace) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(figures::kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP2, ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP2, ActivityId(2),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Abort(figures::kP2)).ok());
  auto expanded = ExpandClassically(s);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(Render(*expanded),
            (std::vector<std::string>{"a2_1", "a2_2", "a2_2^-1", "a2_1^-1",
                                      "C2"}));
}

// The classical model even "undoes" pivots — exactly the unrealistic
// assumption the process model drops (§1: "we cannot impose the strong
// requirements used in other models ... where the inverses of all process
// steps have to exist").
TEST_F(ExpansionTest, ClassicalExpansionUndoesPivots) {
  ProcessSchedule s = figures::MakeScheduleStarReversed(world_);
  auto expanded = ExpandClassically(s);
  ASSERT_TRUE(expanded.ok());
  bool undoes_pivot = false;
  for (const auto& e : expanded->events()) {
    if (e.type == EventType::kActivity && e.act.inverse &&
        e.act.process == figures::kP1 && e.act.activity == ActivityId(2)) {
      undoes_pivot = true;  // a12^p "compensated"
    }
  }
  EXPECT_TRUE(undoes_pivot);
  auto classical = IsClassicallyReducible(s, world_.spec);
  ASSERT_TRUE(classical.ok());
  EXPECT_TRUE(*classical);  // trivially: everything cancels
  auto process = IsRED(s, world_.spec);
  ASSERT_TRUE(process.ok());
  EXPECT_FALSE(*process);  // the process model knows a12 cannot be undone
}

}  // namespace
}  // namespace tpm
