#include "core/schedule.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

using figures::kP1;
using figures::kP2;

class ScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(s_.AddProcess(kP1, &world_.p1).ok());
    ASSERT_TRUE(s_.AddProcess(kP2, &world_.p2).ok());
  }

  Status Act(ProcessId pid, int64_t act, bool inverse = false) {
    return s_.Append(ScheduleEvent::Activity(
        ActivityInstance{pid, ActivityId(act), inverse}));
  }

  figures::PaperWorld world_;
  ProcessSchedule s_;
};

TEST_F(ScheduleTest, DuplicateProcessRejected) {
  EXPECT_EQ(s_.AddProcess(kP1, &world_.p1).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ScheduleTest, AppendRespectsPrecedence) {
  // a12 before a11 violates a11 << a12.
  EXPECT_TRUE(Act(kP1, 2).IsFailedPrecondition());
  EXPECT_TRUE(Act(kP1, 1).ok());
  EXPECT_TRUE(Act(kP1, 2).ok());
}

TEST_F(ScheduleTest, AlternativeRequiresPriorBranchResolved) {
  ASSERT_TRUE(Act(kP1, 1).ok());
  ASSERT_TRUE(Act(kP1, 2).ok());
  ASSERT_TRUE(Act(kP1, 3).ok());
  // a15 is the alternative of a13; a13 is still committed.
  EXPECT_TRUE(Act(kP1, 5).IsFailedPrecondition());
  ASSERT_TRUE(Act(kP1, 3, /*inverse=*/true).ok());
  EXPECT_TRUE(Act(kP1, 5).ok());
}

TEST_F(ScheduleTest, AbortedInvocationLeavesNoTrace) {
  ASSERT_TRUE(s_.Append(ScheduleEvent::Activity(
                            ActivityInstance{kP1, ActivityId(1), false},
                            /*aborted_invocation=*/true))
                  .ok());
  EXPECT_FALSE(s_.StateOf(kP1)->IsCommitted(ActivityId(1)));
  EXPECT_EQ(s_.size(), 1u);
}

TEST_F(ScheduleTest, TerminalEventsUniquePerProcess) {
  ASSERT_TRUE(s_.Append(ScheduleEvent::Commit(kP1)).ok());
  EXPECT_TRUE(s_.Append(ScheduleEvent::Commit(kP1)).IsFailedPrecondition());
  EXPECT_TRUE(Act(kP1, 1).IsFailedPrecondition());
}

TEST_F(ScheduleTest, GroupAbortMarksAllAborted) {
  ASSERT_TRUE(s_.Append(ScheduleEvent::GroupAbort({kP1, kP2})).ok());
  EXPECT_EQ(s_.StateOf(kP1)->outcome(), ProcessOutcome::kAborted);
  EXPECT_EQ(s_.StateOf(kP2)->outcome(), ProcessOutcome::kAborted);
  EXPECT_TRUE(s_.ActiveProcesses().empty());
}

TEST_F(ScheduleTest, ActiveProcesses) {
  EXPECT_EQ(s_.ActiveProcesses().size(), 2u);
  ASSERT_TRUE(s_.Append(ScheduleEvent::Commit(kP1)).ok());
  EXPECT_EQ(s_.ActiveProcesses(), std::vector<ProcessId>{kP2});
  EXPECT_TRUE(s_.IsProcessCommitted(kP1));
  EXPECT_FALSE(s_.IsProcessCommitted(kP2));
}

TEST_F(ScheduleTest, PrefixReplaysState) {
  ASSERT_TRUE(Act(kP1, 1).ok());
  ASSERT_TRUE(Act(kP2, 1).ok());
  ASSERT_TRUE(Act(kP1, 2).ok());
  ProcessSchedule prefix = s_.Prefix(2);
  EXPECT_EQ(prefix.size(), 2u);
  EXPECT_TRUE(prefix.StateOf(kP1)->IsCommitted(ActivityId(1)));
  EXPECT_FALSE(prefix.StateOf(kP1)->IsCommitted(ActivityId(2)));
  EXPECT_TRUE(prefix.StateOf(kP2)->IsCommitted(ActivityId(1)));
}

TEST_F(ScheduleTest, InstancesConflictUsesSpecAndPerfectCommutativity) {
  ActivityInstance a11{kP1, ActivityId(1), false};
  ActivityInstance a11_inv{kP1, ActivityId(1), true};
  ActivityInstance a21{kP2, ActivityId(1), false};
  ActivityInstance a22{kP2, ActivityId(2), false};
  EXPECT_TRUE(s_.InstancesConflict(a11, a21, world_.spec));
  // Perfect commutativity: the inverse conflicts exactly like the original.
  EXPECT_TRUE(s_.InstancesConflict(a11_inv, a21, world_.spec));
  EXPECT_FALSE(s_.InstancesConflict(a11, a22, world_.spec));
  // Same-process instances never "conflict" (program order rules them).
  EXPECT_FALSE(s_.InstancesConflict(a11, a11_inv, world_.spec));
}

TEST_F(ScheduleTest, ToStringRendersEvents) {
  ASSERT_TRUE(Act(kP1, 1).ok());
  ASSERT_TRUE(s_.Append(ScheduleEvent::Commit(kP1)).ok());
  EXPECT_EQ(s_.ToString(), "<a1_1 C1>");
  ScheduleEvent ga = ScheduleEvent::GroupAbort({kP1, kP2});
  EXPECT_EQ(ga.ToString(), "A(P1,P2)");
}

TEST_F(ScheduleTest, UnknownProcessRejected) {
  EXPECT_TRUE(Act(ProcessId(42), 1).IsNotFound());
}

}  // namespace
}  // namespace tpm
