// Inter-process start dependencies (the inter-process part of <<_S,
// Def. 7): a process stays dormant until a named activity of another
// process commits; it aborts cleanly if the dependency becomes
// unsatisfiable. This is the Figure 1 BOM dependency as a first-class
// feature.

#include <gtest/gtest.h>

#include "core/pred.h"
#include "core/scheduler.h"
#include "testing/mini_world.h"
#include "workload/cim_workload.h"

namespace tpm {
namespace {

using testing::MiniWorld;
using ProcessDependency = TransactionalProcessScheduler::ProcessDependency;

TEST(SchedulerDependencyTest, DependentWaitsForActivity) {
  MiniWorld world;
  const ProcessDef* producer = world.MakeChain("prod", "c:a c:b p:c");
  const ProcessDef* consumer = world.MakeChain("cons", "c:x p:y");
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto prod = scheduler.Submit(producer);
  ASSERT_TRUE(prod.ok());
  // Consumer starts only after the producer's SECOND activity (b).
  auto cons = scheduler.Submit(consumer, 0,
                               {ProcessDependency{*prod, ActivityId(2)}});
  ASSERT_TRUE(cons.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*prod), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*cons), ProcessOutcome::kCommitted);
  // In the history the consumer's first activity follows the producer's b.
  const auto& events = scheduler.history().events();
  size_t b_pos = SIZE_MAX, x_pos = SIZE_MAX;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity ||
        events[i].aborted_invocation) {
      continue;
    }
    if (events[i].act.process == *prod &&
        events[i].act.activity == ActivityId(2)) {
      b_pos = i;
    }
    if (events[i].act.process == *cons && x_pos == SIZE_MAX) x_pos = i;
  }
  ASSERT_NE(b_pos, SIZE_MAX);
  ASSERT_NE(x_pos, SIZE_MAX);
  EXPECT_LT(b_pos, x_pos);
}

TEST(SchedulerDependencyTest, DependentAbortsWhenProducerFails) {
  MiniWorld world;
  const ProcessDef* producer = world.MakeChain("prod", "c:a p:boom");
  const ProcessDef* consumer = world.MakeChain("cons", "c:x p:y");
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  // The producer's pivot fails: it aborts backward, never committing it.
  world.subsystem()->ScheduleFailures(world.AddServiceFor("boom"), 1);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto prod = scheduler.Submit(producer);
  ASSERT_TRUE(prod.ok());
  auto cons = scheduler.Submit(consumer, 0,
                               {ProcessDependency{*prod, ActivityId(2)}});
  ASSERT_TRUE(cons.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*prod), ProcessOutcome::kAborted);
  EXPECT_EQ(scheduler.OutcomeOf(*cons), ProcessOutcome::kAborted);
  // The consumer never executed anything.
  EXPECT_EQ(world.Value("x"), 0);
  EXPECT_EQ(world.Value("y"), 0);
}

TEST(SchedulerDependencyTest, RejectsUnknownDependencies) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  EXPECT_TRUE(scheduler
                  .Submit(def, 0, {ProcessDependency{ProcessId(77),
                                                     ActivityId(1)}})
                  .status()
                  .IsNotFound());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(scheduler
                  .Submit(def, 0, {ProcessDependency{*pid, ActivityId(99)}})
                  .status()
                  .IsNotFound());
}

TEST(SchedulerDependencyTest, CimBomDependencyEndToEnd) {
  // The Figure 1 scenario without staggered submission: production simply
  // depends on the construction's pdm_entry (activity 3).
  CimWorld world;
  auto scheduler = std::make_unique<TransactionalProcessScheduler>();
  ASSERT_TRUE(world.RegisterAll(scheduler.get()).ok());
  auto construction = scheduler->Submit(world.construction());
  ASSERT_TRUE(construction.ok());
  auto production = scheduler->Submit(
      world.production(), 0,
      {ProcessDependency{*construction, ActivityId(3)}});
  ASSERT_TRUE(production.ok());
  ASSERT_TRUE(scheduler->Run().ok());
  EXPECT_EQ(scheduler->OutcomeOf(*construction), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler->OutcomeOf(*production), ProcessOutcome::kCommitted);
  EXPECT_TRUE(world.Consistent());
  EXPECT_EQ(world.parts_produced(), 1);
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(SchedulerDependencyTest, CimBomDependencyWithTestFailure) {
  CimWorld world;
  world.ScheduleTestFailure();
  auto scheduler = std::make_unique<TransactionalProcessScheduler>();
  ASSERT_TRUE(world.RegisterAll(scheduler.get()).ok());
  auto construction = scheduler->Submit(world.construction());
  ASSERT_TRUE(construction.ok());
  auto production = scheduler->Submit(
      world.production(), 0,
      {ProcessDependency{*construction, ActivityId(3)}});
  ASSERT_TRUE(production.ok());
  ASSERT_TRUE(scheduler->Run().ok());
  // Construction commits via the reuse alternative; the BOM is compensated
  // so production (whether it started or not) ends aborted with no parts.
  EXPECT_EQ(scheduler->OutcomeOf(*construction), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler->OutcomeOf(*production), ProcessOutcome::kAborted);
  EXPECT_TRUE(world.Consistent());
  EXPECT_EQ(world.parts_produced(), 0);
}

}  // namespace
}  // namespace tpm
