#include "core/completion.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

class CompletionTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

// Example 2: before a12^p commits, P1 is in B-REC and C(P1) = {a11^-1}.
TEST_F(CompletionTest, Example2BackwardRecoverable) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->state, RecoveryState::kBackwardRecoverable);
  ASSERT_EQ(completion->steps.size(), 1u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{ActivityId(1), true}));
  EXPECT_EQ(completion->num_backward_steps(), 1u);
}

// Example 2: after a13^c commits, C(P1) = {a13^-1 << a15 << a16}.
TEST_F(CompletionTest, Example2ForwardRecoverable) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(3)).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->state, RecoveryState::kForwardRecoverable);
  ASSERT_EQ(completion->steps.size(), 3u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{ActivityId(3), true}));
  EXPECT_EQ(completion->steps[1], (CompletionStep{ActivityId(5), false}));
  EXPECT_EQ(completion->steps[2], (CompletionStep{ActivityId(6), false}));
  EXPECT_EQ(completion->num_backward_steps(), 1u);
}

// Example 5: P2 after a21..a24 has C(P2) = {a25}.
TEST_F(CompletionTest, Example5P2Completion) {
  ProcessExecutionState state(ProcessId(2), &world_.p2);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(state.RecordCommit(ActivityId(i)).ok());
  }
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->state, RecoveryState::kForwardRecoverable);
  ASSERT_EQ(completion->steps.size(), 1u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{ActivityId(5), false}));
}

TEST_F(CompletionTest, EmptyProcessHasEmptyCompletion) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->steps.empty());
}

// After the pivot only, the completion is the last (all-retriable)
// alternative: {a15, a16}.
TEST_F(CompletionTest, AfterPivotTakesLastAlternative) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  ASSERT_EQ(completion->steps.size(), 2u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{ActivityId(5), false}));
  EXPECT_EQ(completion->steps[1], (CompletionStep{ActivityId(6), false}));
}

// A fully executed primary path needs no completion work.
TEST_F(CompletionTest, FullyExecutedPrimaryPathNeedsNothing) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(state.RecordCommit(ActivityId(i)).ok());
  }
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->steps.empty())
      << "unexpected: " << completion->ToString();
}

// Committed a14 pins the primary branch: the completion must NOT take the
// alternative (a15, a16), and nothing needs compensation.
TEST_F(CompletionTest, CommittedNestedPivotPinsBranch) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(3)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(4)).ok());  // nested pivot a14
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->steps.empty());
}

// Backward recovery compensates in reverse commit order.
TEST_F(CompletionTest, BackwardRecoveryReverseOrder) {
  ProcessExecutionState state(ProcessId(2), &world_.p2);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  ASSERT_TRUE(state.RecordCommit(ActivityId(2)).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->state, RecoveryState::kBackwardRecoverable);
  ASSERT_EQ(completion->steps.size(), 2u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{ActivityId(2), true}));
  EXPECT_EQ(completion->steps[1], (CompletionStep{ActivityId(1), true}));
}

TEST_F(CompletionTest, ToStringRendersPaperNotation) {
  ProcessExecutionState state(ProcessId(1), &world_.p1);
  ASSERT_TRUE(state.RecordCommit(ActivityId(1)).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->ToString(), "B-REC {a1^-1}");
}

}  // namespace
}  // namespace tpm
