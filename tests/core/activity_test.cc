#include "core/activity.h"

#include <gtest/gtest.h>

namespace tpm {
namespace {

TEST(ActivityKindTest, Names) {
  EXPECT_STREQ(ActivityKindToString(ActivityKind::kCompensatable),
               "compensatable");
  EXPECT_STREQ(ActivityKindToString(ActivityKind::kPivot), "pivot");
  EXPECT_STREQ(ActivityKindToString(ActivityKind::kRetriable), "retriable");
}

TEST(ActivityKindTest, NonCompensatable) {
  EXPECT_FALSE(IsNonCompensatable(ActivityKind::kCompensatable));
  EXPECT_TRUE(IsNonCompensatable(ActivityKind::kPivot));
  EXPECT_TRUE(IsNonCompensatable(ActivityKind::kRetriable));
}

TEST(ActivityInstanceTest, EqualityAndOrdering) {
  ActivityInstance a{ProcessId(1), ActivityId(2), false};
  ActivityInstance b{ProcessId(1), ActivityId(2), false};
  ActivityInstance inv{ProcessId(1), ActivityId(2), true};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, inv);
  EXPECT_LT(a, inv);  // inverse sorts after original
  ActivityInstance other{ProcessId(2), ActivityId(1), false};
  EXPECT_LT(a, other);
}

TEST(ActivityInstanceTest, PaperNotationRendering) {
  ActivityInstance a{ProcessId(1), ActivityId(3), false};
  EXPECT_EQ(ActivityInstanceToString(a), "a1_3");
  ActivityInstance inv{ProcessId(1), ActivityId(3), true};
  EXPECT_EQ(ActivityInstanceToString(inv), "a1_3^-1");
}

}  // namespace
}  // namespace tpm
