// End-to-end verification of every claim the paper makes about its worked
// examples (Figures 2-9, Examples 1-10). This is the "paper conformance"
// suite; the per-module tests cover the same machinery in isolation.

#include "core/figures.h"

#include <gtest/gtest.h>

#include "core/completed_schedule.h"
#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/reduction.h"
#include "core/serializability.h"

namespace tpm {
namespace figures {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  PaperWorld world_;
};

// Figure 2 / Example 1: P1 is well defined and has 4 valid executions.
TEST_F(PaperClaimsTest, Figure2) {
  EXPECT_TRUE(ValidateWellFormedFlex(world_.p1).ok());
  auto executions = EnumerateValidExecutions(world_.p1);
  ASSERT_TRUE(executions.ok());
  EXPECT_EQ(executions->size(), 4u);
}

// Example 2: state-determining activity and completions of P1.
TEST_F(PaperClaimsTest, Example2) {
  auto s = StateDeterminingActivity(world_.p1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, ActivityId(2));
}

// Figure 4(a) / Example 4: S_t2 serializable.
TEST_F(PaperClaimsTest, Figure4aSerializable) {
  EXPECT_TRUE(IsSerializable(MakeScheduleSt2(world_), world_.spec));
}

// Figure 4(b) / Example 3: S'_t2 not serializable.
TEST_F(PaperClaimsTest, Figure4bNotSerializable) {
  EXPECT_FALSE(IsSerializable(MakeSchedulePrimeT2(world_), world_.spec));
}

// Figure 6 / Examples 5-6: completed S_t2 serializable; S_t2 is RED.
TEST_F(PaperClaimsTest, Figure6CompletedAndReduced) {
  ProcessSchedule s = MakeScheduleSt2(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(IsSerializable(*completed, world_.spec));
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
}

// Figure 7 / Examples 7, 9: S'' is RED and PRED.
TEST_F(PaperClaimsTest, Figure7Pred) {
  ProcessSchedule s = MakeScheduleDoublePrimeT1(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
  auto pred = IsPRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

// Figure 8 / Example 8: S_t1 not reducible => S_t2 not PRED.
TEST_F(PaperClaimsTest, Figure8NotPred) {
  auto red_t1 = IsRED(MakeScheduleSt1(world_), world_.spec);
  ASSERT_TRUE(red_t1.ok());
  EXPECT_FALSE(*red_t1);
  auto pred_t2 = IsPRED(MakeScheduleSt2(world_), world_.spec);
  ASSERT_TRUE(pred_t2.ok());
  EXPECT_FALSE(*pred_t2);
}

// Figure 9 / Example 10: the quasi-commit interleaving is correct.
TEST_F(PaperClaimsTest, Figure9QuasiCommit) {
  auto pred = IsPRED(MakeScheduleStar(world_), world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
  auto reversed = IsPRED(MakeScheduleStarReversed(world_), world_.spec);
  ASSERT_TRUE(reversed.ok());
  EXPECT_FALSE(*reversed);
}

// Theorem 1 on the paper's own schedules: PRED => serializable and
// process-recoverable.
TEST_F(PaperClaimsTest, Theorem1OnPaperSchedules) {
  ProcessSchedule pred_schedule = MakeScheduleDoublePrimeT1(world_);
  EXPECT_TRUE(IsSerializable(pred_schedule, world_.spec));
  EXPECT_TRUE(IsProcessRecoverable(pred_schedule, world_.spec));

  ProcessSchedule star = MakeScheduleStar(world_);
  EXPECT_TRUE(IsSerializable(star, world_.spec));
  EXPECT_TRUE(IsProcessRecoverable(star, world_.spec));
}

// Structural sanity of the shared world.
TEST_F(PaperClaimsTest, WorldShape) {
  EXPECT_EQ(world_.p1.num_activities(), 6u);
  EXPECT_EQ(world_.p2.num_activities(), 5u);
  EXPECT_EQ(world_.p3.num_activities(), 3u);
  EXPECT_EQ(world_.spec.num_conflict_pairs(), 4u);
}

}  // namespace
}  // namespace figures
}  // namespace tpm
