#include "core/serializability.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

using figures::kP1;
using figures::kP2;

class SerializabilityTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

// Example 4: the Figure 4(a) schedule at t2 is serializable.
TEST_F(SerializabilityTest, Example4SerializableSchedule) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  ConflictGraph cg = BuildConflictGraph(s, world_.spec);
  EXPECT_TRUE(cg.IsAcyclic());
  EXPECT_TRUE(IsSerializable(s, world_.spec));
  auto order = cg.SerializationOrder();
  ASSERT_TRUE(order.ok());
  // All conflicts point P1 -> P2... in fact a11 < a21 gives P1 -> P2 and
  // a12 < a24 gives P1 -> P2, so P1 serializes first.
  EXPECT_EQ(*order, (std::vector<ProcessId>{kP1, kP2}));
}

// Example 3: the Figure 4(b) schedule has cyclic dependencies.
TEST_F(SerializabilityTest, Example3NonSerializableSchedule) {
  ProcessSchedule s = figures::MakeSchedulePrimeT2(world_);
  ConflictGraph cg = BuildConflictGraph(s, world_.spec);
  EXPECT_FALSE(cg.IsAcyclic());
  EXPECT_FALSE(IsSerializable(s, world_.spec));
  auto cycle = cg.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_TRUE(cg.SerializationOrder().status().IsInvalidArgument());
}

TEST_F(SerializabilityTest, EmptyScheduleIsSerializable) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  EXPECT_TRUE(IsSerializable(s, world_.spec));
}

TEST_F(SerializabilityTest, CommittedProjectionIgnoresActiveProcesses) {
  ProcessSchedule s = figures::MakeSchedulePrimeT2(world_);
  // Neither process committed: the committed projection is empty, hence
  // trivially serializable.
  ConflictGraphOptions options;
  options.committed_projection = true;
  EXPECT_TRUE(IsSerializable(s, world_.spec, options));
}

TEST_F(SerializabilityTest, AbortedInvocationsInduceNoConflicts) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  // A failed invocation of a21 between a11 and ... would otherwise order
  // P2 before P1's later conflicting use.
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false},
                           /*aborted_invocation=*/true))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ConflictGraph cg = BuildConflictGraph(s, world_.spec);
  // Only the real executions conflict: P1 -> P2.
  EXPECT_TRUE(cg.IsAcyclic());
  auto order = cg.SerializationOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<ProcessId>{kP1, kP2}));
}

TEST_F(SerializabilityTest, ConflictGraphEdgeDirectionFollowsPosition) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP2, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ConflictGraph cg = BuildConflictGraph(s, world_.spec);
  auto order = cg.SerializationOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<ProcessId>{kP2, kP1}));
}

}  // namespace
}  // namespace tpm
