// Bounded-memory mode (SchedulerOptions::reclaim_terminated): terminated
// runtimes are recycled into a pool and their history events compacted
// away at epoch boundaries, so a long-running scheduler's footprint is a
// function of the live process set, not of everything it ever ran.
#include <set>

#include "core/scheduler.h"
#include <gtest/gtest.h>

#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

TEST(SchedulerReclaimTest, OutcomesSurviveReclamation) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b r:c");
  ASSERT_NE(def, nullptr);

  SchedulerOptions options;
  options.reclaim_terminated = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());

  constexpr int kProcesses = 200;
  std::vector<ProcessId> pids;
  for (int i = 0; i < kProcesses; ++i) {
    Result<ProcessId> pid = scheduler.Submit(def);
    ASSERT_TRUE(pid.ok()) << pid.status().ToString();
    pids.push_back(*pid);
    ASSERT_TRUE(scheduler.Run().ok());
  }

  // Every outcome is still answerable after the runtime was recycled.
  // (Identical conflicting chains run one at a time all commit.)
  EXPECT_EQ(scheduler.stats().processes_committed, kProcesses);
  for (ProcessId pid : pids) {
    EXPECT_EQ(scheduler.OutcomeOf(pid), ProcessOutcome::kCommitted)
        << "P" << pid.value();
  }
  // Latency records are deliberately not accumulated in bounded mode.
  EXPECT_TRUE(scheduler.latencies().empty());
}

TEST(SchedulerReclaimTest, HistoryAndRuntimeFootprintStayBounded) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);

  SchedulerOptions options;
  options.reclaim_terminated = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());

  // Enough sequential processes to cross the internal compaction batch
  // (1024 releases) several times.
  constexpr int kProcesses = 3000;
  size_t max_history = 0;
  for (int i = 0; i < kProcesses; ++i) {
    Result<ProcessId> pid = scheduler.Submit(def);
    ASSERT_TRUE(pid.ok()) << pid.status().ToString();
    ASSERT_TRUE(scheduler.Run().ok());
    max_history = std::max(max_history, scheduler.history().size());
  }
  EXPECT_EQ(scheduler.stats().processes_committed, kProcesses);
  // Events of released processes are compacted away in batches of 1024
  // releases; with ~4 events per process the high-water mark stays a
  // small multiple of the batch, far below the ~12000 an unbounded
  // history would hold.
  EXPECT_LT(max_history, 6000u);
  EXPECT_LT(scheduler.history().size(), 6000u);
  // The live process table is empty again (all reclaimed at the last
  // epoch boundary or pending the next one).
  EXPECT_LT(scheduler.history().processes().size(), 3u);
}

TEST(SchedulerReclaimTest, BatchSubmissionWorksWithReclaim) {
  using BatchSubmission = TransactionalProcessScheduler::BatchSubmission;
  MiniWorld world;
  // Distinct keys so concurrent admission commits everything.
  const ProcessDef* d1 = world.MakeChain("m1", "c:k1 p:l1");
  const ProcessDef* d2 = world.MakeChain("m2", "c:k2 p:l2");
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);

  SchedulerOptions options;
  options.reclaim_terminated = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());

  std::vector<ProcessId> pids;
  for (int round = 0; round < 50; ++round) {
    std::vector<Result<ProcessId>> results =
        scheduler.SubmitBatch({BatchSubmission{d1, 0}, BatchSubmission{d2, 0}});
    for (const Result<ProcessId>& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      pids.push_back(*r);
    }
    ASSERT_TRUE(scheduler.Run().ok());
  }
  EXPECT_EQ(scheduler.stats().processes_committed, 100);
  for (ProcessId pid : pids) {
    EXPECT_EQ(scheduler.OutcomeOf(pid), ProcessOutcome::kCommitted);
  }
}

TEST(SchedulerReclaimTest, DependenciesAreRejectedUnderReclaim) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);

  SchedulerOptions options;
  options.reclaim_terminated = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());

  Result<ProcessId> first = scheduler.Submit(def);
  ASSERT_TRUE(first.ok());
  Result<ProcessId> dependent = scheduler.Submit(
      def, 0, {{*first, ActivityId(1)}});
  EXPECT_TRUE(dependent.status().IsInvalidArgument())
      << dependent.status().ToString();
}

TEST(SchedulerReclaimTest, ReclaimedStatsMatchUnboundedRun) {
  // Same workload with and without reclamation: stats and final subsystem
  // state must be identical — reclamation only changes memory retention.
  auto run = [](bool reclaim, int64_t* store_value) {
    MiniWorld world;
    const ProcessDef* d1 = world.MakeChain("m1", "c:a p:b r:c");
    const ProcessDef* d2 = world.MakeChain("m2", "c:a c:b p:c");
    SchedulerOptions options;
    options.reclaim_terminated = reclaim;
    TransactionalProcessScheduler scheduler(options);
    Status registered = scheduler.RegisterSubsystem(world.subsystem());
    EXPECT_TRUE(registered.ok());
    for (int i = 0; i < 40; ++i) {
      Result<ProcessId> p1 = scheduler.Submit(d1);
      Result<ProcessId> p2 = scheduler.Submit(d2);
      EXPECT_TRUE(p1.ok() && p2.ok());
      Status ran = scheduler.Run();
      EXPECT_TRUE(ran.ok()) << ran.ToString();
    }
    *store_value = world.Value("a");
    return scheduler.stats();
  };
  int64_t bounded_store = 0, unbounded_store = 0;
  SchedulerStats bounded = run(true, &bounded_store);
  SchedulerStats unbounded = run(false, &unbounded_store);
  EXPECT_EQ(bounded, unbounded);
  EXPECT_EQ(bounded_store, unbounded_store);
}

}  // namespace
}  // namespace tpm
