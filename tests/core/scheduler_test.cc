#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "core/pred.h"
#include "core/serializability.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

SchedulerOptions PredCertified() {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  options.certify_prefixes = true;
  return options;
}

TEST(SchedulerTest, SingleProcessHappyPath) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b r:c");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kCommitted);
  EXPECT_EQ(world.Value("a"), 1);
  EXPECT_EQ(world.Value("b"), 1);
  EXPECT_EQ(world.Value("c"), 1);
  EXPECT_EQ(scheduler.stats().activities_committed, 3);
  EXPECT_EQ(scheduler.stats().processes_committed, 1);
  // The emitted history ends with the process commit.
  const auto& events = scheduler.history().events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, EventType::kCommit);
}

TEST(SchedulerTest, SubmitValidatesDefinition) {
  MiniWorld world;
  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  // Null / unvalidated.
  EXPECT_TRUE(scheduler.Submit(nullptr).status().IsInvalidArgument());
  // Unregistered service.
  ProcessDef foreign("foreign");
  foreign.AddActivity("x", ActivityKind::kPivot, ServiceId(424242));
  ASSERT_TRUE(foreign.Validate().ok());
  EXPECT_TRUE(scheduler.Submit(&foreign).status().IsNotFound());
  // Not well-formed flex (pivot after retriable).
  ProcessDef bad("bad");
  ActivityId r = bad.AddActivity("r", ActivityKind::kRetriable,
                                 world.AddServiceFor("a"));
  ActivityId p = bad.AddActivity("p", ActivityKind::kPivot,
                                 world.AddServiceFor("b"));
  ASSERT_TRUE(bad.AddEdge(r, p).ok());
  ASSERT_TRUE(bad.Validate().ok());
  EXPECT_FALSE(scheduler.Submit(&bad).ok());
}

TEST(SchedulerTest, RetriableRetriesUntilCommit) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "p:a r:b");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("b"), 3);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.stats().failed_invocations, 3);
  EXPECT_EQ(world.Value("b"), 1);
  // The failed invocations appear as effect-free events in the history.
  int aborted_events = 0;
  for (const auto& e : scheduler.history().events()) {
    if (e.type == EventType::kActivity && e.aborted_invocation) {
      ++aborted_events;
    }
  }
  EXPECT_EQ(aborted_events, 3);
}

TEST(SchedulerTest, PivotFailureTriggersBackwardRecovery) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a c:b p:x r:c");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("x"), 1);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kAborted);
  // Backward recovery: everything compensated, the store is clean.
  EXPECT_EQ(world.Value("a"), 0);
  EXPECT_EQ(world.Value("b"), 0);
  EXPECT_EQ(world.Value("x"), 0);
  EXPECT_EQ(world.Value("c"), 0);
  EXPECT_EQ(scheduler.stats().compensations, 2);
  EXPECT_EQ(scheduler.stats().processes_aborted, 1);
}

TEST(SchedulerTest, NestedPivotFailureTakesAlternative) {
  MiniWorld world;
  const ProcessDef* def =
      world.MakeBranching("p", "pre", "piv", "mid", "deep", "alt");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("deep"), 1);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid = scheduler.Submit(def);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // The process still commits: mid was compensated, the alternative ran.
  EXPECT_EQ(scheduler.OutcomeOf(*pid), ProcessOutcome::kCommitted);
  EXPECT_EQ(world.Value("pre"), 1);
  EXPECT_EQ(world.Value("piv"), 1);
  EXPECT_EQ(world.Value("mid"), 0);   // compensated
  EXPECT_EQ(world.Value("deep"), 0);  // failed
  EXPECT_EQ(world.Value("alt"), 1);   // alternative executed
  EXPECT_EQ(scheduler.stats().alternatives_taken, 1);
  EXPECT_EQ(scheduler.stats().compensations, 1);
}

TEST(SchedulerTest, ConflictingPivotDeferredUntilBlockerCommits) {
  MiniWorld world;
  // P1 touches shared key "s" early and is slow; P2's pivot touches "s".
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:x1 c:x2 p:y1 r:z1");
  const ProcessDef* p2 = world.MakeChain("p2", "c:w p:s r:z2");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kCommitted);
  EXPECT_GT(scheduler.stats().deferrals, 0);

  // In the emitted history P2's pivot (activity 2, service add/s) appears
  // after C1 (Lemma 1).
  const auto& events = scheduler.history().events();
  size_t c1_pos = SIZE_MAX, p2_pivot_pos = SIZE_MAX;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCommit && events[i].process == *pid1) {
      c1_pos = i;
    }
    if (events[i].type == EventType::kActivity &&
        events[i].act.process == *pid2 &&
        events[i].act.activity == ActivityId(2) &&
        !events[i].aborted_invocation) {
      p2_pivot_pos = i;
    }
  }
  ASSERT_NE(c1_pos, SIZE_MAX);
  ASSERT_NE(p2_pivot_pos, SIZE_MAX);
  EXPECT_LT(c1_pos, p2_pivot_pos);

  // And the final history is PRED.
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(SchedulerTest, Prepared2PCOverlapsExecution) {
  MiniWorld world;
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:x1 c:x2 p:y1 r:z1");
  const ProcessDef* p2 = world.MakeChain("p2", "c:w p:u r:z2");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  options.defer_mode = DeferMode::kPrepared2PC;
  options.certify_prefixes = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  // Make P2's pivot conflict with P1 via the shared key "s": rebuild p2
  // with pivot on s.
  const ProcessDef* p2s = world.MakeChain("p2s", "c:w p:s r:z2");
  ASSERT_NE(p2s, nullptr);
  (void)p2;
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2s);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kCommitted);
  EXPECT_GT(scheduler.stats().prepared_branches, 0);
  EXPECT_EQ(world.Value("s"), 2);  // both adds landed
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(SchedulerTest, CompensationCascadesToDependentProcess) {
  MiniWorld world;
  // P1 writes "s" then fails its pivot -> aborts, compensating "s".
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:f1 c:f2 p:boom");
  // P2 consumes "s" (conflicting compensatable) then more local work.
  const ProcessDef* p2 = world.MakeChain("p2", "c:s c:m p:n");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("boom"), 1);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kAborted);
  EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kAborted);
  EXPECT_GE(scheduler.stats().cascading_aborts, 1);
  EXPECT_EQ(scheduler.stats().irrecoverable_cascades, 0);
  // Everything rolled back.
  EXPECT_EQ(world.Value("s"), 0);
  EXPECT_EQ(world.Value("m"), 0);
  EXPECT_EQ(world.Value("n"), 0);
}

TEST(SchedulerTest, DeadlockResolvedByVictimAbort) {
  MiniWorld world;
  const ProcessDef* p1 = world.MakeChain("p1", "c:k1 p:k2 r:z1");
  const ProcessDef* p2 = world.MakeChain("p2", "c:k2 p:k1 r:z2");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // One process must have been sacrificed; at least one commits.
  int committed = (scheduler.OutcomeOf(*pid1) == ProcessOutcome::kCommitted) +
                  (scheduler.OutcomeOf(*pid2) == ProcessOutcome::kCommitted);
  int aborted = (scheduler.OutcomeOf(*pid1) == ProcessOutcome::kAborted) +
                (scheduler.OutcomeOf(*pid2) == ProcessOutcome::kAborted);
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
  EXPECT_GE(scheduler.stats().deadlock_victims, 1);
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(*pred);
}

TEST(SchedulerTest, CommitOrderFollowsConflictOrder) {
  MiniWorld world;
  // P1 touches "s" first but is long; P2 touches "s" second (compensatable)
  // and finishes early — it must still commit after P1 (Def. 11 clause 1).
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:x1 c:x2 c:x3 p:y1");
  const ProcessDef* p2 = world.MakeChain("p2", "c:s");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  size_t c1 = SIZE_MAX, c2 = SIZE_MAX;
  const auto& events = scheduler.history().events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kCommit) continue;
    if (events[i].process == *pid1) c1 = i;
    if (events[i].process == *pid2) c2 = i;
  }
  ASSERT_NE(c1, SIZE_MAX);
  ASSERT_NE(c2, SIZE_MAX);
  EXPECT_LT(c1, c2);
  EXPECT_GT(scheduler.stats().commit_waits, 0);
}

TEST(SchedulerTest, ManyIndependentProcessesAllCommit) {
  MiniWorld world;
  // All definitions (and hence services) must exist before the subsystem is
  // registered, because conflicts are derived at registration time.
  std::vector<const ProcessDef*> defs;
  for (int i = 0; i < 8; ++i) {
    const ProcessDef* def = world.MakeChain(
        StrCat("p", i), StrCat("c:a", i, " p:b", i, " r:c", i));
    ASSERT_NE(def, nullptr);
    defs.push_back(def);
  }
  TransactionalProcessScheduler scheduler(PredCertified());
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  std::vector<ProcessId> pids;
  for (const ProcessDef* def : defs) {
    auto pid = scheduler.Submit(def);
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  ASSERT_TRUE(scheduler.Run().ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(scheduler.OutcomeOf(pid), ProcessOutcome::kCommitted);
  }
  EXPECT_EQ(scheduler.stats().deferrals, 0);  // no conflicts, no waits
}

TEST(SchedulerTest, UnsafeProtocolProducesViolationsUnderConflicts) {
  MiniWorld world;
  // P1 writes s, then long prefix, then fails its pivot -> compensates s.
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:f1 c:f2 c:f3 p:boom");
  // P2 consumes s and rushes to its own pivot.
  const ProcessDef* p2 = world.MakeChain("p2", "c:s p:n r:m");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("boom"), 1);
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kUnsafe;
  options.certify_prefixes = true;
  TransactionalProcessScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // The unsafe protocol let P2's pivot commit before P1 resolved; P1's
  // compensation of s then doomed P2 irrecoverably.
  EXPECT_GT(scheduler.stats().certified_violations +
                scheduler.stats().irrecoverable_cascades,
            0);
}

TEST(SchedulerTest, QuasiCommitOptimizationAdmitsEarlier) {
  MiniWorld world;
  // P1: pivot first (enters F-REC immediately), then retriables that do
  // not touch "s". P2 conflicts with P1's pivot service "s".
  const ProcessDef* p1 = world.MakeChain("p1", "p:s r:x1 r:x2 r:x3");
  const ProcessDef* p2 = world.MakeChain("p2", "c:s p:y r:z");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);

  auto run = [&](bool quasi) {
    MiniWorld w2;
    const ProcessDef* q1 = w2.MakeChain("p1", "p:s r:x1 r:x2 r:x3");
    const ProcessDef* q2 = w2.MakeChain("p2", "c:s p:y r:z");
    SchedulerOptions options;
    options.protocol = AdmissionProtocol::kPred;
    options.quasi_commit_optimization = quasi;
    TransactionalProcessScheduler scheduler(options);
    EXPECT_TRUE(scheduler.RegisterSubsystem(w2.subsystem()).ok());
    auto pid1 = scheduler.Submit(q1);
    auto pid2 = scheduler.Submit(q2);
    EXPECT_TRUE(pid1.ok());
    EXPECT_TRUE(pid2.ok());
    EXPECT_TRUE(scheduler.Run().ok());
    EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kCommitted);
    EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kCommitted);
    return scheduler.stats();
  };

  SchedulerStats without = run(false);
  SchedulerStats with = run(true);
  // The optimization strictly reduces deferral pressure.
  EXPECT_LE(with.deferrals, without.deferrals);
  EXPECT_LE(with.steps, without.steps);
  (void)p1;
  (void)p2;
}

}  // namespace
}  // namespace tpm
