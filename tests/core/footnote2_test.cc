// The footnote 2 extension: compensatable-retriable activities ("we could
// also consider retriable activities to be as well compensatable in order
// to give a scheduler more options for executing alternatives").

#include <gtest/gtest.h>

#include "core/completion.h"
#include "core/flex_structure.h"
#include "core/scheduler.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

TEST(Footnote2Test, KindPredicates) {
  EXPECT_TRUE(IsRetriableKind(ActivityKind::kCompensatableRetriable));
  EXPECT_TRUE(IsCompensatableKind(ActivityKind::kCompensatableRetriable));
  EXPECT_FALSE(IsNonCompensatable(ActivityKind::kCompensatableRetriable));
  EXPECT_STREQ(ActivityKindToString(ActivityKind::kCompensatableRetriable),
               "compensatable-retriable");
}

TEST(Footnote2Test, RequiresCompensationService) {
  ProcessDef def("p");
  def.AddActivity("x", ActivityKind::kCompensatableRetriable, ServiceId(1));
  EXPECT_TRUE(def.Validate().IsInvalidArgument());
}

TEST(Footnote2Test, ValidInCompensatablePrefixAndRetriableTail) {
  // cr in the prefix (it is compensatable) and in the tail (it is
  // retriable): both positions are well formed.
  ProcessDef def("p");
  ActivityId cr1 = def.AddActivity(
      "cr1", ActivityKind::kCompensatableRetriable, ServiceId(1),
      ServiceId(101));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ActivityId cr2 = def.AddActivity(
      "cr2", ActivityKind::kCompensatableRetriable, ServiceId(3),
      ServiceId(103));
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(4));
  ASSERT_TRUE(def.AddEdge(cr1, p).ok());
  ASSERT_TRUE(def.AddEdge(p, cr2).ok());
  ASSERT_TRUE(def.AddEdge(cr2, r).ok());
  ASSERT_TRUE(def.Validate().ok());
  EXPECT_TRUE(ValidateWellFormedFlex(def).ok());
  // The pivot is the state-determining activity; cr never determines state.
  auto s = StateDeterminingActivity(def);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, p);
}

TEST(Footnote2Test, CrNeverFailsInEnumeration) {
  ProcessDef def("p");
  ActivityId cr = def.AddActivity(
      "cr", ActivityKind::kCompensatableRetriable, ServiceId(1),
      ServiceId(101));
  ActivityId piv = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ASSERT_TRUE(def.AddEdge(cr, piv).ok());
  ASSERT_TRUE(def.Validate().ok());
  auto executions = EnumerateValidExecutions(def);
  ASSERT_TRUE(executions.ok());
  // Only the pivot branches: success and backward recovery (cr compensated).
  EXPECT_EQ(executions->size(), 2u);
}

TEST(Footnote2Test, CompletionCompensatesCrPastThePivot) {
  ProcessDef def("p");
  ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(101));
  ActivityId piv = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ActivityId cr = def.AddActivity(
      "cr", ActivityKind::kCompensatableRetriable, ServiceId(3),
      ServiceId(103));
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(4));
  ASSERT_TRUE(def.AddEdge(c, piv).ok());
  ASSERT_TRUE(def.AddEdge(piv, cr).ok());
  ASSERT_TRUE(def.AddEdge(cr, r).ok());
  ASSERT_TRUE(def.Validate().ok());

  ProcessExecutionState state(ProcessId(1), &def);
  ASSERT_TRUE(state.RecordCommit(c).ok());
  ASSERT_TRUE(state.RecordCommit(piv).ok());
  ASSERT_TRUE(state.RecordCommit(cr).ok());
  auto completion = ComputeCompletion(state);
  ASSERT_TRUE(completion.ok());
  // F-REC: cr (after the pivot) is compensated, then the forward path
  // re-runs cr and r.
  ASSERT_GE(completion->steps.size(), 3u);
  EXPECT_EQ(completion->steps[0], (CompletionStep{cr, true}));
  EXPECT_EQ(completion->num_backward_steps(), 1u);
}

TEST(Footnote2Test, SchedulerDoesNotDeferCrBehindConflicts) {
  // A cr activity conflicting with an active predecessor is admitted
  // (compensatable ⇒ no Lemma 1 deferral) — the concurrency gain of the
  // footnote.
  testing::MiniWorld world;
  // P1 occupies "s" and stays active for a while.
  const ProcessDef* p1 = world.MakeChain("p1", "c:s c:x1 c:x2 p:y");
  ASSERT_NE(p1, nullptr);
  // P2's second activity is a cr on "s".
  ProcessDef p2("p2");
  ActivityId w = p2.AddActivity("w", ActivityKind::kCompensatable,
                                world.AddServiceFor("w"),
                                world.SubServiceFor("w"));
  ActivityId crs = p2.AddActivity("crs",
                                  ActivityKind::kCompensatableRetriable,
                                  world.AddServiceFor("s"),
                                  world.SubServiceFor("s"));
  ActivityId piv = p2.AddActivity("p", ActivityKind::kPivot,
                                  world.AddServiceFor("z"));
  ASSERT_TRUE(p2.AddEdge(w, crs).ok());
  ASSERT_TRUE(p2.AddEdge(crs, piv).ok());
  ASSERT_TRUE(p2.Validate().ok());
  ASSERT_TRUE(ValidateWellFormedFlex(p2).ok());

  TransactionalProcessScheduler scheduler;
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  auto pid1 = scheduler.Submit(p1);
  auto pid2 = scheduler.Submit(&p2);
  ASSERT_TRUE(pid1.ok());
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.OutcomeOf(*pid1), ProcessOutcome::kCommitted);
  EXPECT_EQ(scheduler.OutcomeOf(*pid2), ProcessOutcome::kCommitted);
  // The cr on "s" executed while P1 was still active: it appears before C1
  // in the emitted history.
  const auto& events = scheduler.history().events();
  size_t c1 = SIZE_MAX, crs_pos = SIZE_MAX;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCommit && events[i].process == *pid1) {
      c1 = i;
    }
    if (events[i].type == EventType::kActivity &&
        events[i].act.process == *pid2 && events[i].act.activity == crs &&
        !events[i].aborted_invocation) {
      crs_pos = i;
    }
  }
  ASSERT_NE(c1, SIZE_MAX);
  ASSERT_NE(crs_pos, SIZE_MAX);
  EXPECT_LT(crs_pos, c1);
}

}  // namespace
}  // namespace tpm
