#include "core/sot.h"

#include <gtest/gtest.h>

#include "core/figures.h"
#include "core/pred.h"
#include "workload/schedule_generator.h"

namespace tpm {
namespace {

class SotTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

TEST_F(SotTest, NonSerializableIsNotSOT) {
  EXPECT_FALSE(IsSOT(figures::MakeSchedulePrimeT2(world_), world_.spec));
}

TEST_F(SotTest, OrderedTerminationsAreSOT) {
  EXPECT_TRUE(IsSOT(figures::MakeScheduleDoublePrimeT1(world_), world_.spec));
}

TEST_F(SotTest, ReversedTerminationsViolateSOT) {
  // a11 << a21 conflict but P2 commits before P1.
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(figures::kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(figures::kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP1, ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP2, ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(figures::kP2)).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(figures::kP1)).ok());
  EXPECT_FALSE(IsSOT(s, world_.spec));
}

// §3.5's central claim: SOT-like criteria (deciding from S alone) do not
// work for transactional processes. S_t1 of Example 8 is the paper's own
// witness: serializable, terminations unordered (none present) — SOT
// accepts it — yet its completion is irreducible.
TEST_F(SotTest, Example8IsSotButNotPred) {
  ProcessSchedule s = figures::MakeScheduleSt1(world_);
  EXPECT_TRUE(IsSOT(s, world_.spec));
  auto pred = IsPRED(s, world_.spec);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(*pred);
}

// The reverse direction also fails on random schedules: the criteria are
// incomparable for processes.
TEST_F(SotTest, SotAndPredAreIncomparableOnRandomSchedules) {
  Rng rng(31337);
  RandomScheduleConfig config;
  config.num_processes = 2;
  config.conflict_density = 0.3;
  int sot_not_pred = 0;
  int pred_not_sot = 0;
  for (int i = 0; i < 600; ++i) {
    auto generated = GenerateRandomSchedule(config, &rng);
    ASSERT_TRUE(generated.ok());
    const bool sot = IsSOT(generated->schedule, generated->spec);
    auto pred = IsPRED(generated->schedule, generated->spec);
    ASSERT_TRUE(pred.ok());
    if (sot && !*pred) ++sot_not_pred;
    if (*pred && !sot) ++pred_not_sot;
  }
  EXPECT_GT(sot_not_pred, 0);
  EXPECT_GT(pred_not_sot, 0);
}

TEST_F(SotTest, AbortedInvocationsDoNotAffectSOT) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(figures::kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(figures::kP2, &world_.p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP1, ActivityId(1),
                                            false},
                           /*aborted_invocation=*/true))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{figures::kP2, ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(figures::kP2)).ok());
  EXPECT_TRUE(IsSOT(s, world_.spec));
}

}  // namespace
}  // namespace tpm
