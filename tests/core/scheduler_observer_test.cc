#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/scheduler.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

// Records every callback as a readable line.
class RecordingObserver : public SchedulerObserver {
 public:
  void OnActivityCommitted(ProcessId pid, ActivityId act,
                           bool inverse) override {
    events.push_back(StrCat("commit P", pid, " a", act,
                            inverse ? "^-1" : ""));
  }
  void OnInvocationFailed(ProcessId pid, ActivityId act) override {
    events.push_back(StrCat("fail P", pid, " a", act));
  }
  void OnAlternativeTaken(ProcessId pid, ActivityId branch_point,
                          int group) override {
    events.push_back(StrCat("alt P", pid, " @a", branch_point, " g", group));
  }
  void OnAbortStarted(ProcessId pid) override {
    events.push_back(StrCat("aborting P", pid));
  }
  void OnProcessTerminated(ProcessId pid, ProcessOutcome outcome) override {
    events.push_back(StrCat(
        "done P", pid, " ",
        outcome == ProcessOutcome::kCommitted ? "committed" : "aborted"));
  }

  std::vector<std::string> events;
};

TEST(SchedulerObserverTest, HappyPathEvents) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  RecordingObserver observer;
  scheduler.AddObserver(&observer);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(observer.events,
            (std::vector<std::string>{"commit P1 a1", "commit P1 a2",
                                      "done P1 committed"}));
}

TEST(SchedulerObserverTest, FailureAndBackwardRecoveryEvents) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("b"), 1);
  TransactionalProcessScheduler scheduler;
  RecordingObserver observer;
  scheduler.AddObserver(&observer);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(observer.events,
            (std::vector<std::string>{"commit P1 a1", "fail P1 a2",
                                      "aborting P1", "commit P1 a1^-1",
                                      "done P1 aborted"}));
}

TEST(SchedulerObserverTest, AlternativeEvents) {
  MiniWorld world;
  const ProcessDef* def =
      world.MakeBranching("p", "pre", "piv", "mid", "deep", "alt");
  ASSERT_NE(def, nullptr);
  world.subsystem()->ScheduleFailures(world.AddServiceFor("deep"), 1);
  TransactionalProcessScheduler scheduler;
  RecordingObserver observer;
  scheduler.AddObserver(&observer);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  // The alternative at the pivot (activity 2) group 1 was taken.
  bool saw_alternative = false;
  for (const std::string& e : observer.events) {
    if (e == "alt P1 @a2 g1") saw_alternative = true;
  }
  EXPECT_TRUE(saw_alternative)
      << StrJoin(observer.events, " | ");
}

TEST(SchedulerObserverTest, NullObserverIgnored) {
  TransactionalProcessScheduler scheduler;
  scheduler.AddObserver(nullptr);  // no crash
  SUCCEED();
}

TEST(SchedulerObserverTest, MultipleObserversAllNotified) {
  MiniWorld world;
  const ProcessDef* def = world.MakeChain("p", "c:a p:b");
  ASSERT_NE(def, nullptr);
  TransactionalProcessScheduler scheduler;
  RecordingObserver a, b;
  scheduler.AddObserver(&a);
  scheduler.AddObserver(&b);
  ASSERT_TRUE(scheduler.RegisterSubsystem(world.subsystem()).ok());
  ASSERT_TRUE(scheduler.Submit(def).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.events.empty());
}

}  // namespace
}  // namespace tpm
