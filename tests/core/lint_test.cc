#include "core/lint.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

bool HasDiagnostic(const std::vector<LintDiagnostic>& diagnostics,
                   const std::string& fragment,
                   LintDiagnostic::Severity severity) {
  for (const auto& d : diagnostics) {
    if (d.severity == severity &&
        d.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(LintTest, CleanProcessHasNoDiagnostics) {
  figures::PaperWorld world;
  EXPECT_TRUE(LintProcess(world.p1).empty());
  EXPECT_TRUE(LintProcess(world.p2).empty());
}

TEST(LintTest, UnvalidatedProcessIsAnError) {
  ProcessDef def("raw");
  def.AddActivity("a", ActivityKind::kRetriable, ServiceId(1));
  auto diagnostics = LintProcess(def);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintDiagnostic::Severity::kError);
  EXPECT_NE(diagnostics[0].ToString().find("error:"), std::string::npos);
}

TEST(LintTest, MalformedFlexIsAnError) {
  ProcessDef def("bad");
  ActivityId r = def.AddActivity("r", ActivityKind::kRetriable, ServiceId(1));
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(2));
  ASSERT_TRUE(def.AddEdge(r, p).ok());
  ASSERT_TRUE(def.Validate().ok());
  EXPECT_TRUE(HasDiagnostic(LintProcess(def), "guaranteed termination",
                            LintDiagnostic::Severity::kError));
}

TEST(LintTest, SharedCompensationServiceWarns) {
  ProcessDef def("shared");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(1), ServiceId(100));
  ActivityId b = def.AddActivity("b", ActivityKind::kCompensatable,
                                 ServiceId(2), ServiceId(100));
  ASSERT_TRUE(def.AddEdge(a, b).ok());
  ASSERT_TRUE(def.Validate().ok());
  EXPECT_TRUE(HasDiagnostic(LintProcess(def), "share compensation service",
                            LintDiagnostic::Severity::kWarning));
}

TEST(LintTest, SelfCompensationWarns) {
  ProcessDef def("selfcomp");
  def.AddActivity("a", ActivityKind::kCompensatable, ServiceId(1),
                  ServiceId(1));
  ASSERT_TRUE(def.Validate().ok());
  EXPECT_TRUE(HasDiagnostic(LintProcess(def), "repeats the action",
                            LintDiagnostic::Severity::kWarning));
}

TEST(LintTest, UnreachableAlternativeWarns) {
  ProcessDef def("deadalt");
  ActivityId p = def.AddActivity("p", ActivityKind::kPivot, ServiceId(1));
  ActivityId r1 = def.AddActivity("r1", ActivityKind::kRetriable,
                                  ServiceId(2));
  ActivityId r2 = def.AddActivity("r2", ActivityKind::kRetriable,
                                  ServiceId(3));
  ASSERT_TRUE(def.AddEdge(p, r1, 0).ok());
  ASSERT_TRUE(def.AddEdge(p, r2, 1).ok());  // can never fire
  ASSERT_TRUE(def.Validate().ok());
  EXPECT_TRUE(HasDiagnostic(LintProcess(def), "unreachable",
                            LintDiagnostic::Severity::kWarning));
}

TEST(LintTest, IntraProcessConflictsWarnWithSpec) {
  figures::PaperWorld world;
  ProcessDef def("selfconflict");
  ActivityId a = def.AddActivity("a", ActivityKind::kCompensatable,
                                 ServiceId(11), ServiceId(111));
  ActivityId b = def.AddActivity("b", ActivityKind::kPivot, ServiceId(21));
  ASSERT_TRUE(def.AddEdge(a, b).ok());
  ASSERT_TRUE(def.Validate().ok());
  // (11, 21) conflict in the paper world's spec.
  EXPECT_TRUE(HasDiagnostic(LintProcess(def, &world.spec),
                            "conflicting services",
                            LintDiagnostic::Severity::kWarning));
  // Without a spec the check is skipped.
  EXPECT_FALSE(HasDiagnostic(LintProcess(def), "conflicting services",
                             LintDiagnostic::Severity::kWarning));
}

}  // namespace
}  // namespace tpm
