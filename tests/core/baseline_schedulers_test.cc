#include "core/baseline_schedulers.h"

#include <gtest/gtest.h>

#include "core/pred.h"
#include "testing/mini_world.h"

namespace tpm {
namespace {

using testing::MiniWorld;

struct RunResult {
  SchedulerStats stats;
  bool all_committed = true;
  bool history_pred = false;
};

// Runs two conflicting processes under the given scheduler and reports.
RunResult RunConflictingPair(TransactionalProcessScheduler* scheduler,
                             MiniWorld* world) {
  const ProcessDef* p1 = world->MakeChain("b1", "c:s c:x1 p:y1 r:z1");
  const ProcessDef* p2 = world->MakeChain("b2", "c:s c:x2 p:y2 r:z2");
  EXPECT_NE(p1, nullptr);
  EXPECT_NE(p2, nullptr);
  EXPECT_TRUE(scheduler->RegisterSubsystem(world->subsystem()).ok());
  auto pid1 = scheduler->Submit(p1);
  auto pid2 = scheduler->Submit(p2);
  EXPECT_TRUE(pid1.ok());
  EXPECT_TRUE(pid2.ok());
  EXPECT_TRUE(scheduler->Run().ok());
  RunResult result;
  result.stats = scheduler->stats();
  result.all_committed =
      scheduler->OutcomeOf(*pid1) == ProcessOutcome::kCommitted &&
      scheduler->OutcomeOf(*pid2) == ProcessOutcome::kCommitted;
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  result.history_pred = pred.ok() && *pred;
  return result;
}

TEST(BaselineSchedulersTest, SerialCommitsEverythingAndIsPred) {
  MiniWorld world;
  auto scheduler = MakeSerialScheduler();
  RunResult r = RunConflictingPair(scheduler.get(), &world);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.history_pred);
  EXPECT_EQ(world.Value("s"), 2);
}

TEST(BaselineSchedulersTest, LockingCommitsEverythingAndIsPred) {
  MiniWorld world;
  auto scheduler = MakeLockingScheduler();
  RunResult r = RunConflictingPair(scheduler.get(), &world);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.history_pred);
  EXPECT_EQ(world.Value("s"), 2);
}

TEST(BaselineSchedulersTest, PredCommitsEverythingAndIsPred) {
  MiniWorld world;
  auto scheduler = MakePredScheduler();
  RunResult r = RunConflictingPair(scheduler.get(), &world);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.history_pred);
  EXPECT_EQ(world.Value("s"), 2);
}

TEST(BaselineSchedulersTest, PredAllowsMoreOverlapThanSerial) {
  // With independent processes PRED interleaves (fewer passes) while the
  // serial baseline runs them one after the other.
  auto run = [](std::unique_ptr<TransactionalProcessScheduler> scheduler) {
    MiniWorld world;
    std::vector<const ProcessDef*> defs;
    for (int i = 0; i < 4; ++i) {
      defs.push_back(world.MakeChain(StrCat("p", i),
                                     StrCat("c:a", i, " p:b", i, " r:c", i)));
      EXPECT_NE(defs.back(), nullptr);
    }
    EXPECT_TRUE(scheduler->RegisterSubsystem(world.subsystem()).ok());
    for (const auto* def : defs) EXPECT_TRUE(scheduler->Submit(def).ok());
    EXPECT_TRUE(scheduler->Run().ok());
    return scheduler->stats().steps;
  };
  int64_t serial_steps = run(MakeSerialScheduler());
  int64_t pred_steps = run(MakePredScheduler());
  EXPECT_LT(pred_steps, serial_steps);
}

TEST(BaselineSchedulersTest, LockingDefersConflictingWorkEntirely) {
  MiniWorld world;
  auto scheduler = MakeLockingScheduler();
  RunResult r = RunConflictingPair(scheduler.get(), &world);
  EXPECT_TRUE(r.all_committed);
  // 2PL blocks P2's very first (compensatable!) activity, unlike PRED.
  EXPECT_GT(r.stats.deferrals, 0);
}

TEST(BaselineSchedulersTest, UnsafeIsFastButNotAlwaysPred) {
  // In the failure-free case even the unsafe scheduler produces correct
  // results; the CIM integration test shows where it breaks.
  MiniWorld world;
  auto scheduler = MakeUnsafeScheduler();
  RunResult r = RunConflictingPair(scheduler.get(), &world);
  EXPECT_TRUE(r.all_committed);
  EXPECT_EQ(world.Value("s"), 2);
}

}  // namespace
}  // namespace tpm
