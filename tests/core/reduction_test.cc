#include "core/reduction.h"

#include <gtest/gtest.h>

#include "core/figures.h"

namespace tpm {
namespace {

using figures::kP1;
using figures::kP2;
using figures::kP3;

class ReductionTest : public ::testing::Test {
 protected:
  figures::PaperWorld world_;
};

// Example 6: S_t2 is RED; the compensation rule removes (a13, a13^-1) and
// the residual serializes P1 before P2.
TEST_F(ReductionTest, Example6St2IsRED) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto outcome = AnalyzeRED(s, world_.spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reducible);
  EXPECT_EQ(outcome->serialization_order,
            (std::vector<ProcessId>{kP1, kP2}));
  // a13 and a13^-1 were cancelled.
  for (const ActivityInstance& inst : outcome->residual) {
    EXPECT_FALSE(inst.process == kP1 && inst.activity == ActivityId(3))
        << "a13 should have been cancelled";
  }
}

// Example 8: the prefix S_t1 is not reducible — compensation of a21 is not
// available, so the cycle a11 << a21 << a11^-1 cannot be eliminated.
TEST_F(ReductionTest, Example8St1IsNotRED) {
  ProcessSchedule s = figures::MakeScheduleSt1(world_);
  auto outcome = AnalyzeRED(s, world_.spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->reducible);
  ASSERT_GE(outcome->cycle.size(), 3u);
  EXPECT_EQ(outcome->cycle.front(), outcome->cycle.back());
}

// Example 7/9: the Figure 7 execution is RED.
TEST_F(ReductionTest, Example7DoublePrimeIsRED) {
  ProcessSchedule s = figures::MakeScheduleDoublePrimeT1(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
}

// Figure 4(b): non-serializable committed activities can never reduce.
TEST_F(ReductionTest, NonSerializableIsNotRED) {
  ProcessSchedule s = figures::MakeSchedulePrimeT2(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_FALSE(*red);
}

// Figure 9: quasi-commit — S* is RED.
TEST_F(ReductionTest, Example10StarIsRED) {
  ProcessSchedule s = figures::MakeScheduleStar(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
}

// Reversed Figure 9: a31 before a11 with P3 active is NOT reducible —
// P3's completion compensates a31 after P1 used the conflicting service.
TEST_F(ReductionTest, StarReversedIsNotRED) {
  ProcessSchedule s = figures::MakeScheduleStarReversed(world_);
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_FALSE(*red);
}

// B-REC/B-REC conflicting processes reduce: both compensations cancel.
TEST_F(ReductionTest, TwoBackwardRecoverableProcessesReduce) {
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(kP1, &world_.p1).ok());
  ASSERT_TRUE(s.AddProcess(kP3, &world_.p3).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP1, ActivityId(1), false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{kP3, ActivityId(1), false}))
                  .ok());
  auto red = IsRED(s, world_.spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);
}

// The exhaustive rewriter agrees with the polynomial checker on the paper
// examples.
TEST_F(ReductionTest, ExhaustiveOracleAgreesOnPaperExamples) {
  struct Case {
    ProcessSchedule schedule;
    bool expected;
  };
  std::vector<Case> cases;
  cases.push_back({figures::MakeScheduleSt1(world_), false});
  cases.push_back({figures::MakeScheduleSt2(world_), true});
  cases.push_back({figures::MakeSchedulePrimeT2(world_), false});
  cases.push_back({figures::MakeScheduleStar(world_), true});
  cases.push_back({figures::MakeScheduleStarReversed(world_), false});

  for (const Case& c : cases) {
    auto completed = CompleteSchedule(c.schedule);
    ASSERT_TRUE(completed.ok());
    std::set<ProcessId> committed;
    for (const auto& [pid, def] : c.schedule.processes()) {
      if (c.schedule.IsProcessCommitted(pid)) committed.insert(pid);
    }
    auto poly = ReduceCompletedSchedule(*completed, world_.spec, committed);
    EXPECT_EQ(poly.reducible, c.expected)
        << "polynomial checker wrong on " << c.schedule.ToString();
    // The oracle explores the full rewrite space; skip instances whose
    // state space exceeds its budget (irreducible schedules require
    // exhausting every permutation).
    auto oracle = IsReducibleExhaustive(*completed, world_.spec, committed,
                                        /*max_tokens=*/10,
                                        /*max_states=*/500'000);
    if (oracle.ok()) {
      EXPECT_EQ(*oracle, c.expected)
          << "oracle wrong on " << c.schedule.ToString();
    }
  }
}

// Effect-free rule: an effect-free activity of an aborted process is
// removed, letting an otherwise-blocked compensation pair cancel.
TEST_F(ReductionTest, EffectFreeRuleUnblocksCancellation) {
  // P1: a^c with service 1; P2: read r with service 2 (effect-free).
  // Conflict (1,2). Schedule: a, r, then both abort.
  ProcessDef p1("E1");
  ActivityId a = p1.AddActivity("a", ActivityKind::kCompensatable,
                                ServiceId(1), ServiceId(101));
  (void)a;
  ASSERT_TRUE(p1.Validate().ok());
  ProcessDef p2("E2");
  p2.AddActivity("r", ActivityKind::kCompensatable, ServiceId(2),
                 ServiceId(102));
  ASSERT_TRUE(p2.Validate().ok());
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  spec.MarkEffectFree(ServiceId(2));

  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(ProcessId(1), &p1).ok());
  ASSERT_TRUE(s.AddProcess(ProcessId(2), &p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{ProcessId(1), ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{ProcessId(2), ActivityId(1),
                                            false}))
                  .ok());
  auto red = IsRED(s, spec);
  ASSERT_TRUE(red.ok());
  EXPECT_TRUE(*red);

  // Control: with a non-effect-free service the same shape still reduces
  // via reverse-order compensation (r^-1 then a^-1)...
  ConflictSpec spec2;
  spec2.AddConflict(ServiceId(1), ServiceId(2));
  auto red2 = IsRED(s, spec2);
  ASSERT_TRUE(red2.ok());
  EXPECT_TRUE(*red2);
}

// A committed process's activities are never removed by the effect-free
// rule.
TEST_F(ReductionTest, EffectFreeRuleRequiresNonCommitted) {
  ProcessDef p1("E1");
  p1.AddActivity("a", ActivityKind::kCompensatable, ServiceId(1),
                 ServiceId(101));
  ASSERT_TRUE(p1.Validate().ok());
  ProcessDef p2("E2");
  ActivityId r = p2.AddActivity("r", ActivityKind::kPivot, ServiceId(2));
  (void)r;
  ASSERT_TRUE(p2.Validate().ok());
  ConflictSpec spec;
  spec.AddConflict(ServiceId(1), ServiceId(2));
  spec.MarkEffectFree(ServiceId(2));

  // a (P1), r (P2), r commits with P2; P1 stays active and must compensate
  // a — cycle a < r < a^-1 with r frozen by P2's commit.
  ProcessSchedule s;
  ASSERT_TRUE(s.AddProcess(ProcessId(1), &p1).ok());
  ASSERT_TRUE(s.AddProcess(ProcessId(2), &p2).ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{ProcessId(1), ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Activity(
                           ActivityInstance{ProcessId(2), ActivityId(1),
                                            false}))
                  .ok());
  ASSERT_TRUE(s.Append(ScheduleEvent::Commit(ProcessId(2))).ok());
  auto red = IsRED(s, spec);
  ASSERT_TRUE(red.ok());
  EXPECT_FALSE(*red);
}

TEST_F(ReductionTest, ExhaustiveOracleRejectsOversizedInput) {
  ProcessSchedule s = figures::MakeScheduleSt2(world_);
  auto completed = CompleteSchedule(s);
  ASSERT_TRUE(completed.ok());
  auto oracle = IsReducibleExhaustive(*completed, world_.spec, {},
                                      /*max_tokens=*/2);
  EXPECT_TRUE(oracle.status().IsInvalidArgument());
}

}  // namespace
}  // namespace tpm
